//! Offline shim for the subset of the `criterion` 0.5 API used by this
//! workspace.
//!
//! The build environment has no network access, so benches link against
//! this minimal harness instead: it runs each registered function a
//! bounded number of iterations, reports the mean wall-clock time on
//! stdout (one human line plus one JSON line per benchmark), and skips
//! all of criterion's statistics, plots and state.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement cap per benchmark: stop after this much accumulated time.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Throughput annotation (recorded, echoed in the JSON line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    max_iters: u64,
}

impl Bencher {
    /// Times `f`, repeating until the sample budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < self.max_iters && start.elapsed() < TIME_BUDGET {
            black_box(f());
            iters += 1;
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Caps the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, self.throughput, f);
        let _ = &self.criterion;
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The harness entry point (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), 20, None, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, max_iters: u64, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        max_iters: max_iters.max(1),
    };
    f(&mut b);
    let iters = b.iters_done.max(1);
    let mean_ns = b.elapsed.as_nanos() as u64 / iters;
    println!("bench {id:<40} {mean_ns:>12} ns/iter  ({iters} iters)");
    let tp_json = match tp {
        Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
        Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
        None => String::new(),
    };
    println!("{{\"bench\":\"{id}\",\"mean_ns\":{mean_ns},\"iters\":{iters}{tp_json}}}");
}

/// Registers bench functions under one runner (mirror of
/// `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the registered groups (mirror of
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
