//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no network access, so instead of the real
//! crate this path dependency provides `StdRng`, [`SeedableRng`] and the
//! [`Rng::gen_range`] method backed by a SplitMix64/xorshift generator.
//! Determinism per seed is all the callers rely on (random TPG documents
//! "runs are deterministic given the seed"); the exact stream differs
//! from upstream `rand`, which is fine because no golden data depends on
//! it.

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[lo, hi)` given a raw `u64` source.
    fn sample_range(lo: Self, hi: Self, raw: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(lo: Self, hi: Self, raw: u64) -> Self {
                let span = (hi - lo) as u64;
                debug_assert!(span > 0, "empty gen_range");
                lo + (raw % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The random-value methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw entropy source.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let raw = self.next_u64();
        T::sample_range(range.start, range.end, raw)
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Deterministic generators.
pub mod rngs {
    /// Stand-in for `rand::rngs::StdRng`: SplitMix64 state update with an
    /// xorshift-style output mix.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate tiny seeds.
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl crate::Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range(0u64..5);
            assert!(v < 5);
        }
    }
}
