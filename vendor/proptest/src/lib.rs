//! Offline shim for the subset of the `proptest` 1.x API used by this
//! workspace.
//!
//! The build environment has no network access, so this path dependency
//! reimplements the pieces the test suites rely on: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`prop_recursive`, [`prop_oneof!`], ranges
//! and tuples as strategies, [`any`], and [`collection::vec`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.**  A failing case panics with the generated inputs'
//!   `Debug` rendering instead of a minimized counterexample.
//! * **Fixed seeding.**  Each test's RNG is seeded from its name, so runs
//!   are deterministic (upstream persists failing seeds instead).
//! * Value distributions are plain uniform, not size-biased.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection`: strategies for containers.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// The inclusive size bounds of a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        pub(crate) hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test module conventionally imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// docs
///     #[test]
///     fn name(x in strategy_expr, y in strategy_expr) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case, __config.cases, __e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
