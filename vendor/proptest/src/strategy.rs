//! The [`Strategy`] trait, primitive strategies and combinators.

use crate::collection::SizeRange;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the compound cases.  `depth` bounds
    /// the recursion; the size/branch hints of the upstream API are
    /// accepted for compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated structures
            // have varied depth (weight 1 leaf : 3 recursive).
            let level = recurse(cur).boxed();
            cur = OneOf::new(vec![(1, leaf.clone()), (3, level)]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe internal form of [`Strategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy (mirror of upstream
/// `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of one value (mirror of `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between strategies of one value type (the engine
/// behind [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u32 = arms.iter().map(|&(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs a non-empty arm list");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in new()")
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// --- Primitive strategies: integer ranges. ---

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

// --- `any::<T>()`. ---

/// Types with a full-range default strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy object.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- Tuples of strategies. ---

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (1usize..=3).generate(&mut r);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
        let f = (1usize..=4).prop_flat_map(|n| crate::collection::vec(0u8..=255, n));
        for _ in 0..100 {
            let v = f.generate(&mut r);
            assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(T::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        let mut max = 0;
        for _ in 0..300 {
            max = max.max(depth(&s.generate(&mut r)));
        }
        assert!(max >= 2, "recursion reaches compound cases (max {max})");
        assert!(max <= 4, "depth bound respected (max {max})");
    }
}
