//! Test-runner types: config, RNG and case failure.

use std::fmt;

/// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Rejects the case with a message (mirrors `TestCaseError::fail`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic SplitMix64 source behind every strategy.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name), FNV-1a folded.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
