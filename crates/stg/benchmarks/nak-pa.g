# Reconstruction: negative-ack port arbiter as a C-element join.
.model nak-pa
.inputs req0 req1
.outputs ack
.graph
req0+ ack+
req1+ ack+
ack+ req0- req1-
req0- ack-
req1- ack-
ack- req0+ req1+
.marking { <ack-,req0+> <ack-,req1+> }
.end
