# Reconstruction: request-driven two-stage follower.
.model rpdft
.inputs r
.outputs s t
.graph
r+ s+
s+ t+
t+ r-
r- s-
s- t-
t- r+
.marking { <t-,r+> }
.end
