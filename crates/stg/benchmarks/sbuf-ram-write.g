# Reconstruction: two requests drive a three-stage write chain.
.model sbuf-ram-write
.inputs wr pr
.outputs wa wd done
.graph
wr+ wa+
wa+ pr+
pr+ wd+
wd+ done+
done+ wr-
wr- wa-
wa- pr-
pr- wd-
wd- done-
done- wr+
.marking { <done-,wr+> }
.end
