# Reconstruction: three-stage packet-send sequencer.
.model sbuf-send-pkt2
.inputs req
.outputs a b done
.graph
req+ a+
a+ b+
b+ done+
done+ req-
req- a-
a- b-
b- done-
done- req+
.marking { <done-,req+> }
.end
