# Reconstruction: out-of-order release variant.
.model vbe5b
.inputs c
.outputs p q
.graph
c+ p+
p+ q+
q+ c-
c- q-
q- p-
p- c+
.marking { <p-,c+> }
.end
