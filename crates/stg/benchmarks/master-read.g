# Reconstruction: fork to two concurrent rails joined by a C-element z.
.model master-read
.inputs r
.outputs x y z
.graph
r+ x+ y+
x+ z+
y+ z+
z+ r-
r- x- y-
x- z-
y- z-
z- r+
.marking { <z-,r+> }
.end
