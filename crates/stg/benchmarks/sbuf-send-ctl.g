# Reconstruction: two independent concurrent send handshakes.
.model sbuf-send-ctl
.inputs r1 r2
.outputs a1 a2
.graph
r1+ a1+
a1+ r1-
r1- a1-
a1- r1+
r2+ a2+
a2+ r2-
r2- a2-
a2- r2+
.marking { <a1-,r1+> <a2-,r2+> }
.end
