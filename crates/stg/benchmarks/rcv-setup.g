# Reconstruction: receiver setup handshake, out-of-order release.
.model rcv-setup
.inputs rcv
.outputs en rdy
.graph
rcv+ en+
en+ rdy+
rdy+ rcv-
rcv- rdy-
rdy- en-
en- rcv+
.marking { <en-,rcv+> }
.end
