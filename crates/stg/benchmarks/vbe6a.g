# Reconstruction: phase-multiplexed acknowledge.  The select input s only
# toggles while r is low (fundamental mode), so the minimal two-level
# implementation z = b + c is hazard-free; the prime closure adds the
# redundant latch cube r*z — the Table 2 redundancy that AllPrimes
# synthesis exposes as untestable fault sites.
.model vbe6a
.inputs r s
.outputs b c z
.graph
r+ b+
b+ z+
z+ r-
r- b-
b- z-
z- s+
s+ r+/1
r+/1 c+
c+ z+/1
z+/1 r-/1
r-/1 c-
c- z-/1
z-/1 s-
s- r+
.marking { <s-,r+> }
.end
