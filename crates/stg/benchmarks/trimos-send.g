# Reconstruction: phase-multiplexed send acknowledge (see vbe6a) —
# redundant under the all-primes closure of Table 2.
.model trimos-send
.inputs req mode
.outputs tx rx done
.graph
req+ tx+
tx+ done+
done+ req-
req- tx-
tx- done-
done- mode+
mode+ req+/1
req+/1 rx+
rx+ done+/1
done+/1 req-/1
req-/1 rx-
rx- done-/1
done-/1 mode-
mode- req+
.marking { <mode-,req+> }
.end
