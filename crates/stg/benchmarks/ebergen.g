# Reconstruction: one request forks to two concurrent acknowledge rails.
.model ebergen
.inputs r
.outputs x y
.graph
r+ x+ y+
x+ r-
y+ r-
r- x- y-
x- r+
y- r+
.marking { <x-,r+> <y-,r+> }
.end
