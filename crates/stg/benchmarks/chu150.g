# Reconstruction: the classic C-element specification.
.model chu150
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
