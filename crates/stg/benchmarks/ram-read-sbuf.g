# Reconstruction: overlapped read/buffer handshakes (USC fails, CSC holds).
.model ram-read-sbuf
.inputs rd bf
.outputs da bd
.graph
rd+ da+
da+ bf+
bf+ bd+
bd+ bf-
bf- bd-
bd- rd-
rd- da-
da- rd+
.marking { <da-,rd+> }
.end
