# Reconstruction: D-latch capture — q = c + d*q (q latches d over the
# clock-like input c), so both inputs feed the output cone.
.model dff
.inputs d c
.outputs q
.graph
d+ c+
c+ q+
q+ c-
c- d-
d- q-
q- d+
.marking { <q-,d+> }
.end
