# Reconstruction: phase-multiplexed acknowledge (see vbe6a) — redundant
# under the all-primes closure of Table 2.
.model vbe10b
.inputs rq sel
.outputs d0 d1 ack
.graph
rq+ d0+
d0+ ack+
ack+ rq-
rq- d0-
d0- ack-
ack- sel+
sel+ rq+/1
rq+/1 d1+
d1+ ack+/1
ack+/1 rq-/1
rq-/1 d1-
d1- ack-/1
ack-/1 sel-
sel- rq+
.marking { <sel-,rq+> }
.end
