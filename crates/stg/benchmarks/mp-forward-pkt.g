# Reconstruction: forward-packet pulse — en pulses within one cycle.
.model mp-forward-pkt
.inputs req
.outputs en ack
.graph
req+ en+
en+ ack+
ack+ en-
en- req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
