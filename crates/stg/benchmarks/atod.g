# Reconstruction: interleaved conversion handshakes.
.model atod
.inputs r1 r2
.outputs a1 a2
.graph
r1+ a1+
a1+ r2+
r2+ a2+
a2+ r1-
r1- a1-
a1- r2-
r2- a2-
a2- r1+
.marking { <a2-,r1+> }
.end
