# Reconstruction: out-of-order release gives a latch plus an AND stage.
.model hazard
.inputs r
.outputs a b
.graph
r+ a+
a+ b+
b+ r-
r- b-
b- a-
a- r+
.marking { <a-,r+> }
.end
