# Reconstruction: active-low C-element join (all signals reset high).
.model nowick
.inputs a b
.outputs c
.graph
a- c-
b- c-
c- a+ b+
a+ c+
b+ c+
c+ a- b-
.marking { <c+,a-> <c+,b-> }
.init a=1 b=1 c=1
.end
