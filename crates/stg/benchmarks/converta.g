# Reconstruction: single-request sequencer (chain follower a, b).
.model converta
.inputs r
.outputs a b
.graph
r+ a+
a+ b+
b+ r-
r- a-
a- b-
b- r+
.marking { <b-,r+> }
.end
