# Reconstruction: the classic seq4 controller (cf. parser module docs).
.model seq4
.inputs r
.outputs a b
.graph
r+ a+
a+ b+
b+ r-
r- a-
a- b-
b- r+
.marking { <b-,r+> }
.end
