# Reconstruction: interleaved address/data handshakes.
.model mmu
.inputs am dm
.outputs ax dx
.graph
am+ ax+
ax+ dm+
dm+ dx+
dx+ am-
am- ax-
ax- dm-
dm- dx-
dx- am+
.marking { <dx-,am+> }
.end
