//! Property tests for the two-level minimizer on random incompletely
//! specified functions.

use proptest::prelude::*;
use satpg_stg::cover::{all_primes, minimize, verify};

fn split_sets(on_mask: u16, dc_mask: u16, n: usize) -> (Vec<u64>, Vec<u64>) {
    let size = 1usize << n;
    let mut on = Vec::new();
    let mut dc = Vec::new();
    for p in 0..size {
        let bit = 1u16 << p;
        if on_mask & bit != 0 {
            on.push(p as u64);
        } else if dc_mask & bit != 0 {
            dc.push(p as u64);
        }
    }
    (on, dc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The minimized cover realizes the function: every ON point in,
    /// every OFF point out (4-variable functions, exhaustive check).
    #[test]
    fn minimize_is_correct(on_mask in any::<u16>(), dc_mask in any::<u16>()) {
        let (on, dc) = split_sets(on_mask, dc_mask, 4);
        let cover = minimize(&on, &dc, 4);
        prop_assert!(verify(&cover, &on, &dc, 4));
    }

    /// No cube of the minimized cover is redundant: dropping any cube
    /// uncovers some ON point.
    #[test]
    fn minimize_is_irredundant(on_mask in any::<u16>(), dc_mask in any::<u16>()) {
        let (on, dc) = split_sets(on_mask, dc_mask, 4);
        let cover = minimize(&on, &dc, 4);
        for skip in 0..cover.cubes.len() {
            let missing = on.iter().any(|&p| {
                !cover
                    .cubes
                    .iter()
                    .enumerate()
                    .any(|(i, c)| i != skip && c.contains(p))
            });
            prop_assert!(missing, "cube {skip} is redundant");
        }
    }

    /// The all-primes cover realizes the same function and contains the
    /// minimal cover's worth of primes.
    #[test]
    fn all_primes_same_function(on_mask in any::<u16>(), dc_mask in any::<u16>()) {
        let (on, dc) = split_sets(on_mask, dc_mask, 4);
        let full = all_primes(&on, &dc, 4);
        prop_assert!(verify(&full, &on, &dc, 4));
        let min = minimize(&on, &dc, 4);
        prop_assert!(full.cubes.len() >= min.cubes.len());
        // Every cube of the full cover is prime: expanding any literal
        // hits the OFF set.
        let off: Vec<u64> = (0..16u64)
            .filter(|p| !on.contains(p) && !dc.contains(p))
            .collect();
        for c in &full.cubes {
            for (v, _) in c.literals() {
                let expanded = satpg_stg::cover::Cube {
                    mask: c.mask & !(1 << v),
                    val: c.val & !(1 << v),
                };
                let hits_off = off.iter().any(|&p| expanded.contains(p));
                prop_assert!(hits_off, "literal {v} of {c:?} is removable");
            }
        }
    }

    /// Consensus of two cover cubes never changes the function.
    #[test]
    fn consensus_preserves_function(on_mask in any::<u16>(), dc_mask in any::<u16>()) {
        let (on, dc) = split_sets(on_mask, dc_mask, 4);
        let cover = minimize(&on, &dc, 4);
        let aug = satpg_stg::synth::add_consensus_cubes(&cover);
        for p in 0..16u64 {
            prop_assert_eq!(cover.contains(p), aug.contains(p));
        }
    }
}
