//! Malformed-input battery for the `.g` parser and its downstream
//! pipeline: everything the service daemon exposes to untrusted text
//! must return a located `Err`, never panic.

use satpg_stg::synth::{complex_gate, two_level, Redundancy};
use satpg_stg::{parse_g, suite, StateGraph, StgError};

/// Drives a source through the full daemon-exposed pipeline; the test
/// is that every failure is an `Err`, not a panic.
fn full_pipeline(src: &str) {
    let Ok(stg) = parse_g(src) else { return };
    let Ok(sg) = StateGraph::build(&stg) else {
        return;
    };
    let _ = complex_gate(&stg, &sg);
    let _ = two_level(&stg, &sg, Redundancy::None);
}

#[test]
fn every_benchmark_survives_line_truncation() {
    for &name in suite::NAMES {
        let src = suite::source(name).unwrap();
        let lines: Vec<&str> = src.lines().collect();
        for cut in 0..lines.len() {
            let truncated = lines[..cut].join("\n");
            match parse_g(&truncated) {
                Ok(_) => {}
                Err(StgError::Parse { line, .. }) => {
                    assert!(
                        line >= 1 && line <= cut.max(1),
                        "{name}@{cut}: error line {line} out of range"
                    );
                }
                Err(_) => {} // located semantic errors are fine too
            }
            full_pipeline(&truncated);
        }
    }
}

#[test]
fn byte_truncation_never_panics() {
    let src = suite::source("seq4").unwrap();
    for cut in 0..src.len() {
        if !src.is_char_boundary(cut) {
            continue;
        }
        full_pipeline(&src[..cut]);
    }
}

#[test]
fn hostile_fragments_error_with_locations() {
    let cases = [
        // (source, must-contain)
        (".bogus x\n", "line 1"),
        (".model m\nstray content\n", "line 2"),
        (".model m\n.inputs a a\n", "declared twice"),
        (".model m\n.inputs a\n.outputs a\n", "declared twice"),
        (".model m\n.inputs a\n.graph\np q\n", "line 4"),
        (".model m\n.inputs a\n.marking { <a+ \n", "unclosed"),
        (".model m\n.init a\n", "line 2"),
        (".model m\n.init a=2\n", "line 2"),
        (".model m\n.capacity p1\n", "unsupported"),
        (".model m\n.inputs a\n.graph\na+ <b>\n", "line 4"),
        (
            ".model m\n.inputs a\n.graph\na+ a-\n.marking { nowhere }\n",
            "line 5",
        ),
        (
            ".model m\n.inputs a\n.graph\na+ a-\n.marking { <a-,a+> }\n",
            "no implicit place",
        ),
        (
            ".model m\n.inputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n.init b=1\n",
            "unknown signal",
        ),
    ];
    for (src, needle) in cases {
        let err = parse_g(src).expect_err(src).to_string();
        assert!(err.contains(needle), "{src:?} → {err:?}");
    }
    // Undeclared signals keep their dedicated variant.
    assert!(matches!(
        parse_g(".model m\n.graph\nq+ r+\n"),
        Err(StgError::UnknownSignal(_))
    ));
}

#[test]
fn degenerate_but_wellformed_inputs_do_not_panic_downstream() {
    // No outputs at all: parse succeeds, synthesis refuses.
    let src = ".model m\n.inputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n";
    let stg = parse_g(src).unwrap();
    let sg = StateGraph::build(&stg).unwrap();
    assert!(matches!(complex_gate(&stg, &sg), Err(StgError::NoOutputs)));
    // Empty graph: no transitions anywhere.
    full_pipeline(".model m\n.inputs a\n.outputs b\n.graph\n");
    // Huge instance numbers parse without overflow panics.
    full_pipeline(".model m\n.inputs a\n.outputs b\n.graph\na+/4294967295 b+\n");
    // Deep fan-out lines.
    let mut wide = String::from(".model m\n.inputs a\n.outputs b\n.graph\na+");
    for _ in 0..500 {
        wide.push_str(" b+");
    }
    wide.push('\n');
    full_pipeline(&wide);
}
