//! Two-level logic minimization: Quine–McCluskey prime generation and
//! greedy covering, with don't-care support.
//!
//! Sized for controller synthesis: up to 16 variables (the benchmark
//! suite stays well below that).  The cover is *irredundant by
//! construction of the greedy pass* but globally minimal only for small
//! functions — exactly the fidelity class of the original flow.

use std::collections::{HashMap, HashSet};

/// A cube over `n` variables: `mask` bit set ⇒ the variable appears as a
/// literal, with polarity given by the corresponding `val` bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Cube {
    /// Literal-presence mask.
    pub mask: u64,
    /// Polarities (only bits inside `mask` are meaningful).
    pub val: u64,
}

impl Cube {
    /// The minterm cube of `point`.
    pub fn minterm(point: u64, n: usize) -> Cube {
        let mask = if n == 64 { !0 } else { (1u64 << n) - 1 };
        Cube {
            mask,
            val: point & mask,
        }
    }

    /// Whether the cube contains `point`.
    #[inline]
    pub fn contains(&self, point: u64) -> bool {
        point & self.mask == self.val
    }

    /// Whether `self` covers every point of `other`.
    pub fn covers(&self, other: &Cube) -> bool {
        self.mask & other.mask == self.mask && other.val & self.mask == self.val
    }

    /// Number of literals.
    pub fn num_literals(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// The literals as `(variable, polarity)` pairs, ascending.
    pub fn literals(&self) -> Vec<(usize, bool)> {
        (0..64)
            .filter(|&v| self.mask >> v & 1 == 1)
            .map(|v| (v, self.val >> v & 1 == 1))
            .collect()
    }

    /// Consensus of two cubes, if they oppose in exactly one variable.
    ///
    /// The consensus of two implicants is always an implicant; it is the
    /// cube that bridges them (the classic source of redundant
    /// hazard-cover terms).
    pub fn consensus(&self, other: &Cube) -> Option<Cube> {
        let both = self.mask & other.mask;
        let opposed = (self.val ^ other.val) & both;
        if opposed.count_ones() != 1 {
            return None;
        }
        let mask = (self.mask | other.mask) & !opposed;
        let val = (self.val | other.val) & mask;
        Some(Cube { mask, val })
    }
}

/// A two-level cover: the disjunction of its cubes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Cover {
    /// The product terms.
    pub cubes: Vec<Cube>,
}

impl Cover {
    /// Whether the cover contains `point`.
    pub fn contains(&self, point: u64) -> bool {
        self.cubes.iter().any(|c| c.contains(point))
    }

    /// The distinct variables used, ascending.
    pub fn support(&self) -> Vec<usize> {
        let mut m = 0u64;
        for c in &self.cubes {
            m |= c.mask;
        }
        (0..64).filter(|&v| m >> v & 1 == 1).collect()
    }
}

/// Minimizes a function given by its ON-set and DC-set minterms over `n`
/// variables (`n ≤ 16`): Quine–McCluskey primes, essential-prime
/// extraction, then greedy set cover of the remaining ON-set.
///
/// # Panics
///
/// Panics if `n > 16`, if ON ∩ DC ≠ ∅, or if a point exceeds `n` bits.
pub fn minimize(on: &[u64], dc: &[u64], n: usize) -> Cover {
    assert!(n <= 16, "minimizer sized for ≤ 16 variables");
    let full = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
    let on_set: HashSet<u64> = on.iter().map(|&p| p & full).collect();
    let dc_set: HashSet<u64> = dc.iter().map(|&p| p & full).collect();
    assert!(
        on_set.is_disjoint(&dc_set),
        "ON and DC sets must be disjoint"
    );
    for &p in on.iter().chain(dc) {
        assert!(p & !full == 0, "point {p:#x} exceeds {n} variables");
    }
    if on_set.is_empty() {
        return Cover::default();
    }
    if on_set.len() + dc_set.len() == (1usize << n) {
        // Constant 1: the empty cube.
        return Cover {
            cubes: vec![Cube { mask: 0, val: 0 }],
        };
    }

    // --- Prime generation (iterative merging). ---
    let mut current: HashSet<Cube> = on_set
        .iter()
        .chain(dc_set.iter())
        .map(|&p| Cube::minterm(p, n))
        .collect();
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        let mut merged: HashSet<Cube> = HashSet::new();
        let mut was_merged: HashSet<Cube> = HashSet::new();
        // Group by mask to merge only compatible cubes.
        let mut by_mask: HashMap<u64, Vec<Cube>> = HashMap::new();
        for &c in &current {
            by_mask.entry(c.mask).or_default().push(c);
        }
        for group in by_mask.values() {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    let diff = a.val ^ b.val;
                    if diff.count_ones() == 1 {
                        merged.insert(Cube {
                            mask: a.mask & !diff,
                            val: a.val & !diff,
                        });
                        was_merged.insert(*a);
                        was_merged.insert(*b);
                    }
                }
            }
        }
        for &c in &current {
            if !was_merged.contains(&c) {
                primes.push(c);
            }
        }
        current = merged;
    }
    primes.sort_unstable();
    primes.dedup();

    // --- Covering. ---
    let mut uncovered: Vec<u64> = {
        let mut v: Vec<u64> = on_set.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let mut chosen: Vec<Cube> = Vec::new();

    // Essential primes: an ON-minterm covered by exactly one prime.
    let mut essential: HashSet<Cube> = HashSet::new();
    for &p in &uncovered {
        let covering: Vec<&Cube> = primes.iter().filter(|c| c.contains(p)).collect();
        if covering.len() == 1 {
            essential.insert(*covering[0]);
        }
    }
    for c in &essential {
        chosen.push(*c);
    }
    uncovered.retain(|&p| !chosen.iter().any(|c| c.contains(p)));

    // Greedy: repeatedly take the prime covering the most remaining
    // minterms (ties: fewer literals, then lexicographic for determinism).
    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .map(|c| {
                let gain = uncovered.iter().filter(|&&p| c.contains(p)).count();
                (
                    gain,
                    std::cmp::Reverse(c.num_literals()),
                    std::cmp::Reverse(*c),
                )
            })
            .max()
            .expect("primes nonempty when ON nonempty");
        let cube = best.2 .0;
        assert!(best.0 > 0, "no prime covers a remaining ON minterm");
        chosen.push(cube);
        uncovered.retain(|&p| !cube.contains(p));
    }
    chosen.sort_unstable();
    chosen.dedup();

    // Final irredundancy pass: greedy choices can make earlier picks
    // redundant; drop any cube whose ON points are covered by the rest
    // (largest cubes first for determinism).
    let on_vec: Vec<u64> = on_set.iter().copied().collect();
    loop {
        let removable = (0..chosen.len()).find(|&i| {
            on_vec.iter().all(|&p| {
                !chosen[i].contains(p)
                    || chosen
                        .iter()
                        .enumerate()
                        .any(|(j, c)| j != i && c.contains(p))
            })
        });
        match removable {
            Some(i) => {
                chosen.remove(i);
            }
            None => break,
        }
    }
    Cover { cubes: chosen }
}

/// Returns **all** prime implicants that cover at least one ON minterm —
/// the canonical redundant two-level form (every prime that matters, not
/// just a minimal cover).  Hazard-free two-level synthesis must keep a
/// cube for every required SIC transition, which pushes covers toward
/// this prime closure; the extra cubes are logically redundant and their
/// fault sites untestable.
///
/// # Panics
///
/// Same conditions as [`minimize`].
pub fn all_primes(on: &[u64], dc: &[u64], n: usize) -> Cover {
    let minimal = minimize(on, dc, n);
    if minimal.cubes.len() <= 1 {
        return minimal;
    }
    // Re-run prime generation (minimize discards the full list).
    assert!(n <= 16);
    let full = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
    let on_set: HashSet<u64> = on.iter().map(|&p| p & full).collect();
    let dc_set: HashSet<u64> = dc.iter().map(|&p| p & full).collect();
    let mut current: HashSet<Cube> = on_set
        .iter()
        .chain(dc_set.iter())
        .map(|&p| Cube::minterm(p, n))
        .collect();
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        let mut merged: HashSet<Cube> = HashSet::new();
        let mut was_merged: HashSet<Cube> = HashSet::new();
        let mut by_mask: HashMap<u64, Vec<Cube>> = HashMap::new();
        for &c in &current {
            by_mask.entry(c.mask).or_default().push(c);
        }
        for group in by_mask.values() {
            for (i, a) in group.iter().enumerate() {
                for b in &group[i + 1..] {
                    let diff = a.val ^ b.val;
                    if diff.count_ones() == 1 {
                        merged.insert(Cube {
                            mask: a.mask & !diff,
                            val: a.val & !diff,
                        });
                        was_merged.insert(*a);
                        was_merged.insert(*b);
                    }
                }
            }
        }
        for &c in &current {
            if !was_merged.contains(&c) {
                primes.push(c);
            }
        }
        current = merged;
    }
    let mut cubes: Vec<Cube> = primes
        .into_iter()
        .filter(|c| on_set.iter().any(|&p| c.contains(p)))
        .collect();
    cubes.sort_unstable();
    cubes.dedup();
    Cover { cubes }
}

/// Verifies that `cover` equals the incompletely-specified function:
/// contains every ON point, excludes every OFF point (`off` = complement
/// of ON ∪ DC).
pub fn verify(cover: &Cover, on: &[u64], dc: &[u64], n: usize) -> bool {
    let full = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
    let dc_set: HashSet<u64> = dc.iter().map(|&p| p & full).collect();
    let on_set: HashSet<u64> = on.iter().map(|&p| p & full).collect();
    for p in 0..=full {
        let c = cover.contains(p);
        if on_set.contains(&p) && !c {
            return false;
        }
        if !on_set.contains(&p) && !dc_set.contains(&p) && c {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_basics() {
        let c = Cube {
            mask: 0b101,
            val: 0b001,
        };
        assert!(c.contains(0b001));
        assert!(c.contains(0b011));
        assert!(!c.contains(0b100));
        assert_eq!(c.num_literals(), 2);
        assert_eq!(c.literals(), vec![(0, true), (2, false)]);
    }

    #[test]
    fn covers_relation() {
        let big = Cube {
            mask: 0b001,
            val: 0b001,
        };
        let small = Cube {
            mask: 0b011,
            val: 0b001,
        };
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
    }

    #[test]
    fn consensus_of_adjacent_cubes() {
        // a·b and ā·c → consensus b·c
        let ab = Cube {
            mask: 0b011,
            val: 0b011,
        };
        let nac = Cube {
            mask: 0b101,
            val: 0b100,
        };
        let cons = ab.consensus(&nac).unwrap();
        assert_eq!(
            cons,
            Cube {
                mask: 0b110,
                val: 0b110
            }
        );
        // Cubes opposing in two variables have no consensus.
        let nanb = Cube {
            mask: 0b011,
            val: 0b000,
        };
        assert_eq!(ab.consensus(&nanb), None);
    }

    #[test]
    fn minimize_xor_needs_two_cubes() {
        // XOR has no DC and no merging: two minterm cubes.
        let on = [0b01u64, 0b10];
        let cover = minimize(&on, &[], 2);
        assert_eq!(cover.cubes.len(), 2);
        assert!(verify(&cover, &on, &[], 2));
    }

    #[test]
    fn minimize_with_dont_cares_collapses() {
        // ON = {11}, DC = {01, 10}: a single 1-literal cube suffices.
        let cover = minimize(&[0b11], &[0b01, 0b10], 2);
        assert!(verify(&cover, &[0b11], &[0b01, 0b10], 2));
        assert_eq!(cover.cubes.len(), 1);
        assert!(cover.cubes[0].num_literals() <= 1);
    }

    #[test]
    fn minimize_constant_one() {
        let cover = minimize(&[0, 1, 2, 3], &[], 2);
        assert_eq!(cover.cubes.len(), 1);
        assert_eq!(cover.cubes[0].num_literals(), 0);
    }

    #[test]
    fn minimize_empty_on() {
        assert!(minimize(&[], &[0b1], 1).cubes.is_empty());
    }

    #[test]
    fn c_element_cover() {
        // f(a,b,y) = ab + y(a+b), the Muller C next-state function.
        let mut on = Vec::new();
        for p in 0..8u64 {
            let (a, b, y) = (p & 1 != 0, p & 2 != 0, p & 4 != 0);
            if (a && b) || (y && (a || b)) {
                on.push(p);
            }
        }
        let cover = minimize(&on, &[], 3);
        assert!(verify(&cover, &on, &[], 3));
        assert_eq!(cover.cubes.len(), 3, "ab, ay, by");
        for c in &cover.cubes {
            assert_eq!(c.num_literals(), 2);
        }
    }

    #[test]
    fn majority_of_five_is_exact() {
        let n = 5;
        let on: Vec<u64> = (0..32u64).filter(|p| p.count_ones() >= 3).collect();
        let cover = minimize(&on, &[], n);
        assert!(verify(&cover, &on, &[], n));
        assert_eq!(cover.cubes.len(), 10, "C(5,3) three-literal primes");
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_on_dc_rejected() {
        minimize(&[1], &[1], 2);
    }

    #[test]
    fn all_primes_is_a_redundant_superset() {
        // f = ab + āc has three primes: ab, āc and the consensus bc.
        let on: Vec<u64> = (0..8u64)
            .filter(|p| {
                let (a, b, c) = (p & 1 != 0, p & 2 != 0, p & 4 != 0);
                (a && b) || (!a && c)
            })
            .collect();
        let min = minimize(&on, &[], 3);
        let all = all_primes(&on, &[], 3);
        assert_eq!(min.cubes.len(), 2);
        assert_eq!(all.cubes.len(), 3, "includes the redundant consensus");
        assert!(verify(&all, &on, &[], 3), "function unchanged");
        for c in &min.cubes {
            assert!(all.cubes.contains(c));
        }
    }

    #[test]
    fn support_lists_used_variables() {
        let cover = Cover {
            cubes: vec![
                Cube {
                    mask: 0b101,
                    val: 0,
                },
                Cube {
                    mask: 0b010,
                    val: 0b010,
                },
            ],
        };
        assert_eq!(cover.support(), vec![0, 1, 2]);
    }
}
