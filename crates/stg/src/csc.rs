//! State-coding checks: USC and CSC.
//!
//! *Unique State Coding* requires distinct reachable markings to have
//! distinct binary codes.  *Complete State Coding* is weaker and is what
//! logic synthesis actually needs: states sharing a code must agree on the
//! next value of every non-input signal, otherwise the next-state function
//! is ill-defined.

use crate::error::StgError;
use crate::model::Stg;
use crate::sg::StateGraph;
use crate::Result;
use std::collections::HashMap;

/// Checks Unique State Coding.
///
/// # Errors
///
/// Returns [`StgError::UscViolation`] with a shared code.
pub fn check_usc(sg: &StateGraph) -> Result<()> {
    let mut by_code: HashMap<u64, u128> = HashMap::new();
    for st in sg.states() {
        if let Some(&m) = by_code.get(&st.code) {
            if m != st.marking {
                return Err(StgError::UscViolation { code: st.code });
            }
        } else {
            by_code.insert(st.code, st.marking);
        }
    }
    Ok(())
}

/// Checks Complete State Coding with respect to the non-input signals.
///
/// # Errors
///
/// Returns [`StgError::CscViolation`] naming the first conflicting signal.
pub fn check_csc(stg: &Stg, sg: &StateGraph) -> Result<()> {
    let outputs = stg.non_input_signals();
    let mut by_code: HashMap<u64, usize> = HashMap::new();
    for (i, st) in sg.states().iter().enumerate() {
        if let Some(&j) = by_code.get(&st.code) {
            for &s in &outputs {
                if sg.next_value(stg, i, s) != sg.next_value(stg, j, s) {
                    return Err(StgError::CscViolation {
                        signal: stg.signal_name(s).to_string(),
                        code: st.code,
                    });
                }
            }
        } else {
            by_code.insert(st.code, i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_g;

    #[test]
    fn sequencer_has_usc() {
        let src = "\
.model s
.inputs r
.outputs a
.graph
r+ a+
a+ r-
r- a-
a- r+
.marking { <a-,r+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        check_usc(&sg).unwrap();
        check_csc(&g, &sg).unwrap();
    }

    #[test]
    fn back_to_back_handshakes_violate_usc_but_not_csc() {
        // Two sequential input handshakes pass through all-zero twice.
        let src = "\
.model d
.inputs r1 r2
.outputs a1 a2
.graph
r1+ a1+
a1+ r1-
r1- a1-
a1- r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- r1+
.marking { <a2-,r1+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        assert!(matches!(check_usc(&sg), Err(StgError::UscViolation { .. })));
        check_csc(&g, &sg).unwrap();
    }

    #[test]
    fn csc_violation_detected() {
        // Code (r=1, x=0) occurs twice: once heading for x+ and once (in
        // the second, x-free handshake) with x stable — the next-state
        // function of output x is ill-defined there.
        let src = "\
.model bad
.inputs r
.outputs x
.graph
r+ x+
x+ r-
r- x-
x- r+/1
r+/1 r-/1
r-/1 r+
.marking { <r-/1,r+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        match check_csc(&g, &sg) {
            Err(StgError::CscViolation { signal, code }) => {
                assert_eq!(signal, "x");
                assert_eq!(code, 0b01, "r high, x low");
            }
            other => panic!("expected CSC violation, got {other:?}"),
        }
        // And USC is of course also violated.
        assert!(matches!(check_usc(&sg), Err(StgError::UscViolation { .. })));
    }
}
