//! Parameterized benchmark families at the specification level.
//!
//! The bundled suite reconstructs the paper's fixed benchmark set; these
//! generators produce *scalable* specifications so throughput work (the
//! fault-parallel engine, the scaling benches) has workloads of any size:
//!
//! * [`sequencer`] — a 1-request chain of `k` acknowledge stages;
//! * [`dme_ring`] — a token ring of `n` cells granting a shared request
//!   line round-robin, the daisy-chain shape of distributed
//!   mutual-exclusion (DME) controllers.
//!
//! Each generator emits standard `.g` source (so the artifacts are
//! inspectable and replayable through any front-end) and parses it back
//! through the normal pipeline — generated families get exactly the same
//! validation as the bundled suite.

use crate::model::Stg;
use crate::parser::parse_g;
use crate::Result;
use std::fmt::Write as _;

/// `.g` source of a `k`-stage sequencer: `r+ a1+ … ak+ r- a1- … ak-`.
///
/// # Panics
///
/// Panics if `stages == 0`.
pub fn sequencer_source(stages: usize) -> String {
    assert!(stages > 0, "sequencer needs at least one stage");
    let mut out = String::new();
    let _ = writeln!(out, "# generated: {stages}-stage sequencer");
    let _ = writeln!(out, ".model seq-gen{stages}");
    let _ = writeln!(out, ".inputs r");
    let names: Vec<String> = (1..=stages).map(|i| format!("a{i}")).collect();
    let _ = writeln!(out, ".outputs {}", names.join(" "));
    let _ = writeln!(out, ".graph");
    let ring: Vec<String> = std::iter::once("r+".to_string())
        .chain(names.iter().map(|n| format!("{n}+")))
        .chain(std::iter::once("r-".to_string()))
        .chain(names.iter().map(|n| format!("{n}-")))
        .collect();
    for (i, t) in ring.iter().enumerate() {
        let next = &ring[(i + 1) % ring.len()];
        let _ = writeln!(out, "{t} {next}");
    }
    let _ = writeln!(out, ".marking {{ <{}-,r+> }}", names[stages - 1]);
    let _ = writeln!(out, ".end");
    out
}

/// Parses the [`sequencer_source`] specification.
///
/// # Errors
///
/// Never fails for valid `stages`; the signature matches the parser's.
pub fn sequencer(stages: usize) -> Result<Stg> {
    parse_g(&sequencer_source(stages))
}

/// `.g` source of an `n`-cell DME-style token ring.
///
/// One request line `r` is granted round-robin: the cell holding the
/// token (`t<i>`) answers the next request with its grant (`g<i>`),
/// passes the token on while the grant is still up (so every state code
/// stays unique), then releases.  Per cell the cycle is
/// `r+ → g<i>+ → r- → t<i+1>+ → t<i>- → g<i>- → r+ …`, closing after `n`
/// cells.  All grants and tokens are observable outputs.
///
/// # Panics
///
/// Panics if `cells < 2` (a one-cell ring degenerates) or `cells > 6`
/// (the synthesis backends bound specifications at 16 signals, and the
/// two-level cover enumeration grows steeply past 13).
pub fn dme_ring_source(cells: usize) -> String {
    assert!((2..=6).contains(&cells), "dme_ring supports 2..=6 cells");
    let mut out = String::new();
    let _ = writeln!(out, "# generated: {cells}-cell DME token ring");
    let _ = writeln!(out, ".model dme-gen{cells}");
    let _ = writeln!(out, ".inputs r");
    let mut names: Vec<String> = (1..=cells).map(|i| format!("g{i}")).collect();
    names.extend((1..=cells).map(|i| format!("t{i}")));
    let _ = writeln!(out, ".outputs {}", names.join(" "));
    let _ = writeln!(out, ".graph");
    for i in 1..=cells {
        let next = i % cells + 1;
        // `r` fires once per cell: instance i-1 of each direction.
        let (rp, rm) = if i == 1 {
            ("r+".to_string(), "r-".to_string())
        } else {
            (format!("r+/{}", i - 1), format!("r-/{}", i - 1))
        };
        let _ = writeln!(out, "{rp} g{i}+");
        let _ = writeln!(out, "g{i}+ {rm}");
        let _ = writeln!(out, "{rm} t{next}+");
        let _ = writeln!(out, "t{next}+ t{i}-");
        let _ = writeln!(out, "t{i}- g{i}-");
        let succ = if next == 1 {
            "r+".to_string()
        } else {
            format!("r+/{next_i}", next_i = next - 1)
        };
        let _ = writeln!(out, "g{i}- {succ}");
    }
    let _ = writeln!(out, ".marking {{ <g{cells}-,r+> }}");
    let _ = writeln!(out, ".init t1=1");
    let _ = writeln!(out, ".end");
    out
}

/// Parses the [`dme_ring_source`] specification.
///
/// # Errors
///
/// Never fails for valid `cells`; the signature matches the parser's.
pub fn dme_ring(cells: usize) -> Result<Stg> {
    parse_g(&dme_ring_source(cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::check_csc;
    use crate::sg::StateGraph;
    use crate::synth::complex_gate;

    fn validate(stg: &Stg) -> StateGraph {
        let sg = StateGraph::build(stg).unwrap();
        check_csc(stg, &sg).unwrap();
        sg.check_initial_quiescent(stg).unwrap();
        sg.check_output_persistent(stg).unwrap();
        sg
    }

    #[test]
    fn sequencers_validate_and_scale() {
        for k in 1..=6 {
            let stg = sequencer(k).unwrap();
            let sg = validate(&stg);
            assert_eq!(sg.states().len(), 2 * (k + 1), "pure cycle length");
            let ckt = complex_gate(&stg, &sg).unwrap();
            assert!(ckt.is_stable(ckt.initial_state()));
            assert_eq!(ckt.num_inputs(), 1);
        }
    }

    #[test]
    fn dme_rings_validate_and_scale() {
        for n in 2..=5 {
            let stg = dme_ring(n).unwrap();
            let sg = validate(&stg);
            // Six transitions per cell, one state each (pure cycle).
            assert_eq!(sg.states().len(), 6 * n);
            let ckt = complex_gate(&stg, &sg).unwrap();
            assert!(ckt.is_stable(ckt.initial_state()));
            // Token starts at cell 1.
            let t1 = ckt.signal_by_name("t1").unwrap();
            assert!(ckt.initial_state().get(t1.index()));
        }
    }

    #[test]
    fn dme_ring_runs_the_full_atpg_flow() {
        // The engine-scaling workload must actually flow end to end.
        let stg = dme_ring(3).unwrap();
        let sg = StateGraph::build(&stg).unwrap();
        let ckt = complex_gate(&stg, &sg).unwrap();
        // CSSG construction is exercised downstream (satpg-core is not a
        // dependency of this crate); here we check the circuit substrate.
        assert!(ckt.num_gates() > 6);
        assert!(ckt.outputs().len() == 6);
    }

    #[test]
    fn generated_sources_are_reparseable_text() {
        let src = dme_ring_source(4);
        assert!(src.contains(".model dme-gen4"));
        assert!(src.contains("r+/3"));
        let stg = parse_g(&src).unwrap();
        assert_eq!(stg.num_signals(), 9);
    }

    #[test]
    #[should_panic(expected = "2..=6")]
    fn oversized_ring_is_rejected() {
        dme_ring_source(8);
    }
}
