//! The token game and the state graph (reachability) of an STG.

use crate::error::StgError;
use crate::model::{SignalClass, SignalIdx, Stg, TransitionId};
use crate::Result;
use std::collections::HashMap;

/// A reachable STG state: a safe marking plus the binary signal code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SgState {
    /// Bit `p` set iff place `p` is marked.
    pub marking: u128,
    /// Bit `s` set iff signal `s` is 1.
    pub code: u64,
}

/// The reachable state graph of a consistent, safe STG.
#[derive(Clone, Debug)]
pub struct StateGraph {
    states: Vec<SgState>,
    edges: Vec<Vec<(TransitionId, usize)>>,
    initial: usize,
    num_signals: usize,
}

impl StateGraph {
    /// Explores the reachable states, checking safeness and consistency,
    /// and inferring initial signal values from the marking when they are
    /// not given explicitly.
    ///
    /// # Errors
    ///
    /// [`StgError::NotSafe`], [`StgError::Inconsistent`],
    /// [`StgError::TooManyStates`] or [`StgError::TooLarge`].
    pub fn build(stg: &Stg) -> Result<Self> {
        Self::build_bounded(stg, 1 << 20)
    }

    /// Like [`StateGraph::build`] with an explicit state budget.
    pub fn build_bounded(stg: &Stg, max_states: usize) -> Result<Self> {
        if stg.num_signals() > 64 {
            return Err(StgError::TooLarge {
                what: "signals",
                limit: 64,
            });
        }
        if stg.num_places() > 128 {
            return Err(StgError::TooLarge {
                what: "places",
                limit: 128,
            });
        }
        let masks: Vec<(u128, u128)> = (0..stg.transitions().len() as u32)
            .map(|t| {
                let t = TransitionId(t);
                let pre = stg.pre(t).iter().fold(0u128, |m, &p| m | (1 << p));
                let post = stg.post(t).iter().fold(0u128, |m, &p| m | (1 << p));
                (pre, post)
            })
            .collect();
        let m0: u128 = stg.initial_marking().iter().fold(0, |m, &p| m | (1 << p));

        let code0 = infer_initial_code(stg, &masks, m0, max_states)?;

        let mut states = vec![SgState {
            marking: m0,
            code: code0,
        }];
        let mut index: HashMap<SgState, usize> = HashMap::new();
        index.insert(states[0], 0);
        let mut edges: Vec<Vec<(TransitionId, usize)>> = vec![Vec::new()];
        let mut work = vec![0usize];
        while let Some(si) = work.pop() {
            let st = states[si];
            for (ti, &(pre, post)) in masks.iter().enumerate() {
                if st.marking & pre != pre {
                    continue;
                }
                let t = TransitionId(ti as u32);
                let tr = &stg.transitions()[ti];
                let bit = 1u64 << tr.signal;
                let cur = st.code & bit != 0;
                if cur == tr.rising {
                    return Err(StgError::Inconsistent {
                        transition: stg.transition_label(t),
                    });
                }
                let consumed = st.marking & !pre;
                if consumed & post != 0 {
                    return Err(StgError::NotSafe {
                        transition: stg.transition_label(t),
                    });
                }
                let next = SgState {
                    marking: consumed | post,
                    code: st.code ^ bit,
                };
                let ni = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if states.len() >= max_states {
                            return Err(StgError::TooManyStates(max_states));
                        }
                        let i = states.len();
                        states.push(next);
                        index.insert(next, i);
                        edges.push(Vec::new());
                        work.push(i);
                        i
                    }
                };
                edges[si].push((t, ni));
            }
        }
        Ok(StateGraph {
            states,
            edges,
            initial: 0,
            num_signals: stg.num_signals(),
        })
    }

    /// The reachable states; index 0 is the initial state.
    pub fn states(&self) -> &[SgState] {
        &self.states
    }

    /// Outgoing edges of state `i` as `(transition, successor)` pairs.
    pub fn edges(&self, i: usize) -> &[(TransitionId, usize)] {
        &self.edges[i]
    }

    /// Index of the initial state (always 0).
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Number of signals in the underlying STG.
    pub fn num_signals(&self) -> usize {
        self.num_signals
    }

    /// Whether some transition of `signal` is enabled in state `i`.
    pub fn is_excited(&self, stg: &Stg, i: usize, signal: SignalIdx) -> bool {
        self.edges[i]
            .iter()
            .any(|&(t, _)| stg.transitions()[t.0 as usize].signal == signal)
    }

    /// The next-state function `f_signal` at state `i`: the value the
    /// signal is headed for (its current value if not excited).
    pub fn next_value(&self, stg: &Stg, i: usize, signal: SignalIdx) -> bool {
        for &(t, _) in &self.edges[i] {
            let tr = &stg.transitions()[t.0 as usize];
            if tr.signal == signal {
                return tr.rising;
            }
        }
        self.states[i].code & (1 << signal) != 0
    }

    /// Errors unless only input transitions are enabled initially (so the
    /// synthesized circuit has a stable reset state).
    pub fn check_initial_quiescent(&self, stg: &Stg) -> Result<()> {
        for &(t, _) in &self.edges[self.initial] {
            let tr = &stg.transitions()[t.0 as usize];
            if stg.signal_class(tr.signal) != SignalClass::Input {
                return Err(StgError::InitialNotQuiescent {
                    transition: stg.transition_label(t),
                });
            }
        }
        Ok(())
    }

    /// Errors if an enabled non-input transition can be disabled by firing
    /// another transition (violating output persistency, hence
    /// speed-independence of any implementation).
    pub fn check_output_persistent(&self, stg: &Stg) -> Result<()> {
        for (si, outs) in self.edges.iter().enumerate() {
            for &(t, _) in outs {
                let tr = &stg.transitions()[t.0 as usize];
                if stg.signal_class(tr.signal) == SignalClass::Input {
                    continue;
                }
                for &(u, ui) in outs {
                    if u == t {
                        continue;
                    }
                    let still = self.edges[ui].iter().any(|&(w, _)| w == t);
                    if !still {
                        return Err(StgError::NotOutputPersistent {
                            disabled: stg.transition_label(t),
                            by: stg.transition_label(u),
                        });
                    }
                }
                let _ = si;
            }
        }
        Ok(())
    }
}

/// Infers the initial binary code: for each signal, the direction of the
/// transitions reachable *before any other transition of that signal*
/// determines the starting value; explicit `.init` values override.
fn infer_initial_code(
    stg: &Stg,
    masks: &[(u128, u128)],
    m0: u128,
    max_states: usize,
) -> Result<u64> {
    let mut code = 0u64;
    let explicit: HashMap<SignalIdx, bool> =
        stg.explicit_initial_values().iter().copied().collect();
    for s in 0..stg.num_signals() {
        if let Some(&v) = explicit.get(&s) {
            if v {
                code |= 1 << s;
            }
            continue;
        }
        // BFS over markings firing only transitions of other signals.
        let mut seen = std::collections::HashSet::new();
        seen.insert(m0);
        let mut work = vec![m0];
        let mut first_dir: Option<bool> = None;
        while let Some(m) = work.pop() {
            for (ti, &(pre, post)) in masks.iter().enumerate() {
                if m & pre != pre {
                    continue;
                }
                let tr = &stg.transitions()[ti];
                if tr.signal == s {
                    match first_dir {
                        None => first_dir = Some(tr.rising),
                        Some(d) if d != tr.rising => {
                            return Err(StgError::Inconsistent {
                                transition: stg.transition_label(TransitionId(ti as u32)),
                            })
                        }
                        _ => {}
                    }
                    continue; // do not fire s's own transitions
                }
                let next = (m & !pre) | post;
                if seen.len() >= max_states {
                    return Err(StgError::TooManyStates(max_states));
                }
                if seen.insert(next) {
                    work.push(next);
                }
            }
        }
        // First transition rising ⇒ the signal starts at 0.
        if first_dir == Some(false) {
            code |= 1 << s;
        }
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_g;

    const SEQ2: &str = "\
.model seq2
.inputs r
.outputs a b
.graph
r+ a+
a+ b+
b+ r-
r- a-
a- b-
b- r+
.marking { <b-,r+> }
";

    #[test]
    fn sequencer_has_six_states() {
        let g = parse_g(SEQ2).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        assert_eq!(sg.states().len(), 6);
        assert_eq!(sg.states()[sg.initial()].code, 0, "all signals start low");
        // Each state has exactly one successor (a simple cycle).
        for i in 0..6 {
            assert_eq!(sg.edges(i).len(), 1);
        }
        sg.check_initial_quiescent(&g).unwrap();
        sg.check_output_persistent(&g).unwrap();
    }

    #[test]
    fn celement_spec_has_eight_states() {
        let src = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        assert_eq!(sg.states().len(), 8);
        sg.check_output_persistent(&g).unwrap();
        let c = g.signal_by_name("c").unwrap();
        // In the state where a and b are up and c is not, c is excited.
        let s = sg
            .states()
            .iter()
            .position(|st| st.code == 0b011)
            .expect("state ab=11, c=0 reachable");
        assert!(sg.is_excited(&g, s, c));
        assert!(sg.next_value(&g, s, c));
    }

    #[test]
    fn initial_value_inference_handles_high_start() {
        // b starts at 1: its first transition is b-.
        let src = "\
.model hi
.inputs a
.outputs b
.graph
a+ b-
b- a-
a- b+
b+ a+
.marking { <b+,a+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        let b = g.signal_by_name("b").unwrap();
        assert!(sg.states()[0].code & (1 << b) != 0, "b inferred high");
    }

    #[test]
    fn explicit_init_overrides_inference() {
        let src = "\
.model hi
.inputs a
.outputs b
.graph
a+ b-
b- a-
a- b+
b+ a+
.marking { <b+,a+> }
.init b=1 a=0
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        assert_eq!(sg.states()[0].code, 0b10);
    }

    #[test]
    fn inconsistent_spec_rejected() {
        let src = "\
.model bad
.inputs a
.outputs b
.graph
a+ b+
b+ a+
.marking { <b+,a+> }
";
        // a+ fires twice in a row around the cycle with no a-.
        let g = parse_g(src).unwrap();
        assert!(matches!(
            StateGraph::build(&g),
            Err(StgError::Inconsistent { .. })
        ));
    }

    #[test]
    fn unsafe_net_rejected() {
        let src = "\
.model unsafe
.inputs a
.outputs b
.graph
p0 a+
a+ p1
a+ b+
b+ p1
.marking { p0 }
.init a=0 b=0
";
        // Both a+ and b+ put a token in p1.
        let g = parse_g(src).unwrap();
        assert!(matches!(
            StateGraph::build(&g),
            Err(StgError::NotSafe { .. })
        ));
    }

    #[test]
    fn non_quiescent_initial_detected() {
        let src = "\
.model nq
.inputs a
.outputs b
.graph
b+ a+
a+ b-
b- a-
a- b+
.marking { <a-,b+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        assert!(matches!(
            sg.check_initial_quiescent(&g),
            Err(StgError::InitialNotQuiescent { .. })
        ));
    }

    #[test]
    fn fork_join_is_output_persistent() {
        let src = "\
.model fj
.inputs r
.outputs x y a
.graph
r+ x+ y+
x+ a+
y+ a+
a+ r-
r- x- y-
x- a-
y- a-
a- r+
.marking { <a-,r+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        assert_eq!(sg.states().len(), 2 + 4 + 4); // 10 states
        sg.check_output_persistent(&g).unwrap();
    }
}
