//! The reconstructed benchmark suite.
//!
//! The DAC'97 paper evaluates on the classic asynchronous-synthesis
//! benchmark set (`alloc-outbound` … `vbe6a`).  The original Petrify/SIS
//! netlists are not redistributable, so this module carries hand-written
//! STG reconstructions with the same names, interface sizes and
//! controller styles; see `DESIGN.md` for the substitution rationale.
//! Every specification is validated (consistency, safeness, CSC,
//! quiescent reset, output persistency) by this module's tests.

use crate::model::Stg;
use crate::parser::parse_g;
use crate::Result;

macro_rules! suite {
    ($(($name:literal, $file:literal, $redundant:expr),)*) => {
        /// Names of all benchmarks, in the paper's table order.
        pub const NAMES: &[&str] = &[$($name),*];

        /// The `.g` source of a benchmark.
        pub fn source(name: &str) -> Option<&'static str> {
            match name {
                $($name => Some(include_str!(concat!("../benchmarks/", $file))),)*
                _ => None,
            }
        }

        /// Whether the benchmark is one of the three whose bounded-delay
        /// implementation carries redundant hazard covers in Table 2
        /// (`trimos-send`, `vbe10b`, `vbe6a`).
        pub fn is_redundant(name: &str) -> bool {
            match name {
                $($name => $redundant,)*
                _ => false,
            }
        }
    };
}

suite![
    ("alloc-outbound", "alloc-outbound.g", false),
    ("atod", "atod.g", false),
    ("chu150", "chu150.g", false),
    ("converta", "converta.g", false),
    ("dff", "dff.g", false),
    ("ebergen", "ebergen.g", false),
    ("hazard", "hazard.g", false),
    ("master-read", "master-read.g", false),
    ("mmu", "mmu.g", false),
    ("mp-forward-pkt", "mp-forward-pkt.g", false),
    ("nak-pa", "nak-pa.g", false),
    ("nowick", "nowick.g", false),
    ("ram-read-sbuf", "ram-read-sbuf.g", false),
    ("rcv-setup", "rcv-setup.g", false),
    ("rpdft", "rpdft.g", false),
    ("sbuf-ram-write", "sbuf-ram-write.g", false),
    ("sbuf-send-ctl", "sbuf-send-ctl.g", false),
    ("sbuf-send-pkt2", "sbuf-send-pkt2.g", false),
    ("seq4", "seq4.g", false),
    ("trimos-send", "trimos-send.g", true),
    ("vbe10b", "vbe10b.g", true),
    ("vbe5b", "vbe5b.g", false),
    ("vbe6a", "vbe6a.g", true),
];

/// Parses a benchmark by name.
///
/// # Errors
///
/// Returns [`crate::StgError::UnknownSignal`]-style parse errors only if a
/// bundled file is corrupt; unknown names yield a parse error.
pub fn load(name: &str) -> Result<Stg> {
    match source(name) {
        Some(src) => parse_g(src),
        None => Err(crate::StgError::Parse {
            line: 0,
            msg: format!("unknown benchmark `{name}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::check_csc;
    use crate::sg::StateGraph;
    use crate::synth::{complex_gate, two_level, Redundancy};

    #[test]
    fn every_benchmark_is_well_formed() {
        for &name in NAMES {
            let stg = load(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(stg.name(), name, "model name matches");
            let sg = StateGraph::build(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(sg.states().len() >= 6, "{name}: trivially small");
            check_csc(&stg, &sg).unwrap_or_else(|e| panic!("{name}: {e}"));
            sg.check_initial_quiescent(&stg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            sg.check_output_persistent(&stg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn every_benchmark_synthesizes_both_styles() {
        for &name in NAMES {
            let stg = load(name).unwrap();
            let sg = StateGraph::build(&stg).unwrap();
            let si = complex_gate(&stg, &sg).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                si.is_stable(si.initial_state()),
                "{name}: SI reset unstable"
            );
            let style = if is_redundant(name) {
                Redundancy::AllPrimes
            } else {
                Redundancy::None
            };
            let bd = two_level(&stg, &sg, style).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                bd.is_stable(bd.initial_state()),
                "{name}: 2L reset unstable"
            );
            assert!(
                bd.num_gates() >= si.num_gates(),
                "{name}: decomposition should not shrink"
            );
        }
    }

    #[test]
    fn suite_covers_the_paper_table() {
        assert_eq!(NAMES.len(), 23);
        for n in ["master-read", "trimos-send", "vbe10b", "vbe6a", "dff"] {
            assert!(NAMES.contains(&n));
        }
        assert!(is_redundant("trimos-send"));
        assert!(is_redundant("vbe10b"));
        assert!(is_redundant("vbe6a"));
        assert!(!is_redundant("dff"));
        assert!(load("no-such-benchmark").is_err());
    }

    #[test]
    fn synthesized_circuits_follow_their_specification() {
        // Walk each SI circuit along one specified firing sequence and
        // confirm every settled state matches the SG code.  The exact
        // interleaving analysis is used rather than ternary simulation:
        // ternary is conservative on binate covers and may report Φ for
        // transitions that are in fact confluent.
        use satpg_sim::{settle_explicit, ExplicitConfig, Injection};
        for &name in NAMES {
            let stg = load(name).unwrap();
            let sg = StateGraph::build(&stg).unwrap();
            let ckt = complex_gate(&stg, &sg).unwrap();
            // Follow input transitions: apply each SG input edge as a
            // pattern; outputs must settle to the SG's code.
            let mut sg_state = sg.initial();
            let mut ckt_state = ckt.initial_state().clone();
            let inputs = stg.signals_of_class(crate::model::SignalClass::Input);
            for _step in 0..24 {
                // Find an enabled input edge, fire it.
                let Some(&(t, succ)) = sg
                    .edges(sg_state)
                    .iter()
                    .find(|&&(t, _)| inputs.contains(&stg.transitions()[t.0 as usize].signal))
                else {
                    // Outputs must fire first: advance the SG until an
                    // input edge is available.
                    let Some(&(_, succ)) = sg.edges(sg_state).first() else {
                        break;
                    };
                    sg_state = succ;
                    continue;
                };
                let _ = t;
                sg_state = succ;
                // Advance the SG past all output firings (the circuit does
                // them on its own while settling).
                loop {
                    let next = sg
                        .edges(sg_state)
                        .iter()
                        .find(|&&(t, _)| !inputs.contains(&stg.transitions()[t.0 as usize].signal));
                    match next {
                        Some(&(_, succ)) => sg_state = succ,
                        None => break,
                    }
                }
                // The circuit pattern: the SG code restricted to inputs.
                let code = sg.states()[sg_state].code;
                let mut pattern = 0u64;
                for (pi, &s) in inputs.iter().enumerate() {
                    if code & (1 << s) != 0 {
                        pattern |= 1 << pi;
                    }
                }
                let out = settle_explicit(
                    &ckt,
                    &ckt_state,
                    pattern,
                    &Injection::none(),
                    &ExplicitConfig::for_circuit(&ckt),
                );
                let settled = out
                    .confluent()
                    .unwrap_or_else(|| panic!("{name}: specified transition not confluent"))
                    .clone();
                // Every STG signal value must match the settled circuit.
                for s in 0..stg.num_signals() {
                    let sig = ckt.signal_by_name(stg.signal_name(s)).unwrap();
                    assert_eq!(
                        settled.get(sig.index()),
                        code & (1 << s) != 0,
                        "{name}: signal {} after step",
                        stg.signal_name(s)
                    );
                }
                ckt_state = settled;
            }
        }
    }
}
