//! Parser for the standard `.g` (astg) specification format.
//!
//! ```text
//! # reconstruction of the classic seq4 controller
//! .model seq4
//! .inputs r
//! .outputs a b
//! .graph
//! r+ a+
//! a+ b+
//! b+ r-
//! r- a-
//! a- b-
//! b- r+
//! .marking { <b-,r+> }
//! .end
//! ```
//!
//! Supported: `.model`, `.inputs`, `.outputs`, `.internal`, `.graph`,
//! explicit places, transition instances (`a+/1`), `.marking` with both
//! explicit places and implicit `<t,t>` places, and a non-standard
//! `.init a=1 b=0` directive to pin initial signal values (otherwise they
//! are inferred from the marking).

use crate::error::StgError;
use crate::model::{SignalClass, Stg, TransitionId};
use crate::Result;
use std::collections::HashMap;

fn err(line: usize, msg: impl Into<String>) -> StgError {
    StgError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Splits `a+/1` into (signal, rising, instance); `None` if not a
/// transition token.
fn parse_transition_token(tok: &str) -> Option<(&str, bool, u32)> {
    let (head, inst) = match tok.split_once('/') {
        Some((h, i)) => (h, i.parse::<u32>().ok()?),
        None => (tok, 0),
    };
    let rising = if head.ends_with('+') {
        true
    } else if head.ends_with('-') {
        false
    } else {
        return None;
    };
    let name = &head[..head.len() - 1];
    if name.is_empty() {
        return None;
    }
    Some((name, rising, inst))
}

/// Parses a `.g` source into an [`Stg`].
///
/// # Errors
///
/// Returns [`StgError::Parse`] on syntax errors and
/// [`StgError::UnknownSignal`] when a transition uses an undeclared
/// signal.
pub fn parse_g(src: &str) -> Result<Stg> {
    let mut stg = Stg::new("unnamed");
    let mut classes: HashMap<String, SignalClass> = HashMap::new();
    let mut declared: Vec<(String, SignalClass)> = Vec::new();
    let mut graph_lines: Vec<(usize, String)> = Vec::new();
    let mut marking_entries: Vec<(usize, String)> = Vec::new();
    let mut inits: Vec<(usize, String, bool)> = Vec::new();
    let mut in_graph = false;

    for (ln0, raw) in src.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            in_graph = false;
            let (dir, args) = match rest.split_once(char::is_whitespace) {
                Some((d, a)) => (d, a.trim()),
                None => (rest, ""),
            };
            match dir {
                "model" | "name" => stg = Stg::new(args),
                "inputs" | "outputs" | "internal" => {
                    let class = match dir {
                        "inputs" => SignalClass::Input,
                        "outputs" => SignalClass::Output,
                        _ => SignalClass::Internal,
                    };
                    for s in args.split_whitespace() {
                        // A doubly-declared signal would silently shadow
                        // its first index downstream; reject it here.
                        if classes.insert(s.to_string(), class).is_some() {
                            return Err(err(ln, format!("signal `{s}` declared twice")));
                        }
                        declared.push((s.to_string(), class));
                    }
                }
                "graph" => in_graph = true,
                "marking" => {
                    let body = args.trim_start_matches('{').trim_end_matches('}').trim();
                    // Entries are either `<t,t>` or a bare place name.
                    let mut rest = body;
                    while !rest.is_empty() {
                        rest = rest.trim_start();
                        if rest.starts_with('<') {
                            let close = rest
                                .find('>')
                                .ok_or_else(|| err(ln, "unclosed `<` in marking"))?;
                            marking_entries.push((ln, rest[..=close].to_string()));
                            rest = &rest[close + 1..];
                        } else {
                            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                            marking_entries.push((ln, rest[..end].to_string()));
                            rest = &rest[end..];
                        }
                    }
                }
                "init" => {
                    for tok in args.split_whitespace() {
                        let (sig, val) = tok
                            .split_once('=')
                            .ok_or_else(|| err(ln, format!("expected `sig=0|1`, got `{tok}`")))?;
                        let v = match val {
                            "0" => false,
                            "1" => true,
                            _ => return Err(err(ln, format!("bad init value `{val}`"))),
                        };
                        inits.push((ln, sig.to_string(), v));
                    }
                }
                "end" => break,
                "capacity" | "outputs_internal" | "dummy" => {
                    return Err(err(ln, format!("unsupported directive `.{dir}`")))
                }
                other => return Err(err(ln, format!("unknown directive `.{other}`"))),
            }
        } else if in_graph {
            graph_lines.push((ln, line.to_string()));
        } else {
            return Err(err(ln, format!("unexpected content `{line}`")));
        }
    }

    // Declare signals in declaration order so indices are predictable.
    for (name, class) in &declared {
        stg.add_signal(name.clone(), *class);
    }

    let mut transitions: HashMap<String, TransitionId> = HashMap::new();
    let mut places: HashMap<String, u32> = HashMap::new();
    let mut implicit: HashMap<(TransitionId, TransitionId), u32> = HashMap::new();

    // Two passes over the graph: first learn all node tokens, then wire.
    enum Node {
        T(TransitionId),
        P(u32),
    }
    let node_of = |stg: &mut Stg,
                   transitions: &mut HashMap<String, TransitionId>,
                   places: &mut HashMap<String, u32>,
                   ln: usize,
                   tok: &str|
     -> Result<Node> {
        if let Some((name, rising, inst)) = parse_transition_token(tok) {
            let sig = stg
                .signal_by_name(name)
                .ok_or_else(|| StgError::UnknownSignal(name.to_string()))?;
            let id = match transitions.get(tok) {
                Some(&t) => t,
                None => {
                    let t = stg.add_transition(sig, rising, inst);
                    transitions.insert(tok.to_string(), t);
                    t
                }
            };
            Ok(Node::T(id))
        } else {
            if tok.contains(['<', '>', ',']) {
                return Err(err(ln, format!("bad token `{tok}`")));
            }
            let id = match places.get(tok) {
                Some(&p) => p,
                None => {
                    let p = stg.add_place(Some(tok.to_string()));
                    places.insert(tok.to_string(), p);
                    p
                }
            };
            Ok(Node::P(id))
        }
    };

    for (ln, line) in &graph_lines {
        let mut toks = line.split_whitespace();
        let src_tok = toks.next().ok_or_else(|| err(*ln, "empty graph line"))?;
        let src = node_of(&mut stg, &mut transitions, &mut places, *ln, src_tok)?;
        for dst_tok in toks {
            let dst = node_of(&mut stg, &mut transitions, &mut places, *ln, dst_tok)?;
            match (&src, &dst) {
                (Node::T(a), Node::T(b)) => {
                    let p = *implicit
                        .entry((*a, *b))
                        .or_insert_with(|| stg.add_place(None));
                    stg.arc_tp(*a, p);
                    stg.arc_pt(p, *b);
                }
                (Node::T(a), Node::P(p)) => stg.arc_tp(*a, *p),
                (Node::P(p), Node::T(b)) => stg.arc_pt(*p, *b),
                (Node::P(_), Node::P(_)) => {
                    return Err(err(*ln, "place-to-place arcs are not allowed"))
                }
            }
        }
    }

    for (ln, entry) in &marking_entries {
        if let Some(body) = entry.strip_prefix('<').and_then(|e| e.strip_suffix('>')) {
            let (a, b) = body
                .split_once(',')
                .ok_or_else(|| err(*ln, format!("bad marking entry `{entry}`")))?;
            let ta = *transitions
                .get(a.trim())
                .ok_or_else(|| err(*ln, format!("unknown transition `{a}` in marking")))?;
            let tb = *transitions
                .get(b.trim())
                .ok_or_else(|| err(*ln, format!("unknown transition `{b}` in marking")))?;
            let p = *implicit
                .get(&(ta, tb))
                .ok_or_else(|| err(*ln, format!("no implicit place between `{a}` and `{b}`")))?;
            stg.mark(p);
        } else {
            let p = *places
                .get(entry.as_str())
                .ok_or_else(|| err(*ln, format!("unknown place `{entry}` in marking")))?;
            stg.mark(p);
        }
    }

    for (ln, name, v) in inits {
        let s = stg
            .signal_by_name(&name)
            .ok_or_else(|| err(ln, format!("unknown signal `{name}` in .init")))?;
        stg.set_initial_value(s, v);
    }

    Ok(stg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEQ: &str = "\
.model seq2
.inputs r
.outputs a b
.graph
r+ a+
a+ b+
b+ r-
r- a-
a- b-
b- r+
.marking { <b-,r+> }
.end
";

    #[test]
    fn parses_sequencer() {
        let g = parse_g(SEQ).unwrap();
        assert_eq!(g.name(), "seq2");
        assert_eq!(g.num_signals(), 3);
        assert_eq!(g.transitions().len(), 6);
        assert_eq!(g.num_places(), 6);
        assert_eq!(g.initial_marking().len(), 1);
    }

    #[test]
    fn transition_token_forms() {
        assert_eq!(parse_transition_token("a+"), Some(("a", true, 0)));
        assert_eq!(parse_transition_token("foo-/3"), Some(("foo", false, 3)));
        assert_eq!(parse_transition_token("p1"), None);
        assert_eq!(parse_transition_token("+"), None);
    }

    #[test]
    fn explicit_places_and_marking() {
        let src = "\
.model x
.inputs a
.outputs b
.graph
p0 a+
a+ b+
b+ p0
.marking { p0 }
";
        let g = parse_g(src).unwrap();
        assert_eq!(g.num_places(), 2); // p0 + one implicit
        assert_eq!(g.initial_marking().len(), 1);
        assert_eq!(g.place_name(g.initial_marking()[0]), "p0");
    }

    #[test]
    fn fan_out_line_creates_multiple_arcs() {
        let src = "\
.model f
.inputs r
.outputs x y
.graph
r+ x+ y+
x+ r-
y+ r-
r- x- y-
x- r+
y- r+
.marking { <x-,r+> <y-,r+> }
";
        let g = parse_g(src).unwrap();
        // r+ has two output implicit places.
        let rp = g
            .transitions()
            .iter()
            .position(|t| g.signal_name(t.signal) == "r" && t.rising)
            .unwrap();
        assert_eq!(g.post(TransitionId(rp as u32)).len(), 2);
        assert_eq!(g.initial_marking().len(), 2);
    }

    #[test]
    fn init_directive() {
        let src = "\
.model i
.inputs a
.outputs b
.graph
a- b-
b- a-
.marking { <b-,a-> }
.init a=1 b=1
";
        let g = parse_g(src).unwrap();
        assert_eq!(g.explicit_initial_values().len(), 2);
    }

    #[test]
    fn errors_are_located() {
        match parse_g(".bogus x\n") {
            Err(StgError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(matches!(
            parse_g(".model m\n.graph\nq+ r+\n"),
            Err(StgError::UnknownSignal(_))
        ));
        assert!(parse_g(".model m\n.inputs a\n.graph\np q\n").is_err());
        assert!(parse_g(".model m\n.inputs a\n.marking { <a+,a-> }\n").is_err());
    }

    #[test]
    fn marking_with_multiple_entries_no_spaces() {
        let src = "\
.model m
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+><c-,b+> }
";
        let g = parse_g(src).unwrap();
        assert_eq!(g.initial_marking().len(), 2);
    }
}
