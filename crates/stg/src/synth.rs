//! Netlist synthesis from a state graph.
//!
//! Two backends, mirroring the two benchmark families of the paper:
//!
//! * [`complex_gate`] — each non-input signal becomes one atomic
//!   sum-of-products gate over the signal variables (with a feedback
//!   literal when the function is state-holding).  This is the
//!   complex-gate speed-independent style of Petrify's output, used for
//!   the Table 1 circuits.
//! * [`two_level`] — each cube becomes an AND gate (negative literals via
//!   shared inverters) feeding an OR gate per output, the bounded-delay
//!   style of SIS's output, used for the Table 2 circuits.  With
//!   [`Redundancy::HazardConsensus`] the cover is augmented with redundant
//!   consensus cubes — the hazard covers that SIS adds against spurious
//!   pulses, and precisely the redundancy the paper blames for the
//!   untestable faults of `trimos-send`, `vbe10b` and `vbe6a`.

use crate::cover::{minimize, Cover, Cube};
use crate::csc::check_csc;
use crate::error::StgError;
use crate::model::{SignalClass, SignalIdx, Stg};
use crate::sg::StateGraph;
use crate::Result;
use satpg_netlist::{Circuit, CircuitBuilder, GateKind, Literal, Sop};
use std::collections::{HashMap, HashSet};

/// Redundancy policy for [`two_level`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Redundancy {
    /// Emit the minimized cover as-is.
    #[default]
    None,
    /// Add every consensus cube of the cover (one closure round).  The
    /// added cubes never change the function — they are redundant by
    /// construction — but they remove static-1 hazards between adjacent
    /// cubes, as the bounded-delay synthesis flow does.
    HazardConsensus,
    /// Use **all** prime implicants touching the ON-set instead of a
    /// minimal cover — the prime closure that hazard-free two-level
    /// synthesis drifts toward (a cube for every required transition).
    /// The extra cubes are redundant and carry untestable fault sites,
    /// reproducing the paper's `trimos-send`/`vbe10b`/`vbe6a` effect.
    AllPrimes,
}

/// Derives the minimized next-state cover for every non-input signal.
///
/// # Errors
///
/// Fails if the specification violates CSC (the next-state function would
/// be ill-defined) or has no outputs.
pub fn next_state_covers(stg: &Stg, sg: &StateGraph) -> Result<Vec<(SignalIdx, Cover)>> {
    next_state_covers_with(stg, sg, false)
}

/// Like [`next_state_covers`], but optionally returning the full prime
/// closure per signal instead of a minimal cover.
pub fn next_state_covers_with(
    stg: &Stg,
    sg: &StateGraph,
    full_primes: bool,
) -> Result<Vec<(SignalIdx, Cover)>> {
    check_csc(stg, sg)?;
    let non_inputs = stg.non_input_signals();
    if non_inputs.is_empty() {
        return Err(StgError::NoOutputs);
    }
    if stg.num_signals() > 16 {
        return Err(StgError::TooLarge {
            what: "signals",
            limit: 16,
        });
    }
    let n = stg.num_signals();
    let reachable: HashSet<u64> = sg.states().iter().map(|s| s.code).collect();
    let mut out = Vec::new();
    for &s in &non_inputs {
        let mut on: Vec<u64> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for (i, st) in sg.states().iter().enumerate() {
            if seen.insert(st.code) && sg.next_value(stg, i, s) {
                on.push(st.code);
            }
        }
        let dc: Vec<u64> = (0..(1u64 << n))
            .filter(|c| !reachable.contains(c))
            .collect();
        let cover = if full_primes {
            crate::cover::all_primes(&on, &dc, n)
        } else {
            minimize(&on, &dc, n)
        };
        out.push((s, cover));
    }
    Ok(out)
}

/// Environment-pad name for an input signal.
fn pad_name(stg: &Stg, s: SignalIdx) -> String {
    format!("{}_pad", stg.signal_name(s))
}

fn declare_inputs(stg: &Stg, b: &mut CircuitBuilder) {
    for s in stg.signals_of_class(SignalClass::Input) {
        b.input(pad_name(stg, s), stg.signal_name(s).to_string());
    }
}

fn set_initial(stg: &Stg, sg: &StateGraph, b: &mut CircuitBuilder) {
    let code = sg.states()[sg.initial()].code;
    for s in 0..stg.num_signals() {
        let v = code & (1 << s) != 0;
        if stg.signal_class(s) == SignalClass::Input {
            b.init(pad_name(stg, s), v);
        }
        b.init(stg.signal_name(s).to_string(), v);
    }
}

/// Synthesizes the complex-gate speed-independent implementation.
///
/// # Errors
///
/// Fails on CSC violations or if the initial marking enables an output
/// transition (no stable reset state).
pub fn complex_gate(stg: &Stg, sg: &StateGraph) -> Result<Circuit> {
    sg.check_initial_quiescent(stg)?;
    let covers = next_state_covers(stg, sg)?;
    let mut b = CircuitBuilder::new(stg.name().to_string());
    declare_inputs(stg, &mut b);
    for (s, cover) in &covers {
        let kind = sop_kind(cover);
        let pins: Vec<_> = cover
            .support()
            .iter()
            .map(|&v| b.signal(stg.signal_name(v).to_string()))
            .collect();
        b.gate(stg.signal_name(*s).to_string(), kind, pins);
    }
    for s in stg.signals_of_class(SignalClass::Output) {
        let sig = b.signal(stg.signal_name(s).to_string());
        b.output(sig);
    }
    set_initial(stg, sg, &mut b);
    Ok(b.finish()?)
}

/// Converts a cover into a gate kind over its support (pin `i` = i-th
/// support variable).
fn sop_kind(cover: &Cover) -> GateKind {
    if cover.cubes.is_empty() {
        return GateKind::Const(false);
    }
    if cover.cubes.len() == 1 && cover.cubes[0].num_literals() == 0 {
        return GateKind::Const(true);
    }
    let support = cover.support();
    let pin_of: HashMap<usize, usize> = support.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    GateKind::Sop(Sop {
        cubes: cover
            .cubes
            .iter()
            .map(|c| {
                satpg_netlist::Cube(
                    c.literals()
                        .into_iter()
                        .map(|(v, pos)| Literal {
                            pin: pin_of[&v],
                            positive: pos,
                        })
                        .collect(),
                )
            })
            .collect(),
    })
}

/// Adds one closure round of consensus cubes to `cover` (deduplicated,
/// skipping cubes already covered by an existing cube).
pub fn add_consensus_cubes(cover: &Cover) -> Cover {
    let mut cubes = cover.cubes.clone();
    let mut extra: Vec<Cube> = Vec::new();
    for (i, a) in cover.cubes.iter().enumerate() {
        for b in &cover.cubes[i + 1..] {
            if let Some(c) = a.consensus(b) {
                let covered = cubes.iter().chain(&extra).any(|x| x.covers(&c));
                if !covered {
                    extra.push(c);
                }
            }
        }
    }
    cubes.extend(extra);
    cubes.sort_unstable();
    cubes.dedup();
    Cover { cubes }
}

/// Synthesizes the two-level bounded-delay implementation: shared input
/// inverters, one AND gate per combinational cube, and per output either
/// an OR gate or — when the function is state-holding — an AND-OR latch
/// cell that keeps the feedback cubes atomic.
///
/// Decomposing the hold path of a latch (`a = x + r·a` into separate
/// AND/OR gates) creates a critical race under the unbounded-delay model
/// that no test cycle survives; bounded-delay flows map such functions to
/// library latch cells, which is what the atomic latch gate models.  The
/// combinational cubes are still exposed as discrete AND gates (with
/// their own fault sites), which is where [`Redundancy::HazardConsensus`]
/// inserts the redundant covers.
///
/// # Errors
///
/// Same conditions as [`complex_gate`].
pub fn two_level(stg: &Stg, sg: &StateGraph, redundancy: Redundancy) -> Result<Circuit> {
    sg.check_initial_quiescent(stg)?;
    let covers = next_state_covers_with(stg, sg, redundancy == Redundancy::AllPrimes)?;
    let code = sg.states()[sg.initial()].code;
    let value_of = |s: SignalIdx| code & (1 << s) != 0;

    let augmented: Vec<(SignalIdx, Cover)> = covers
        .iter()
        .map(|(s, c)| {
            let c = match redundancy {
                Redundancy::None | Redundancy::AllPrimes => c.clone(),
                Redundancy::HazardConsensus => add_consensus_cubes(c),
            };
            (*s, c)
        })
        .collect();

    let mut b = CircuitBuilder::new(format!("{}_2l", stg.name()));
    declare_inputs(stg, &mut b);

    // Shared inverters for the decomposed (non-feedback) cubes only;
    // latch-cell pins take negative literals natively.
    let mut inverters: HashSet<SignalIdx> = HashSet::new();
    let mut pending_inv: Vec<SignalIdx> = Vec::new();
    for (s, cover) in &augmented {
        for c in &cover.cubes {
            let lits = c.literals();
            if lits.iter().any(|&(v, _)| v == *s) || lits.len() < 2 {
                continue; // feedback cube or single literal: no AND gate
            }
            for (v, pos) in lits {
                if !pos && inverters.insert(v) {
                    pending_inv.push(v);
                }
            }
        }
    }
    pending_inv.sort_unstable();
    for v in &pending_inv {
        let src = b.signal(stg.signal_name(*v).to_string());
        b.gate(
            format!("{}_n", stg.signal_name(*v)),
            GateKind::Not,
            vec![src],
        );
        b.init(format!("{}_n", stg.signal_name(*v)), !value_of(*v));
    }

    let lit_signal = |stg: &Stg, v: usize, pos: bool| -> String {
        if pos {
            stg.signal_name(v).to_string()
        } else {
            format!("{}_n", stg.signal_name(v))
        }
    };

    for (s, cover) in &augmented {
        let name = stg.signal_name(*s).to_string();
        if cover.cubes.is_empty() {
            b.gate(name.clone(), GateKind::Const(false), vec![]);
            continue;
        }
        if cover.cubes.len() == 1 && cover.cubes[0].num_literals() == 0 {
            b.gate(name.clone(), GateKind::Const(true), vec![]);
            continue;
        }
        // Pins of the output cell: a mix of decomposed-AND outputs,
        // direct literal signals, and raw signals for feedback cubes.
        let mut pin_names: Vec<String> = Vec::new();
        let mut pin_polarity: Vec<bool> = Vec::new();
        let mut out_cubes: Vec<satpg_netlist::Cube> = Vec::new();
        let pin_of = |pin_names: &mut Vec<String>,
                      pin_polarity: &mut Vec<bool>,
                      name: String,
                      positive: bool|
         -> usize {
            match pin_names.iter().position(|n| *n == name) {
                Some(i) => i,
                None => {
                    pin_names.push(name);
                    pin_polarity.push(positive);
                    pin_names.len() - 1
                }
            }
        };
        for (j, c) in cover.cubes.iter().enumerate() {
            let lits = c.literals();
            let is_feedback = lits.iter().any(|&(v, _)| v == *s);
            if is_feedback {
                // Keep the cube atomic inside the latch cell.
                let mut cube = Vec::new();
                for (v, pos) in lits {
                    let p = pin_of(
                        &mut pin_names,
                        &mut pin_polarity,
                        stg.signal_name(v).to_string(),
                        true,
                    );
                    cube.push(Literal {
                        pin: p,
                        positive: pos,
                    });
                }
                out_cubes.push(satpg_netlist::Cube(cube));
            } else if lits.len() == 1 {
                let (v, pos) = lits[0];
                let p = pin_of(
                    &mut pin_names,
                    &mut pin_polarity,
                    lit_signal(stg, v, pos),
                    true,
                );
                out_cubes.push(satpg_netlist::Cube(vec![Literal::pos(p)]));
            } else {
                let and_name = format!("{name}_c{j}");
                let pins: Vec<_> = lits
                    .iter()
                    .map(|&(v, pos)| b.signal(lit_signal(stg, v, pos)))
                    .collect();
                b.gate(and_name.clone(), GateKind::And, pins);
                b.init(and_name.clone(), c.contains(code));
                let p = pin_of(&mut pin_names, &mut pin_polarity, and_name, true);
                out_cubes.push(satpg_netlist::Cube(vec![Literal::pos(p)]));
            }
        }
        let pins: Vec<_> = pin_names.iter().map(|n| b.signal(n.clone())).collect();
        let all_single_pos = out_cubes.iter().all(|c| c.0.len() == 1 && c.0[0].positive);
        if all_single_pos && out_cubes.len() == pins.len() {
            // Purely combinational: a plain OR (or buffer) suffices.
            if pins.len() == 1 {
                b.gate(name.clone(), GateKind::Buf, pins);
            } else {
                b.gate(name.clone(), GateKind::Or, pins);
            }
        } else {
            b.gate(name.clone(), GateKind::Sop(Sop { cubes: out_cubes }), pins);
        }
    }
    for s in stg.signals_of_class(SignalClass::Output) {
        let sig = b.signal(stg.signal_name(s).to_string());
        b.output(sig);
    }
    set_initial(stg, sg, &mut b);
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_g;
    use satpg_sim::{ternary_settle, Injection, TernaryOutcome};

    const CELEM: &str = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
";

    fn synth_celem() -> Circuit {
        let g = parse_g(CELEM).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        complex_gate(&g, &sg).unwrap()
    }

    #[test]
    fn celement_complex_gate_is_majority() {
        let c = synth_celem();
        // Two input buffers + one complex gate.
        assert_eq!(c.num_gates(), 3);
        assert!(c.is_stable(c.initial_state()));
        // Raise both inputs: c rises.
        let out = ternary_settle(&c, c.initial_state(), 0b11, &Injection::none());
        let s = out.definite().expect("race-free").clone();
        assert!(s.get(c.signal_by_name("c").unwrap().index()));
        // Lower one input: c holds.
        let out = ternary_settle(&c, &s, 0b01, &Injection::none());
        let s = out.definite().unwrap();
        assert!(s.get(c.signal_by_name("c").unwrap().index()));
    }

    #[test]
    fn celement_two_level_matches_behaviour() {
        let g = parse_g(CELEM).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        let c = two_level(&g, &sg, Redundancy::None).unwrap();
        assert!(c.is_stable(c.initial_state()));
        assert!(c.num_gates() > 3, "decomposed into AND/OR gates");
        let out = ternary_settle(&c, c.initial_state(), 0b11, &Injection::none());
        let s = out
            .definite()
            .expect("majority raise is still clean")
            .clone();
        assert!(s.get(c.signal_by_name("c").unwrap().index()));
    }

    #[test]
    fn consensus_cubes_are_redundant() {
        // f = ab + āc: consensus bc is redundant.
        let cover = Cover {
            cubes: vec![
                Cube {
                    mask: 0b011,
                    val: 0b011,
                },
                Cube {
                    mask: 0b101,
                    val: 0b100,
                },
            ],
        };
        let aug = add_consensus_cubes(&cover);
        assert_eq!(aug.cubes.len(), 3);
        for p in 0..8u64 {
            assert_eq!(cover.contains(p), aug.contains(p), "point {p:b}");
        }
    }

    #[test]
    fn redundant_two_level_has_more_gates() {
        let g = parse_g(CELEM).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        let plain = two_level(&g, &sg, Redundancy::None).unwrap();
        let red = two_level(&g, &sg, Redundancy::HazardConsensus).unwrap();
        // The C-element cover ab + ac + bc is closed under consensus, so
        // pick a function with a real gap if the counts tie — here we only
        // require monotonicity.
        assert!(red.num_gates() >= plain.num_gates());
    }

    #[test]
    fn two_level_with_real_consensus_gap() {
        // A spec whose cover has non-trivial consensus: f over (r, x).
        let src = "\
.model gap
.inputs r
.outputs x y
.graph
r+ x+
x+ y+
y+ r-
r- x-
x- y-
y- r+
.marking { <y-,r+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        let plain = two_level(&g, &sg, Redundancy::None).unwrap();
        let red = two_level(&g, &sg, Redundancy::HazardConsensus).unwrap();
        assert!(plain.is_stable(plain.initial_state()));
        assert!(red.is_stable(red.initial_state()));
    }

    #[test]
    fn non_quiescent_spec_refused() {
        let src = "\
.model nq
.inputs a
.outputs b
.graph
b+ a+
a+ b-
b- a-
a- b+
.marking { <a-,b+> }
";
        let g = parse_g(src).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        assert!(matches!(
            complex_gate(&g, &sg),
            Err(StgError::InitialNotQuiescent { .. })
        ));
    }

    #[test]
    fn synthesized_circuit_follows_specification() {
        // Drive the complex-gate C-element around its specified cycle and
        // check each settled state matches the SG code.
        let g = parse_g(CELEM).unwrap();
        let sg = StateGraph::build(&g).unwrap();
        let c = complex_gate(&g, &sg).unwrap();
        let idx_of = |n: &str| c.signal_by_name(n).unwrap().index();
        let mut state = c.initial_state().clone();
        // Cycle: a+ b+ (c+) a- b- (c-), checking c after each settle.
        for (pattern, expect_c) in [(0b01, false), (0b11, true), (0b10, true), (0b00, false)] {
            let out = ternary_settle(&c, &state, pattern, &Injection::none());
            match out {
                TernaryOutcome::Definite(s) => {
                    assert_eq!(s.get(idx_of("c")), expect_c, "pattern {pattern:02b}");
                    state = s;
                }
                TernaryOutcome::Uncertain(_) => {
                    panic!("specified transition must be race-free")
                }
            }
        }
    }
}
