//! Signal Transition Graphs (STGs) and logic synthesis of asynchronous
//! controllers.
//!
//! This crate is the benchmark substrate for the DAC'97 reproduction: the
//! paper evaluates its ATPG on controllers synthesized by **Petrify**
//! (speed-independent, Table 1) and **SIS** (hazard-free bounded-delay,
//! Table 2) from the classic asynchronous benchmark specifications.  Those
//! tools and netlists are not redistributable, so this crate provides the
//! whole pipeline from scratch:
//!
//! * [`Stg`] — safe Petri nets labeled with signal transitions, parsed
//!   from the standard `.g` (astg) format ([`parse_g`]);
//! * [`StateGraph`] — the token game, reachability, consistency and
//!   output-persistency checking;
//! * [`csc`] — unique/complete state coding checks;
//! * [`cover`] — a two-level logic minimizer (Quine–McCluskey primes +
//!   greedy covering with don't-cares);
//! * [`synth`] — netlist generation: one complex gate per output signal
//!   (the Petrify stand-in) or a two-level AND-OR network with optional
//!   hazard-covering redundant cubes (the SIS stand-in);
//! * [`suite`] — a reconstructed benchmark suite using the paper's
//!   circuit names.
//!
//! # Example
//!
//! ```
//! use satpg_stg::{parse_g, StateGraph, synth};
//!
//! let stg = parse_g(satpg_stg::suite::source("seq4").unwrap()).unwrap();
//! let sg = StateGraph::build(&stg).unwrap();
//! let ckt = synth::complex_gate(&stg, &sg).unwrap();
//! assert!(ckt.is_stable(ckt.initial_state()));
//! ```

pub mod cover;
pub mod csc;
mod error;
pub mod families;
mod model;
mod parser;
mod sg;
pub mod suite;
pub mod synth;

pub use error::StgError;
pub use model::{NodeId, SignalClass, SignalIdx, Stg, TransitionId};
pub use parser::parse_g;
pub use sg::{SgState, StateGraph};

/// Convenient alias for results in this crate.
pub type Result<T> = std::result::Result<T, StgError>;
