//! The STG model: a safe Petri net whose transitions are labeled with
//! signal edges (`a+` / `a-`).

use std::collections::HashMap;
use std::fmt;

/// Index of a signal within an [`Stg`].
pub type SignalIdx = usize;

/// Identifies a transition within an [`Stg`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TransitionId(pub u32);

/// Identifies a place or transition when wiring arcs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeId {
    /// A place index.
    Place(u32),
    /// A transition.
    Transition(TransitionId),
}

/// Interface class of a signal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SignalClass {
    /// Driven by the environment.
    Input,
    /// Driven by the circuit and observable.
    Output,
    /// Driven by the circuit, not observable.
    Internal,
}

/// A transition: a rising or falling edge of a signal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition {
    /// The signal.
    pub signal: SignalIdx,
    /// `true` for `a+`, `false` for `a-`.
    pub rising: bool,
    /// Instance index (`a+/1` is instance 1); purely for labeling.
    pub instance: u32,
}

/// A signal transition graph.
///
/// Places are anonymous capacity-1 buffers; arcs run between places and
/// transitions.  Implicit places of the `.g` format are materialized as
/// ordinary places by the parser.
#[derive(Clone, Debug)]
pub struct Stg {
    name: String,
    signal_names: Vec<String>,
    signal_classes: Vec<SignalClass>,
    transitions: Vec<Transition>,
    /// For each transition, its input places.
    pre: Vec<Vec<u32>>,
    /// For each transition, its output places.
    post: Vec<Vec<u32>>,
    num_places: u32,
    place_names: Vec<String>,
    initial_marking: Vec<u32>,
    /// Explicit initial values (signal, value); missing ones are inferred.
    initial_values: Vec<(SignalIdx, bool)>,
    name_index: HashMap<String, SignalIdx>,
}

impl Stg {
    /// Creates an empty STG.
    pub fn new(name: impl Into<String>) -> Self {
        Stg {
            name: name.into(),
            signal_names: Vec::new(),
            signal_classes: Vec::new(),
            transitions: Vec::new(),
            pre: Vec::new(),
            post: Vec::new(),
            num_places: 0,
            place_names: Vec::new(),
            initial_marking: Vec::new(),
            initial_values: Vec::new(),
            name_index: HashMap::new(),
        }
    }

    /// Specification name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a signal and returns its index.
    pub fn add_signal(&mut self, name: impl Into<String>, class: SignalClass) -> SignalIdx {
        let name = name.into();
        let idx = self.signal_names.len();
        self.name_index.insert(name.clone(), idx);
        self.signal_names.push(name);
        self.signal_classes.push(class);
        idx
    }

    /// Number of signals.
    pub fn num_signals(&self) -> usize {
        self.signal_names.len()
    }

    /// Name of signal `s`.
    pub fn signal_name(&self, s: SignalIdx) -> &str {
        &self.signal_names[s]
    }

    /// Class of signal `s`.
    pub fn signal_class(&self, s: SignalIdx) -> SignalClass {
        self.signal_classes[s]
    }

    /// Looks a signal up by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalIdx> {
        self.name_index.get(name).copied()
    }

    /// Signals of a given class, ascending.
    pub fn signals_of_class(&self, class: SignalClass) -> Vec<SignalIdx> {
        (0..self.num_signals())
            .filter(|&s| self.signal_classes[s] == class)
            .collect()
    }

    /// Non-input signals (the ones synthesis must implement), ascending.
    pub fn non_input_signals(&self) -> Vec<SignalIdx> {
        (0..self.num_signals())
            .filter(|&s| self.signal_classes[s] != SignalClass::Input)
            .collect()
    }

    /// Adds a transition node.
    pub fn add_transition(
        &mut self,
        signal: SignalIdx,
        rising: bool,
        instance: u32,
    ) -> TransitionId {
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions.push(Transition {
            signal,
            rising,
            instance,
        });
        self.pre.push(Vec::new());
        self.post.push(Vec::new());
        id
    }

    /// Adds a place, optionally named, and returns its index.
    pub fn add_place(&mut self, name: Option<String>) -> u32 {
        let p = self.num_places;
        self.num_places += 1;
        self.place_names
            .push(name.unwrap_or_else(|| format!("<p{p}>")));
        p
    }

    /// Number of places.
    pub fn num_places(&self) -> u32 {
        self.num_places
    }

    /// Name of place `p`.
    pub fn place_name(&self, p: u32) -> &str {
        &self.place_names[p as usize]
    }

    /// Adds an arc place → transition.
    pub fn arc_pt(&mut self, p: u32, t: TransitionId) {
        self.pre[t.0 as usize].push(p);
    }

    /// Adds an arc transition → place.
    pub fn arc_tp(&mut self, t: TransitionId, p: u32) {
        self.post[t.0 as usize].push(p);
    }

    /// Marks place `p` initially.
    pub fn mark(&mut self, p: u32) {
        if !self.initial_marking.contains(&p) {
            self.initial_marking.push(p);
        }
    }

    /// Sets an explicit initial signal value (otherwise inferred).
    pub fn set_initial_value(&mut self, s: SignalIdx, v: bool) {
        self.initial_values.push((s, v));
    }

    /// Initially marked places.
    pub fn initial_marking(&self) -> &[u32] {
        &self.initial_marking
    }

    /// Explicit initial values.
    pub fn explicit_initial_values(&self) -> &[(SignalIdx, bool)] {
        &self.initial_values
    }

    /// The transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Input places of `t`.
    pub fn pre(&self, t: TransitionId) -> &[u32] {
        &self.pre[t.0 as usize]
    }

    /// Output places of `t`.
    pub fn post(&self, t: TransitionId) -> &[u32] {
        &self.post[t.0 as usize]
    }

    /// Human-readable transition label (`a+`, `b-/1`, …).
    pub fn transition_label(&self, t: TransitionId) -> String {
        let tr = &self.transitions[t.0 as usize];
        let dir = if tr.rising { '+' } else { '-' };
        if tr.instance == 0 {
            format!("{}{dir}", self.signal_names[tr.signal])
        } else {
            format!("{}{dir}/{}", self.signal_names[tr.signal], tr.instance)
        }
    }

    /// All transitions of signal `s`.
    pub fn transitions_of(&self, s: SignalIdx) -> Vec<TransitionId> {
        (0..self.transitions.len() as u32)
            .map(TransitionId)
            .filter(|&t| self.transitions[t.0 as usize].signal == s)
            .collect()
    }
}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stg {} ({} signals, {} transitions, {} places)",
            self.name,
            self.num_signals(),
            self.transitions.len(),
            self.num_places
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_tiny_net() {
        let mut g = Stg::new("t");
        let a = g.add_signal("a", SignalClass::Input);
        let x = g.add_signal("x", SignalClass::Output);
        let ap = g.add_transition(a, true, 0);
        let xp = g.add_transition(x, true, 0);
        let p = g.add_place(None);
        g.arc_tp(ap, p);
        g.arc_pt(p, xp);
        let q = g.add_place(Some("start".into()));
        g.arc_pt(q, ap);
        g.mark(q);
        assert_eq!(g.num_places(), 2);
        assert_eq!(g.initial_marking(), &[1]);
        assert_eq!(g.transition_label(ap), "a+");
        assert_eq!(g.pre(xp), &[0]);
        assert_eq!(g.signal_by_name("x"), Some(x));
        assert_eq!(g.place_name(1), "start");
        assert_eq!(g.non_input_signals(), vec![x]);
    }

    #[test]
    fn transition_labels_with_instances() {
        let mut g = Stg::new("t");
        let a = g.add_signal("a", SignalClass::Output);
        let t0 = g.add_transition(a, false, 0);
        let t1 = g.add_transition(a, false, 2);
        assert_eq!(g.transition_label(t0), "a-");
        assert_eq!(g.transition_label(t1), "a-/2");
        assert_eq!(g.transitions_of(a), vec![t0, t1]);
    }
}
