//! Error type for STG parsing, analysis and synthesis.

use std::error::Error;
use std::fmt;

/// Errors from STG parsing, state-graph construction and synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StgError {
    /// Syntax error in a `.g` file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        msg: String,
    },
    /// A transition references an undeclared signal.
    UnknownSignal(String),
    /// The net is not safe: a token was produced on a marked place.
    NotSafe {
        /// Offending transition label.
        transition: String,
    },
    /// Signal values do not alternate (`a+` fired while `a` was already 1).
    Inconsistent {
        /// Offending transition label.
        transition: String,
    },
    /// The reachability analysis exceeded its state budget.
    TooManyStates(usize),
    /// Unique State Coding violation (informational; synthesis needs CSC).
    UscViolation {
        /// A binary code shared by two different markings.
        code: u64,
    },
    /// Complete State Coding violation: the next-state function of
    /// `signal` is ill-defined at `code`.
    CscViolation {
        /// The conflicting signal name.
        signal: String,
        /// The shared binary code.
        code: u64,
    },
    /// An output transition is enabled in the initial marking, so the
    /// synthesized circuit would not have a stable reset state.
    InitialNotQuiescent {
        /// The enabled output transition label.
        transition: String,
    },
    /// An enabled output transition was disabled by another transition
    /// firing (the specification is not output-persistent, so no
    /// speed-independent implementation exists).
    NotOutputPersistent {
        /// The disabled output transition label.
        disabled: String,
        /// The transition whose firing disabled it.
        by: String,
    },
    /// The STG has no output signals to synthesize.
    NoOutputs,
    /// Too many signals or places for the fixed-width internal encodings.
    TooLarge {
        /// What overflowed (`"signals"` or `"places"`).
        what: &'static str,
        /// The limit.
        limit: usize,
    },
    /// A netlist-level error surfaced during synthesis.
    Netlist(String),
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            StgError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            StgError::NotSafe { transition } => {
                write!(f, "net is not safe when firing `{transition}`")
            }
            StgError::Inconsistent { transition } => {
                write!(f, "inconsistent signal values at `{transition}`")
            }
            StgError::TooManyStates(n) => write!(f, "state graph exceeds {n} states"),
            StgError::UscViolation { code } => {
                write!(f, "USC violation: two markings share code {code:b}")
            }
            StgError::CscViolation { signal, code } => {
                write!(f, "CSC violation on `{signal}` at code {code:b}")
            }
            StgError::InitialNotQuiescent { transition } => {
                write!(f, "output transition `{transition}` enabled at reset")
            }
            StgError::NotOutputPersistent { disabled, by } => {
                write!(f, "output transition `{disabled}` disabled by `{by}`")
            }
            StgError::NoOutputs => write!(f, "specification declares no output signals"),
            StgError::TooLarge { what, limit } => {
                write!(f, "too many {what} (limit {limit})")
            }
            StgError::Netlist(msg) => write!(f, "netlist construction failed: {msg}"),
        }
    }
}

impl Error for StgError {}

impl From<satpg_netlist::NetlistError> for StgError {
    fn from(e: satpg_netlist::NetlistError) -> Self {
        StgError::Netlist(e.to_string())
    }
}
