//! Edge-case coverage for `core::json` on the paths reachable from the
//! daemon: untrusted wire input (nesting bombs, surrogate escapes) and
//! the byte-stability contract of [`AtpgReport::to_json`] that the
//! service tests and CI smoke rely on to diff reports.

use satpg_core::json::{Json, MAX_DEPTH};
use satpg_core::{run_atpg, AtpgConfig, AtpgReport};

// --- Nesting depth: exactly at the cap parses, one past it does not. ---

fn nested_arrays(n: usize) -> String {
    "[".repeat(n) + &"]".repeat(n)
}

#[test]
fn depth_cap_boundary_is_exact() {
    // `value(depth)` rejects `depth > MAX_DEPTH`; the innermost of `n`
    // nested arrays sits at depth `n - 1`, so `MAX_DEPTH + 1` arrays are
    // the deepest accepted document.
    let deepest_ok = nested_arrays(MAX_DEPTH + 1);
    assert!(Json::parse(&deepest_ok).is_ok(), "at the cap must parse");
    let too_deep = nested_arrays(MAX_DEPTH + 2);
    let err = Json::parse(&too_deep).unwrap_err();
    assert!(err.msg.contains("deep"), "{err}");
    // Mixed nesting (objects inside arrays) counts every level too.
    let mixed_ok =
        "[{\"k\":".repeat(MAX_DEPTH.div_ceil(2)) + "0" + &"}]".repeat(MAX_DEPTH.div_ceil(2));
    assert!(Json::parse(&mixed_ok).is_ok());
    let mixed_deep = "[{\"k\":".repeat(MAX_DEPTH / 2 + 1) + "0" + &"}]".repeat(MAX_DEPTH / 2 + 1);
    assert!(Json::parse(&mixed_deep).is_err());
}

#[test]
fn depth_cap_survives_round_trip_at_the_boundary() {
    // A document at the cap renders and re-parses (the daemon echoes
    // parsed values back onto the wire).
    let v = Json::parse(&nested_arrays(MAX_DEPTH + 1)).unwrap();
    let rendered = v.render();
    assert_eq!(Json::parse(&rendered).unwrap(), v);
}

// --- Surrogate pairs. -------------------------------------------------

#[test]
fn surrogate_pairs_decode_and_round_trip() {
    // Astral plane via explicit escapes: 😀 U+1F600 = D83D DE00.
    let v = Json::parse(r#""😀""#).unwrap();
    assert_eq!(v.as_str(), Some("😀"));
    // The highest code point U+10FFFF = DBFF DFFF.
    let v = Json::parse(r#""􏿿""#).unwrap();
    assert_eq!(v.as_str(), Some("\u{10FFFF}"));
    // Rendering emits the raw character; the round trip preserves it.
    let original = Json::str("mix 😀 and \u{10FFFF} and ascii");
    assert_eq!(Json::parse(&original.render()).unwrap(), original);
    // Escaped and literal forms parse to the same value.
    assert_eq!(Json::parse(r#""😀""#), Json::parse("\"😀\""));
}

#[test]
fn broken_surrogates_are_rejected_not_mangled() {
    for bad in [
        r#""\ud83d""#,       // lone high surrogate at end of string
        r#""\ud83dx""#,      // high surrogate followed by a plain char
        r#""\ud83dA""#,      // high surrogate followed by a BMP escape
        r#""\ude00""#,       // lone low surrogate
        r#""\ud83d\ud83d""#, // high followed by high
        r#""\ud83d\ude0""#,  // truncated low half
    ] {
        assert!(Json::parse(bad).is_err(), "{bad} must be rejected");
    }
}

// --- Byte-stable numbers through AtpgReport::to_json. -----------------

#[test]
fn report_json_round_trips_byte_stably() {
    let ckt = satpg_netlist::library::muller_pipeline2();
    let report = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
    for include_timing in [false, true] {
        let first = report.to_json_value(include_timing).render();
        // parse → render is the identity on the rendered form: every
        // number (integers and the coverage/efficiency floats) survives
        // the round trip byte-for-byte.
        let reparsed = Json::parse(&first).unwrap();
        assert_eq!(reparsed.render(), first, "timing={include_timing}");
        // And the rendering is a pure function of the report.
        assert_eq!(report.to_json_value(include_timing).render(), first);
    }
}

#[test]
fn report_json_preserves_timings_beyond_f64_precision() {
    let ckt = satpg_netlist::library::c_element();
    let mut report: AtpgReport = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
    // 2^53 + 1 is not representable in f64; a float-typed pipeline
    // would silently round it.  The daemon ships microsecond counters,
    // so this must survive exactly.
    let awkward: u128 = (1 << 53) + 1;
    report.us_cssg = awkward;
    report.us_random = u64::MAX as u128;
    report.us_three_phase = 0;
    let rendered = report.to_json_value(true).render();
    let v = Json::parse(&rendered).unwrap();
    let timing = v.get("timing_us").unwrap();
    assert_eq!(timing.get("cssg").unwrap().as_u128(), Some(awkward));
    assert_eq!(
        timing.get("random").unwrap().as_u128(),
        Some(u64::MAX as u128)
    );
    assert_eq!(
        timing.get("total").unwrap().as_u128(),
        Some(awkward + u64::MAX as u128)
    );
    assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
}

#[test]
fn float_rendering_stays_reparseable_as_float() {
    // coverage_pct of a fully covered circuit is exactly 100.0 — the
    // renderer must keep the ".0" so a re-parse stays a Float and the
    // re-render stays byte-identical (the daemon diffs on bytes).
    let ckt = satpg_netlist::library::c_element();
    let report = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
    let rendered = report.to_json_value(false).render();
    assert!(
        rendered.contains("\"coverage_pct\":100.0"),
        "float keeps its marker: {rendered}"
    );
    let v = Json::parse(&rendered).unwrap();
    assert!(matches!(v.get("coverage_pct"), Some(Json::Float(_))));
    assert_eq!(v.render(), rendered);
}
