//! An independent soundness oracle for emitted tests.
//!
//! The ATPG's detection criterion is ternary (conservative).  This module
//! re-checks a claimed test with *nondeterministic set semantics*: the
//! faulty machine is tracked as the full set of states it could occupy at
//! each sampling instant over every interleaving of gate delays.  A test
//! truly detects the fault only if, at some cycle, **every** possible
//! faulty state disagrees with the good machine on the observed outputs.

use crate::cssg::TestSequence;
use crate::fault::Fault;
use satpg_netlist::{Bits, Circuit};
use satpg_sim::{CapPolicy, Injection, Settler, SettlerConfig};
use std::collections::BTreeSet;

/// Verdict of [`validate_test`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every delay assignment exposes the fault by cycle `at` (0-based).
    Detects {
        /// The first cycle with a guaranteed output mismatch.
        at: usize,
    },
    /// Some delay assignment lets the faulty machine mimic the good one
    /// through the whole sequence.
    Inconclusive,
    /// The state-set tracking overflowed; no verdict.
    Overflow,
    /// The sequence is not a valid walk of the good machine.
    GoodInvalid,
}

/// Validates that `seq` detects `fault` under every interleaving, using
/// transition bound `k` per cycle (sampling happens at the end of each
/// cycle; oscillating machines are sampled at any attractor phase).
pub fn validate_test(ckt: &Circuit, fault: &Fault, seq: &TestSequence, k: usize) -> Verdict {
    let scfg = SettlerConfig {
        k,
        cap: CapPolicy::Fixed(1 << 14),
        // The oracle must not lean on the machinery it validates: no
        // ternary shortcut, and no partial-order reduction — this is the
        // raw naive walk the reduced engines are checked against.
        por: false,
        ternary_fast_path: false,
        threads: 1,
    };
    let mut faulty = Settler::new(ckt, &fault.injection(), &scfg);
    let mut clean = Settler::new(ckt, &Injection::none(), &scfg);
    let s0 = ckt.initial_state().clone();
    let p0 = ckt.input_pattern(&s0);

    // Good machine: deterministic replay (must be confluent every cycle).
    let mut good = s0.clone();
    // Faulty machine: settle the reset state under the fault first.
    let mut fset = match faulty.settle_set(&BTreeSet::from([s0]), p0).ok() {
        Some(s) => s,
        None => return Verdict::Overflow,
    };
    let mismatch = |good: &Bits, fset: &BTreeSet<Bits>| {
        let gv = ckt.output_values(good);
        !fset.is_empty() && fset.iter().all(|f| ckt.output_values(f) != gv)
    };
    if mismatch(&good, &fset) {
        return Verdict::Detects { at: 0 };
    }
    for (i, p) in seq.patterns.iter().enumerate() {
        let gset = match clean.settle_set(&BTreeSet::from([good.clone()]), p).ok() {
            Some(s) => s,
            None => return Verdict::Overflow,
        };
        if gset.len() != 1 {
            return Verdict::GoodInvalid;
        }
        good = gset.into_iter().next().expect("len checked");
        if !ckt.is_stable(&good) {
            return Verdict::GoodInvalid;
        }
        fset = match faulty.settle_set(&fset, p).ok() {
            Some(s) => s,
            None => return Verdict::Overflow,
        };
        if mismatch(&good, &fset) {
            return Verdict::Detects { at: i + 1 };
        }
    }
    Verdict::Inconclusive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use crate::three_phase::{three_phase, FaultStatus, ThreePhaseConfig};
    use satpg_netlist::library;
    use satpg_sim::Site;

    #[test]
    fn oracle_confirms_c_element_test() {
        let ckt = library::c_element();
        let y = ckt.driver(ckt.signal_by_name("y").unwrap()).unwrap();
        let fault = Fault {
            gate: y,
            site: Site::Output,
            stuck: false,
        };
        let seq = TestSequence::from_u64(2, &[0b11]);
        let k = 4 * ckt.num_gates() + 4;
        assert_eq!(
            validate_test(&ckt, &fault, &seq, k),
            Verdict::Detects { at: 1 }
        );
    }

    #[test]
    fn oracle_rejects_non_detecting_sequence() {
        let ckt = library::c_element();
        let y = ckt.driver(ckt.signal_by_name("y").unwrap()).unwrap();
        let fault = Fault {
            gate: y,
            site: Site::Output,
            stuck: false,
        };
        // Only A: y stays 0 in both machines.
        let seq = TestSequence::from_u64(2, &[0b01]);
        let k = 4 * ckt.num_gates() + 4;
        assert_eq!(validate_test(&ckt, &fault, &seq, k), Verdict::Inconclusive);
    }

    #[test]
    fn oracle_flags_invalid_good_walk() {
        let ckt = library::figure1b();
        let g = ckt.driver(ckt.signal_by_name("c").unwrap()).unwrap();
        let fault = Fault {
            gate: g,
            site: Site::Output,
            stuck: true,
        };
        // Oscillates on the good machine.
        let seq = TestSequence::from_u64(2, &[0b01]);
        assert_eq!(
            validate_test(&ckt, &fault, &seq, 4 * ckt.num_gates() + 4),
            Verdict::GoodInvalid
        );
    }

    #[test]
    fn every_three_phase_test_passes_the_oracle() {
        // End-to-end soundness: ternary-based claims survive the
        // exhaustive nondeterministic check.
        for ckt in [
            library::c_element(),
            library::sr_latch(),
            library::muller_pipeline2(),
        ] {
            let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
            let k = cssg.k();
            for fault in crate::fault::input_stuck_faults(&ckt) {
                if let FaultStatus::Detected { sequence } =
                    three_phase(&ckt, &cssg, &fault, &ThreePhaseConfig::default())
                {
                    let v = validate_test(&ckt, &fault, &sequence, k);
                    assert!(
                        matches!(v, Verdict::Detects { .. }),
                        "{}: {} verdict {v:?}",
                        ckt.name(),
                        fault.name(&ckt)
                    );
                }
            }
        }
    }
}
