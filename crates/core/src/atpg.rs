//! The full ATPG pipeline: CSSG → random TPG → three-phase → fault
//! simulation, with per-phase attribution (the columns of Tables 1–2).

use crate::cssg::{Cssg, TestSequence};
use crate::error::CoreError;
use crate::explicit_cssg::{build_cssg, CssgConfig};
use crate::fault::{input_stuck_faults, output_stuck_faults, Fault};
use crate::random_tpg::RandomTpgConfig;
use crate::stages::{
    assemble_report, random_stage, targeted_stage, FaultPlan, StageState, StageTimings,
};
use crate::three_phase::{three_phase, ThreePhaseConfig};
use crate::Result;
use satpg_netlist::Circuit;
use std::time::Instant;

/// Which fault list to target.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultModel {
    /// Every gate input pin stuck at 0/1 (the paper's primary model;
    /// subsumes output stuck-at).
    #[default]
    InputStuckAt,
    /// Every gate output stuck at 0/1.
    OutputStuckAt,
}

/// Which step of the flow first detected a fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Random TPG (`rnd` column).
    Random,
    /// Three-phase ATPG (`3-ph` column).
    ThreePhase,
    /// Post-ATPG fault simulation (`sim` column).
    FaultSim,
}

/// Configuration for [`run_atpg`].
#[derive(Clone, Debug, Default)]
pub struct AtpgConfig {
    /// CSSG construction parameters.
    pub cssg: CssgConfig,
    /// Random-TPG parameters; `None` disables the random phase.
    pub random: Option<RandomTpgConfig>,
    /// Three-phase search parameters.
    pub three_phase: ThreePhaseConfig,
    /// Fault model.
    pub fault_model: FaultModel,
    /// Structurally collapse equivalent faults before targeting.
    pub collapse: bool,
    /// Fault-simulate each found test against remaining faults.
    pub fault_sim: bool,
}

impl AtpgConfig {
    /// The configuration used for the paper's tables: random TPG on,
    /// fault simulation on, collapsing off (the paper counts raw faults).
    pub fn paper() -> Self {
        AtpgConfig {
            random: Some(RandomTpgConfig::default()),
            fault_sim: true,
            ..Default::default()
        }
    }

    /// [`AtpgConfig::paper`] with three-phase limits derived from the
    /// circuit size ([`ThreePhaseConfig::scaled`]) so large generated
    /// families do not abort on the paper-tuned defaults.  For
    /// paper-sized circuits this is identical to `paper()`.
    pub fn scaled(ckt: &Circuit) -> Self {
        AtpgConfig {
            three_phase: ThreePhaseConfig::scaled(ckt),
            ..AtpgConfig::paper()
        }
    }
}

/// Per-fault outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultRecord {
    /// The fault.
    pub fault: Fault,
    /// Detection phase, if detected.
    pub detected_by: Option<Phase>,
    /// Index into [`AtpgReport::tests`] of the detecting sequence.
    pub test: Option<usize>,
    /// Proved untestable.
    pub untestable: bool,
    /// Gave up within resource limits.
    pub aborted: bool,
}

/// The result of a full ATPG run.
#[derive(Clone, Debug)]
pub struct AtpgReport {
    /// Circuit name.
    pub circuit: String,
    /// The synchronous abstraction used.
    pub cssg_states: usize,
    /// Valid (state, pattern) pairs.
    pub cssg_edges: usize,
    /// (state, pattern) pairs the abstraction pruned as non-confluent.
    pub cssg_pruned_nonconfluent: usize,
    /// (state, pattern) pairs pruned as unstable within `k`.
    pub cssg_pruned_unstable: usize,
    /// (state, pattern) pairs dropped at a resource limit rather than by
    /// a semantic verdict ([`Cssg::pruned_truncated`]): when non-zero,
    /// "untestable" verdicts may be truncation artifacts.
    pub cssg_truncated: usize,
    /// State expansions the CSSG's settling analyses performed
    /// ([`Cssg::settle_stats`]).
    pub cssg_settle_states: u64,
    /// Successor branches the partial-order reduction pruned during CSSG
    /// construction — the "states saved" side of the POR ledger.
    pub cssg_por_pruned: u64,
    /// (state, pattern) pairs never analyzed because the construction's
    /// pattern budget ran out ([`Cssg::patterns_skipped`]): zero for
    /// exhaustive builds; when non-zero the CSSG under-approximates and
    /// "untestable" verdicts may be budget artifacts.
    pub cssg_patterns_skipped: u64,
    /// Bit-parallel fixpoint passes run by the random stage.
    pub random_passes: usize,
    /// Pattern evaluations performed by the random stage;
    /// `random_patterns / random_passes` is the measured
    /// patterns-per-pass throughput of the lane machinery (64 in
    /// pattern-per-bit mode).
    pub random_patterns: u64,
    /// Test vectors the random stage applied.
    pub random_vectors: usize,
    /// Per-fault verdicts, in enumeration order.
    pub records: Vec<FaultRecord>,
    /// The deduplicated test set.
    pub tests: Vec<TestSequence>,
    /// Wall-clock microseconds: CSSG construction.
    pub us_cssg: u128,
    /// Wall-clock microseconds: random TPG.
    pub us_random: u128,
    /// Wall-clock microseconds: three-phase + fault simulation.
    pub us_three_phase: u128,
}

impl AtpgReport {
    /// Total number of faults.
    pub fn total(&self) -> usize {
        self.records.len()
    }

    /// Number of detected faults.
    pub fn covered(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.detected_by.is_some())
            .count()
    }

    /// Detected faults attributed to `phase`.
    pub fn covered_by(&self, phase: Phase) -> usize {
        self.records
            .iter()
            .filter(|r| r.detected_by == Some(phase))
            .count()
    }

    /// Faults proved untestable.
    pub fn untestable(&self) -> usize {
        self.records.iter().filter(|r| r.untestable).count()
    }

    /// Faults aborted within limits.
    pub fn aborted(&self) -> usize {
        self.records.iter().filter(|r| r.aborted).count()
    }

    /// Fault coverage in percent (detected / total).
    pub fn coverage(&self) -> f64 {
        if self.records.is_empty() {
            return 100.0;
        }
        100.0 * self.covered() as f64 / self.records.len() as f64
    }

    /// Fault efficiency in percent ((detected + untestable) / total).
    pub fn efficiency(&self) -> f64 {
        if self.records.is_empty() {
            return 100.0;
        }
        100.0 * (self.covered() + self.untestable()) as f64 / self.records.len() as f64
    }

    /// Total wall-clock microseconds.
    pub fn us_total(&self) -> u128 {
        self.us_cssg + self.us_random + self.us_three_phase
    }
}

/// The fault list a model targets — the single dispatch point shared by
/// the serial driver, the engine, the daemon and the CLI.
pub fn faults_for(ckt: &Circuit, model: FaultModel) -> Vec<Fault> {
    match model {
        FaultModel::InputStuckAt => input_stuck_faults(ckt),
        FaultModel::OutputStuckAt => output_stuck_faults(ckt),
    }
}

/// Runs the full flow on `ckt`.
///
/// # Errors
///
/// Propagates CSSG construction failures ([`CoreError::NoStableReset`],
/// [`CoreError::CssgOverflow`], …) and reports
/// [`CoreError::NoValidVectors`] when the abstraction has no edges at all.
pub fn run_atpg(ckt: &Circuit, cfg: &AtpgConfig) -> Result<AtpgReport> {
    let t0 = Instant::now();
    let cssg = build_cssg(ckt, &cfg.cssg)?;
    let us_cssg = t0.elapsed().as_micros();
    if cssg.num_edges() == 0 {
        return Err(CoreError::NoValidVectors);
    }
    let faults = faults_for(ckt, cfg.fault_model);
    run_atpg_on(ckt, &cssg, &faults, cfg, us_cssg)
}

/// Runs the flow against an explicit fault list and a prebuilt CSSG
/// (e.g. one constructed by [`crate::build_cssg_sharded`] or served
/// from a cache); `us_cssg` is the construction time to attribute.
///
/// This is the serial driver over the resumable stages of
/// [`crate::stages`]: plan → random → targeted (with the real
/// [`three_phase`] as the verdict oracle) → report.
pub fn run_atpg_on(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &AtpgConfig,
    us_cssg: u128,
) -> Result<AtpgReport> {
    let plan = FaultPlan::new(ckt, faults, cfg.collapse);
    let mut state = StageState::new(plan.len());

    let t1 = Instant::now();
    if let Some(rnd_cfg) = &cfg.random {
        let _span = satpg_trace::span!("stage.random", classes = plan.len());
        random_stage(ckt, cssg, &plan, rnd_cfg, &mut state);
    }
    let us_random = t1.elapsed().as_micros();

    let t2 = Instant::now();
    let _span = satpg_trace::span!("stage.targeted", open = state.open_classes().len());
    let queue: Vec<usize> = (0..plan.len()).collect();
    targeted_stage(
        ckt,
        cssg,
        &plan,
        cfg.fault_sim,
        &queue,
        &mut state,
        &mut |_, f| three_phase(ckt, cssg, f, &cfg.three_phase),
    );
    let us_three_phase = t2.elapsed().as_micros();

    Ok(assemble_report(
        ckt,
        cssg,
        faults,
        &plan,
        state,
        StageTimings {
            us_cssg,
            us_random,
            us_three_phase,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use satpg_netlist::library;

    #[test]
    fn c_element_fully_covered() {
        let ckt = library::c_element();
        let report = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        assert_eq!(report.covered(), report.total(), "100% input-s coverage");
        assert!(report.coverage() == 100.0);
        assert!(!report.tests.is_empty());
    }

    #[test]
    fn output_model_also_covered() {
        let ckt = library::c_element();
        let cfg = AtpgConfig {
            fault_model: FaultModel::OutputStuckAt,
            ..AtpgConfig::paper()
        };
        let report = run_atpg(&ckt, &cfg).unwrap();
        assert_eq!(report.covered(), report.total());
        assert_eq!(report.total(), 6);
    }

    #[test]
    fn phases_attribute_disjointly() {
        let ckt = library::muller_pipeline2();
        let report = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        let sum = report.covered_by(Phase::Random)
            + report.covered_by(Phase::ThreePhase)
            + report.covered_by(Phase::FaultSim);
        assert_eq!(sum, report.covered());
        assert!(report.covered_by(Phase::Random) > 0, "random catches some");
    }

    #[test]
    fn disabling_random_shifts_attribution() {
        let ckt = library::c_element();
        let cfg = AtpgConfig {
            random: None,
            ..AtpgConfig::paper()
        };
        let report = run_atpg(&ckt, &cfg).unwrap();
        assert_eq!(report.covered_by(Phase::Random), 0);
        assert_eq!(report.covered(), report.total());
    }

    #[test]
    fn collapsing_preserves_coverage() {
        let ckt = library::muller_pipeline2();
        let plain = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        let collapsed = run_atpg(
            &ckt,
            &AtpgConfig {
                collapse: true,
                ..AtpgConfig::paper()
            },
        )
        .unwrap();
        assert_eq!(plain.total(), collapsed.total());
        assert_eq!(plain.covered(), collapsed.covered());
    }

    #[test]
    fn report_accounting_consistent() {
        let ckt = library::sr_latch();
        let report = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        let classified = report.covered() + report.untestable() + report.aborted();
        assert!(classified <= report.total());
        assert!(report.efficiency() >= report.coverage());
        for r in &report.records {
            if let Some(ti) = r.test {
                assert!(ti < report.tests.len());
            }
        }
    }
}
