//! The synchronous abstraction and ATPG engine of Roig, Cortadella, Peña
//! and Pastor, *Automatic Generation of Synchronous Test Patterns for
//! Asynchronous Circuits*, DAC 1997.
//!
//! The flow:
//!
//! 1. Abstract the asynchronous circuit as a deterministic synchronous
//!    FSM over its stable states — the **k-step Confluent Stable State
//!    Graph** ([`Cssg`]) — by pruning every (state, input-pattern) pair
//!    that can race (non-confluence) or oscillate.  Both an explicit
//!    ([`build_cssg`]) and a BDD-based symbolic
//!    ([`symbolic::SymbolicCssg`]) construction are provided.
//! 2. Cover the easy faults with [`random_tpg`] — a random walk over the
//!    CSSG fault-simulated on 64 machines at once.
//! 3. For each remaining fault run the **three-phase** search
//!    ([`three_phase`]): fault activation, state justification and state
//!    differentiation over the good×faulty product machine.
//! 4. [`fault_simulate`] every found test against the remaining faults.
//!
//! The per-fault verdicts, per-phase attribution and the synchronous
//! test program ([`tester::TestProgram`]) come together in [`run_atpg`].
//!
//! Detection is *conservative*: a sequence counts as a test only if, at
//! some sampling instant, ternary simulation proves the faulty machine
//! drives a primary output to a definite value different from the good
//! machine's — i.e. the test works for **any** assignment of gate delays.

mod atpg;
mod cssg;
mod error;
mod explicit_cssg;
mod fault;
mod fsim;
pub mod json;
mod oracle;
mod random_tpg;
pub mod report;
mod scan;
pub mod stages;
pub mod symbolic;
pub mod tester;
mod three_phase;

pub use atpg::{
    faults_for, run_atpg, run_atpg_on, AtpgConfig, AtpgReport, FaultModel, FaultRecord, Phase,
};
pub use cssg::{Cssg, TestSequence};
pub use error::CoreError;
pub use explicit_cssg::{build_cssg, build_cssg_sharded, CssgConfig};
pub use fault::{collapse_faults, input_stuck_faults, output_stuck_faults, Fault, FaultClass};
pub use fsim::fault_simulate;
pub use oracle::{validate_test, Verdict};
pub use random_tpg::{random_tpg, RandomStats, RandomTpgConfig, RandomTpgResult};
pub use scan::{scan_candidates, ScanAnalysis, ScanCandidate};
pub use three_phase::{
    three_phase, three_phase_traced, FaultStatus, ThreePhaseConfig, UntestableReason,
};

// The settling-engine vocabulary callers need to configure the above.
pub use satpg_sim::{CapPolicy, SettleStats};

/// Convenient alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
