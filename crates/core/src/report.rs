//! Report rendering: the paper's Tables 1–2 layout, plus the
//! machine-readable JSON form consumed by `--json` CLI output, the CI
//! smoke checks and the `satpg-serve` wire protocol.

use crate::atpg::{AtpgReport, Phase};
use crate::json::Json;
use satpg_netlist::Pattern;

/// A pattern as JSON: a plain integer while it fits losslessly in a JSON
/// number (< 2^53), else its bit-0-first bitstring.  Both forms are pure
/// functions of the pattern, keeping wide-circuit reports byte-stable.
fn pattern_json(p: &Pattern) -> Json {
    match p.as_u64() {
        Some(v) if v < (1u64 << 53) => Json::int(v),
        _ => Json::str(p.to_string()),
    }
}

impl Phase {
    /// Stable wire-format name of the phase.
    pub fn wire_name(self) -> &'static str {
        match self {
            Phase::Random => "random",
            Phase::ThreePhase => "three_phase",
            Phase::FaultSim => "fault_sim",
        }
    }
}

impl AtpgReport {
    /// The machine-readable form of the report.
    ///
    /// With `include_timing` off the result is a pure function of the
    /// verdicts — byte-identical across serial and parallel drivers and
    /// across repeated runs, which is what the service tests and the CI
    /// smoke compare.  With it on, the wall-clock attribution is
    /// appended under `"timing_us"`.
    pub fn to_json_value(&self, include_timing: bool) -> Json {
        let records: Vec<Json> = self
            .records
            .iter()
            .map(|r| {
                let mut m = vec![("fault".to_string(), Json::str(r.fault.to_string()))];
                let status = if let Some(phase) = r.detected_by {
                    m.push(("phase".to_string(), Json::str(phase.wire_name())));
                    m.push(("test".to_string(), Json::int(r.test.unwrap_or(0))));
                    "detected"
                } else if r.untestable {
                    "untestable"
                } else if r.aborted {
                    "aborted"
                } else {
                    "open"
                };
                m.insert(1, ("status".to_string(), Json::str(status)));
                Json::Obj(m)
            })
            .collect();
        let tests: Vec<Json> = self
            .tests
            .iter()
            .map(|t| Json::Arr(t.patterns.iter().map(pattern_json).collect()))
            .collect();
        let mut out = vec![
            ("circuit".to_string(), Json::str(&self.circuit)),
            (
                "cssg".to_string(),
                Json::Obj(vec![
                    ("states".to_string(), Json::int(self.cssg_states)),
                    ("edges".to_string(), Json::int(self.cssg_edges)),
                    (
                        "pruned_nonconfluent".to_string(),
                        Json::int(self.cssg_pruned_nonconfluent),
                    ),
                    (
                        "pruned_unstable".to_string(),
                        Json::int(self.cssg_pruned_unstable),
                    ),
                    ("truncated".to_string(), Json::int(self.cssg_truncated)),
                    (
                        "settle_states".to_string(),
                        Json::int(self.cssg_settle_states),
                    ),
                    ("por_pruned".to_string(), Json::int(self.cssg_por_pruned)),
                    (
                        "patterns_skipped".to_string(),
                        Json::int(self.cssg_patterns_skipped),
                    ),
                ]),
            ),
            (
                "random_stage".to_string(),
                Json::Obj(vec![
                    ("passes".to_string(), Json::int(self.random_passes)),
                    (
                        "patterns_evaluated".to_string(),
                        Json::int(self.random_patterns),
                    ),
                    ("vectors".to_string(), Json::int(self.random_vectors)),
                ]),
            ),
            (
                "totals".to_string(),
                Json::Obj(vec![
                    ("faults".to_string(), Json::int(self.total())),
                    ("detected".to_string(), Json::int(self.covered())),
                    ("untestable".to_string(), Json::int(self.untestable())),
                    ("aborted".to_string(), Json::int(self.aborted())),
                    (
                        "random".to_string(),
                        Json::int(self.covered_by(Phase::Random)),
                    ),
                    (
                        "three_phase".to_string(),
                        Json::int(self.covered_by(Phase::ThreePhase)),
                    ),
                    (
                        "fault_sim".to_string(),
                        Json::int(self.covered_by(Phase::FaultSim)),
                    ),
                ]),
            ),
            ("coverage_pct".to_string(), Json::Float(self.coverage())),
            ("efficiency_pct".to_string(), Json::Float(self.efficiency())),
            ("tests".to_string(), Json::Arr(tests)),
            ("records".to_string(), Json::Arr(records)),
        ];
        if include_timing {
            out.push((
                "timing_us".to_string(),
                Json::Obj(vec![
                    ("cssg".to_string(), Json::int(self.us_cssg)),
                    ("random".to_string(), Json::int(self.us_random)),
                    ("three_phase".to_string(), Json::int(self.us_three_phase)),
                    ("total".to_string(), Json::int(self.us_total())),
                ]),
            ));
        }
        Json::Obj(out)
    }

    /// [`AtpgReport::to_json_value`] with timing, rendered on one line.
    pub fn to_json(&self) -> String {
        self.to_json_value(true).render()
    }
}

/// One row of a results table: the columns of Tables 1–2.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Benchmark name.
    pub example: String,
    /// Output stuck-at totals.
    pub output_tot: usize,
    /// Output stuck-at covered.
    pub output_cov: usize,
    /// Input stuck-at totals.
    pub input_tot: usize,
    /// Input stuck-at covered.
    pub input_cov: usize,
    /// Input-model faults first caught by random TPG.
    pub rnd: usize,
    /// …by the three-phase search.
    pub ph3: usize,
    /// …by post-ATPG fault simulation.
    pub sim: usize,
    /// Input-model faults proved untestable (our extension column).
    pub unt: usize,
    /// Wall-clock microseconds for the input-model run.
    pub cpu_us: u128,
}

impl TableRow {
    /// Builds a row from the two per-model reports.
    pub fn new(name: &str, output_report: &AtpgReport, input_report: &AtpgReport) -> Self {
        TableRow {
            example: name.to_string(),
            output_tot: output_report.total(),
            output_cov: output_report.covered(),
            input_tot: input_report.total(),
            input_cov: input_report.covered(),
            rnd: input_report.covered_by(Phase::Random),
            ph3: input_report.covered_by(Phase::ThreePhase),
            sim: input_report.covered_by(Phase::FaultSim),
            unt: input_report.untestable(),
            cpu_us: input_report.us_total() + output_report.us_total(),
        }
    }
}

/// Formats rows as an aligned text table with the paper's column layout
/// plus a total-coverage footer.
pub fn format_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<16} {:>7} {:>7} {:>8} {:>7} {:>5} {:>5} {:>4} {:>4} {:>8}\n",
        "example", "out tot", "out cov", "in tot", "in cov", "rnd", "3-ph", "sim", "unt", "CPU(us)"
    ));
    let mut tot = [0usize; 4];
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>7} {:>7} {:>8} {:>7} {:>5} {:>5} {:>4} {:>4} {:>8}\n",
            r.example,
            r.output_tot,
            r.output_cov,
            r.input_tot,
            r.input_cov,
            r.rnd,
            r.ph3,
            r.sim,
            r.unt,
            r.cpu_us
        ));
        tot[0] += r.output_tot;
        tot[1] += r.output_cov;
        tot[2] += r.input_tot;
        tot[3] += r.input_cov;
    }
    let pct = |cov: usize, tot: usize| {
        if tot == 0 {
            100.0
        } else {
            100.0 * cov as f64 / tot as f64
        }
    };
    out.push_str(&format!(
        "{:<16} {:>7.2}% {:>14.2}%\n",
        "Total FC",
        pct(tot[1], tot[0]),
        pct(tot[3], tot[2]),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atpg::{run_atpg, AtpgConfig, FaultModel};
    use satpg_netlist::library;

    #[test]
    fn row_and_table_format() {
        let ckt = library::c_element();
        let input = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        let output = run_atpg(
            &ckt,
            &AtpgConfig {
                fault_model: FaultModel::OutputStuckAt,
                ..AtpgConfig::paper()
            },
        )
        .unwrap();
        let row = TableRow::new("celement", &output, &input);
        assert_eq!(row.input_tot, 8);
        assert_eq!(row.output_tot, 6);
        assert_eq!(row.rnd + row.ph3 + row.sim, row.input_cov);
        let table = format_table("Table 1", &[row]);
        assert!(table.contains("celement"));
        assert!(table.contains("Total FC"));
        assert!(table.contains("100.00%"));
    }

    #[test]
    fn json_report_round_trips_and_is_deterministic() {
        let ckt = library::c_element();
        let report = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        let v = Json::parse(&report.to_json()).unwrap();
        assert_eq!(v.get("circuit").unwrap().as_str(), Some("celement"));
        assert_eq!(
            v.get("totals").unwrap().get("faults").unwrap().as_usize(),
            Some(report.total())
        );
        assert_eq!(
            v.get("cssg").unwrap().get("states").unwrap().as_usize(),
            Some(report.cssg_states)
        );
        assert!(v.get("cssg").unwrap().get("truncated").is_some());
        assert_eq!(
            v.get("records").unwrap().as_arr().unwrap().len(),
            report.total()
        );
        assert!(v.get("timing_us").is_some());
        // The timing-free form is byte-stable across re-serialization
        // and carries no wall-clock fields.
        let a = report.to_json_value(false).render();
        let b = report.clone().to_json_value(false).render();
        assert_eq!(a, b);
        assert!(!a.contains("timing_us"));
    }
}
