//! Table formatting in the layout of the paper's Tables 1 and 2.

use crate::atpg::{AtpgReport, Phase};

/// One row of a results table: the columns of Tables 1–2.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Benchmark name.
    pub example: String,
    /// Output stuck-at totals.
    pub output_tot: usize,
    /// Output stuck-at covered.
    pub output_cov: usize,
    /// Input stuck-at totals.
    pub input_tot: usize,
    /// Input stuck-at covered.
    pub input_cov: usize,
    /// Input-model faults first caught by random TPG.
    pub rnd: usize,
    /// …by the three-phase search.
    pub ph3: usize,
    /// …by post-ATPG fault simulation.
    pub sim: usize,
    /// Input-model faults proved untestable (our extension column).
    pub unt: usize,
    /// Wall-clock microseconds for the input-model run.
    pub cpu_us: u128,
}

impl TableRow {
    /// Builds a row from the two per-model reports.
    pub fn new(name: &str, output_report: &AtpgReport, input_report: &AtpgReport) -> Self {
        TableRow {
            example: name.to_string(),
            output_tot: output_report.total(),
            output_cov: output_report.covered(),
            input_tot: input_report.total(),
            input_cov: input_report.covered(),
            rnd: input_report.covered_by(Phase::Random),
            ph3: input_report.covered_by(Phase::ThreePhase),
            sim: input_report.covered_by(Phase::FaultSim),
            unt: input_report.untestable(),
            cpu_us: input_report.us_total() + output_report.us_total(),
        }
    }
}

/// Formats rows as an aligned text table with the paper's column layout
/// plus a total-coverage footer.
pub fn format_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<16} {:>7} {:>7} {:>8} {:>7} {:>5} {:>5} {:>4} {:>4} {:>8}\n",
        "example", "out tot", "out cov", "in tot", "in cov", "rnd", "3-ph", "sim", "unt", "CPU(us)"
    ));
    let mut tot = [0usize; 4];
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>7} {:>7} {:>8} {:>7} {:>5} {:>5} {:>4} {:>4} {:>8}\n",
            r.example,
            r.output_tot,
            r.output_cov,
            r.input_tot,
            r.input_cov,
            r.rnd,
            r.ph3,
            r.sim,
            r.unt,
            r.cpu_us
        ));
        tot[0] += r.output_tot;
        tot[1] += r.output_cov;
        tot[2] += r.input_tot;
        tot[3] += r.input_cov;
    }
    let pct = |cov: usize, tot: usize| {
        if tot == 0 {
            100.0
        } else {
            100.0 * cov as f64 / tot as f64
        }
    };
    out.push_str(&format!(
        "{:<16} {:>7.2}% {:>14.2}%\n",
        "Total FC",
        pct(tot[1], tot[0]),
        pct(tot[3], tot[2]),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atpg::{run_atpg, AtpgConfig, FaultModel};
    use satpg_netlist::library;

    #[test]
    fn row_and_table_format() {
        let ckt = library::c_element();
        let input = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        let output = run_atpg(
            &ckt,
            &AtpgConfig {
                fault_model: FaultModel::OutputStuckAt,
                ..AtpgConfig::paper()
            },
        )
        .unwrap();
        let row = TableRow::new("celement", &output, &input);
        assert_eq!(row.input_tot, 8);
        assert_eq!(row.output_tot, 6);
        assert_eq!(row.rnd + row.ph3 + row.sim, row.input_cov);
        let table = format_table("Table 1", &[row]);
        assert!(table.contains("celement"));
        assert!(table.contains("Total FC"));
        assert!(table.contains("100.00%"));
    }
}
