//! Minimal JSON values: parsing and rendering without external crates.
//!
//! The service front-end speaks a JSON-lines wire protocol and the
//! reports need a machine-readable form, but the build environment has
//! no registry access, so this module carries a small, strict JSON
//! implementation: UTF-8 input, `\uXXXX` escapes (including surrogate
//! pairs), integer/float distinction (microsecond counters exceed the
//! contiguous `f64` range), ordered objects, and a nesting-depth cap so
//! untrusted input cannot overflow the parse stack.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`] (arrays/objects).
/// Untrusted daemon input beyond this is rejected, not recursed into.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.  Objects preserve insertion order so rendering is
/// deterministic (byte-identical for identical reports).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A located JSON syntax error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(n: impl TryInto<i128>) -> Json {
        Json::Int(n.try_into().unwrap_or(i128::MAX))
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(n) => usize::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `u128`, if it is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Int(n) => u128::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Renders the value on one line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let s = x.to_string();
                    out.push_str(&s);
                    // `1.0f64` renders as "1"; keep it a float on re-parse.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte position on any syntax
    /// error, trailing garbage, or nesting beyond [`MAX_DEPTH`].
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            src,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    if !self.eat(b',') {
                        return Err(self.err("expected `,` or `]`"));
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return Err(self.err("expected `:`"));
                    }
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    members.push((key, val));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Json::Obj(members));
                    }
                    if !self.eat(b',') {
                        return Err(self.err("expected `,` or `}`"));
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if !self.eat(b'"') {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped span.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The span starts and ends on char boundaries (ASCII delimiters).
            out.push_str(&self.src[start..self.pos]);
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(self.err("expected value"));
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            if !matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after `.`"));
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_usize(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::str("line\nquote\" slash\\ tab\t nul\u{1} é 😀");
        let rendered = original.render();
        assert_eq!(Json::parse(&rendered).unwrap(), original);
        // Explicit escape forms parse too.
        let v = Json::parse(r#""a\u0041 \ud83d\ude00 \/ \b\f""#).unwrap();
        assert_eq!(v.as_str(), Some("aA 😀 / \u{8}\u{c}"));
    }

    #[test]
    fn big_integers_survive() {
        let us: u128 = 9_007_199_254_740_993; // 2^53 + 1: not exact in f64
        let v = Json::parse(&Json::Int(us as i128).render()).unwrap();
        assert_eq!(v.as_u128(), Some(us));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "\"\\q\"",
            "\"\\ud800x\"",
            "\"unterminated",
            "01x",
            "-",
            "[1 2]",
            "{'a':1}",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_cap_rejects_bombs() {
        let bomb = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.msg.contains("deep"));
        let fine = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&fine).is_ok());
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Int(1)),
            ("a".into(), Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("f".into(), Json::Float(1.0)),
        ]);
        let r = v.render();
        assert_eq!(r, r#"{"b":1,"a":[false,null],"f":1.0}"#);
        assert_eq!(Json::parse(&r).unwrap(), v);
    }
}
