//! Parallel-ternary fault simulation: replay a test sequence against up
//! to 63 faulty machines at once (§5.4).

use crate::cssg::{Cssg, TestSequence};
use crate::fault::Fault;
use satpg_netlist::Circuit;
use satpg_sim::{parallel_settle, Injection, ParallelInjection, PlaneState};

/// Checks which lanes are *provably* detected at the current cycle:
/// lane `l` is detected when some primary output is definite on `l` and
/// differs from the good machine's value.
pub(crate) fn detect_lanes(
    ckt: &Circuit,
    planes: &PlaneState,
    good_state: &satpg_netlist::Bits,
    lanes: usize,
    detected: &mut [bool],
) {
    for (oi, &osig) in ckt.outputs().iter().enumerate() {
        let _ = oi;
        let good = good_state.get(osig.index());
        for (l, d) in detected.iter_mut().enumerate().take(lanes).skip(1) {
            if *d {
                continue;
            }
            if let Some(v) = planes.definite(osig.index(), l) {
                if v != good {
                    *d = true;
                }
            }
        }
    }
}

/// Replays `seq` on the good machine (via the CSSG) and a batch of faulty
/// machines (lanes 1..), returning which batch members are detected.
///
/// Lane 0 is the good machine.  Returns `None` if the sequence is invalid
/// on the good machine.
pub(crate) fn replay_batch(
    ckt: &Circuit,
    cssg: &Cssg,
    seq: &TestSequence,
    faults: &[Fault],
) -> Option<Vec<bool>> {
    assert!(faults.len() <= 63, "at most 63 faults per batch");
    let lanes = faults.len() + 1;
    let mut inj = vec![Injection::none()];
    inj.extend(faults.iter().map(Fault::injection));
    let pinj = ParallelInjection::new(&inj);

    let s0 = &cssg.states()[cssg.initial()];
    let mut planes = PlaneState::broadcast(s0);
    // Bring the faulty lanes to their reset fixpoint.
    planes = parallel_settle(ckt, &planes, ckt.input_pattern(s0), &pinj);
    let mut detected = vec![false; lanes];
    let mut good = cssg.initial();
    detect_lanes(ckt, &planes, &cssg.states()[good], lanes, &mut detected);
    for p in &seq.patterns {
        good = cssg.successor(good, p)?;
        planes = parallel_settle(ckt, &planes, p, &pinj);
        detect_lanes(ckt, &planes, &cssg.states()[good], lanes, &mut detected);
        if detected.iter().skip(1).all(|&d| d) {
            break;
        }
    }
    Some(detected[1..].to_vec())
}

/// Simulates a test sequence against a set of faults and returns the
/// indices (into `faults`) of those it provably detects.
///
/// This is the paper's post-ATPG fault simulation: whenever the 3-phase
/// search finds a test, the same patterns are simulated on every
/// remaining faulty circuit to harvest extra coverage cheaply.  Ternary
/// conservatism may under-report (the paper's "low number of faults
/// covered by fault simulation"), which costs nothing: missed faults are
/// still targeted later.
pub fn fault_simulate(
    ckt: &Circuit,
    cssg: &Cssg,
    seq: &TestSequence,
    faults: &[Fault],
) -> Vec<usize> {
    let mut hit = Vec::new();
    for (chunk_idx, chunk) in faults.chunks(63).enumerate() {
        if let Some(det) = replay_batch(ckt, cssg, seq, chunk) {
            for (i, d) in det.into_iter().enumerate() {
                if d {
                    hit.push(chunk_idx * 63 + i);
                }
            }
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use crate::fault::input_stuck_faults;
    use satpg_netlist::library;
    use satpg_sim::Site;

    #[test]
    fn stuck_output_detected_by_raise_sequence() {
        let ckt = library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let y = ckt.driver(ckt.signal_by_name("y").unwrap()).unwrap();
        let fault = Fault {
            gate: y,
            site: Site::Output,
            stuck: false,
        };
        let seq = TestSequence::from_u64(2, &[0b11]);
        let hit = fault_simulate(&ckt, &cssg, &seq, &[fault]);
        assert_eq!(hit, vec![0], "y/SA0 caught by raising both inputs");
    }

    #[test]
    fn sequence_that_never_excites_detects_nothing() {
        let ckt = library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let y = ckt.driver(ckt.signal_by_name("y").unwrap()).unwrap();
        let fault = Fault {
            gate: y,
            site: Site::Output,
            stuck: false, // y is 0 at reset; a 0-keeping pattern won't show it
        };
        // Only B rises: y stays 0 in the good machine.
        let seq = TestSequence::from_u64(2, &[0b10]);
        let hit = fault_simulate(&ckt, &cssg, &seq, &[fault]);
        assert!(hit.is_empty());
    }

    #[test]
    fn invalid_sequence_is_rejected() {
        let ckt = library::figure1b();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        // Oscillates: not a CSSG edge.
        let seq = TestSequence::from_u64(2, &[0b01]);
        assert!(replay_batch(&ckt, &cssg, &seq, &[]).is_none());
    }

    #[test]
    fn batching_covers_more_than_63_faults() {
        let ckt = library::muller_pipeline2();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        // Duplicate the fault list to exceed one batch.
        let mut faults = input_stuck_faults(&ckt);
        let base = faults.clone();
        for _ in 0..10 {
            faults.extend(base.iter().copied());
        }
        assert!(faults.len() > 63);
        let seq = TestSequence::from_u64(2, &[0b01, 0b11, 0b10, 0b00]);
        let hit = fault_simulate(&ckt, &cssg, &seq, &faults);
        // Any fault detected in the first copy must be detected in all
        // copies at shifted indices.
        for &i in &hit {
            if i < base.len() {
                assert!(hit.contains(&(i + base.len())), "fault {i} copy");
            }
        }
        assert!(!hit.is_empty(), "the walk should catch something");
    }
}
