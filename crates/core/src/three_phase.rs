//! The three-phase ATPG of §5: fault activation, state justification and
//! state differentiation.
//!
//! Activation (§5.1) identifies stable states exciting the fault; per the
//! paper, faults never excited in stable states are *not* rejected — the
//! fault may pulse only through unstable states, so they go directly to
//! differentiation.
//!
//! Justification and differentiation are fused into one breadth-first
//! search over the product of the good CSSG and the faulty machine.  The
//! faulty machine is tracked with the paper's exact set semantics
//! (cf. Fig. 4): after each test cycle it may occupy *any* state of the
//! k-bounded settling set of every interleaving (closed over oscillation
//! phases).  A sequence is a test only if at some cycle **every** possible
//! faulty state disagrees with the good machine on the primary outputs —
//! detection guaranteed for any assignment of gate delays.
//!
//! BFS order makes the returned test the shortest guaranteed one, which
//! automatically implements the corruption rule of Fig. 3: a divergence
//! observable in *all* delay assignments cuts the sequence short; one
//! observable only for *some* delays forces the search deeper.

use crate::cssg::{Cssg, TestSequence};
use crate::fault::Fault;
use satpg_netlist::{Bits, Circuit, Pattern};
use satpg_sim::{CapPolicy, SettleStats, Settler, SettlerConfig};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Configuration for [`three_phase`].
#[derive(Clone, Copy, Debug)]
pub struct ThreePhaseConfig {
    /// Maximum test-sequence length explored.
    pub max_depth: usize,
    /// Maximum product states explored before aborting.
    pub max_nodes: usize,
    /// Cap policy for the tracked faulty state set per settle (the old
    /// `max_set: usize` is `CapPolicy::Fixed(n)`).
    pub settle_cap: CapPolicy,
    /// Partial-order reduction inside the faulty-machine settles.
    pub por: bool,
}

impl Default for ThreePhaseConfig {
    fn default() -> Self {
        ThreePhaseConfig {
            max_depth: 64,
            max_nodes: 20_000,
            settle_cap: CapPolicy::Fixed(4096),
            por: true,
        }
    }
}

impl ThreePhaseConfig {
    /// Limits derived from the circuit size, for workloads beyond the
    /// bundled paper suite (the `satpg gen` families).
    ///
    /// The defaults are tuned to the paper's circuits (≲ 20 gates) and
    /// abort on larger generated families: the faulty-machine settle set
    /// grows roughly exponentially with the number of concurrently
    /// excited gates, so the settle cap doubles every four gates from
    /// the 4096 floor, reaching its 2^20 ceiling at 32 gates — just
    /// under the observed muller-15 onset (32 gates), where the fixed
    /// 4096 first aborted and 2^14+ was needed — and the depth/node
    /// budgets scale linearly.  Every limit is floored at its default;
    /// a cap only gates truncation, so the larger budgets cannot change
    /// any verdict that completed under [`ThreePhaseConfig::default`].
    pub fn scaled(ckt: &Circuit) -> Self {
        let g = ckt.num_gates().max(1);
        let d = ThreePhaseConfig::default();
        ThreePhaseConfig {
            max_depth: d.max_depth.max(4 * g + 16),
            max_nodes: d.max_nodes.max(2_000 * g).min(1 << 21),
            settle_cap: CapPolicy::Scaled {
                floor: 4096,
                gates_per_doubling: 4,
                ceil: 1 << 20,
            },
            por: true,
        }
    }

    /// The concrete settle-set cap for `ckt` under this configuration.
    pub fn resolved_set_cap(&self, ckt: &Circuit) -> usize {
        self.settle_cap.resolve(ckt.num_gates())
    }
}

/// Why a fault is provably untestable in the synchronous framework.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UntestableReason {
    /// The full good×faulty product was exhausted without a guaranteed
    /// distinguishing sequence.
    NoDistinguishingSequence,
}

/// Outcome of the three-phase search for one fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultStatus {
    /// A guaranteed test was found.
    Detected {
        /// The input patterns from reset.
        sequence: TestSequence,
    },
    /// Provably untestable.
    Untestable(UntestableReason),
    /// Resource limits hit before a verdict.
    Aborted,
}

/// Every possible faulty state disagrees with the good machine at some
/// primary output.
fn guaranteed_mismatch(ckt: &Circuit, good: &Bits, fset: &BTreeSet<Bits>) -> bool {
    let gv = ckt.output_values(good);
    !fset.is_empty() && fset.iter().all(|f| ckt.output_values(f) != gv)
}

/// Runs the three-phase search for one fault.
pub fn three_phase(
    ckt: &Circuit,
    cssg: &Cssg,
    fault: &Fault,
    cfg: &ThreePhaseConfig,
) -> FaultStatus {
    three_phase_traced(ckt, cssg, fault, cfg).0
}

/// [`three_phase`] returning the settling-engine counters alongside the
/// verdict (the engine workers aggregate them into their telemetry).
pub fn three_phase_traced(
    ckt: &Circuit,
    cssg: &Cssg,
    fault: &Fault,
    cfg: &ThreePhaseConfig,
) -> (FaultStatus, SettleStats) {
    // --- Phase 1: fault activation (§5.1) — informational: the set of
    // exciting stable states prioritizes nothing in a BFS, and an empty
    // set does not disprove testability (pulse-only signals).
    let inj = fault.injection();
    let scfg = SettlerConfig {
        k: cssg.k(),
        cap: cfg.settle_cap,
        por: cfg.por,
        ternary_fast_path: true,
        threads: 1,
    };
    let mut settler = Settler::new(ckt, &inj, &scfg);
    let status = three_phase_inner(ckt, cssg, cfg, &mut settler);
    let stats = settler.take_stats();
    (status, stats)
}

/// The product BFS, generic over the settling engine instance.
fn three_phase_inner(
    ckt: &Circuit,
    cssg: &Cssg,
    cfg: &ThreePhaseConfig,
    settler: &mut Settler,
) -> FaultStatus {
    // --- Phases 2+3: product BFS (justification + differentiation). ---
    let s0 = &cssg.states()[cssg.initial()];
    let Some(f0) = settler
        .settle_set(&BTreeSet::from([s0.clone()]), ckt.input_pattern(s0))
        .ok()
    else {
        return FaultStatus::Aborted;
    };
    if guaranteed_mismatch(ckt, s0, &f0) {
        return FaultStatus::Detected {
            sequence: TestSequence::default(),
        };
    }

    struct Node {
        good: usize,
        faulty: BTreeSet<Bits>,
        parent: usize,
        pattern: Pattern,
        depth: usize,
    }
    let key_of = |good: usize, fset: &BTreeSet<Bits>| -> (usize, Vec<Bits>) {
        (good, fset.iter().cloned().collect())
    };
    let mut nodes: Vec<Node> = vec![Node {
        good: cssg.initial(),
        faulty: f0,
        parent: usize::MAX,
        pattern: Pattern::zeros(ckt.num_inputs()),
        depth: 0,
    }];
    let mut visited: HashSet<(usize, Vec<Bits>)> = HashSet::new();
    visited.insert(key_of(nodes[0].good, &nodes[0].faulty));
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut truncated = false;

    while let Some(ni) = queue.pop_front() {
        if nodes[ni].depth >= cfg.max_depth {
            truncated = true;
            continue;
        }
        let good = nodes[ni].good;
        let depth = nodes[ni].depth;
        let edges: Vec<(Pattern, usize)> = cssg.edges(good).to_vec();
        for (pattern, gsucc) in edges {
            let Some(fsucc) = settler.settle_set(&nodes[ni].faulty, &pattern).ok() else {
                truncated = true;
                continue;
            };
            if guaranteed_mismatch(ckt, &cssg.states()[gsucc], &fsucc) {
                let mut patterns = vec![pattern];
                let mut cur = ni;
                while nodes[cur].parent != usize::MAX {
                    patterns.push(nodes[cur].pattern.clone());
                    cur = nodes[cur].parent;
                }
                patterns.reverse();
                return FaultStatus::Detected {
                    sequence: TestSequence { patterns },
                };
            }
            let key = key_of(gsucc, &fsucc);
            if visited.insert(key) {
                if nodes.len() >= cfg.max_nodes {
                    return FaultStatus::Aborted;
                }
                nodes.push(Node {
                    good: gsucc,
                    faulty: fsucc,
                    parent: ni,
                    pattern,
                    depth: depth + 1,
                });
                queue.push_back(nodes.len() - 1);
            }
        }
    }
    if truncated {
        FaultStatus::Aborted
    } else {
        FaultStatus::Untestable(UntestableReason::NoDistinguishingSequence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use crate::fault::{input_stuck_faults, output_stuck_faults};
    use crate::fsim::replay_batch;
    use crate::oracle::{validate_test, Verdict};
    use satpg_netlist::library;
    use satpg_sim::Site;

    fn cssg_of(ckt: &Circuit) -> Cssg {
        build_cssg(ckt, &CssgConfig::default()).unwrap()
    }

    #[test]
    fn finds_test_for_stuck_output() {
        let ckt = library::c_element();
        let cssg = cssg_of(&ckt);
        let y = ckt.driver(ckt.signal_by_name("y").unwrap()).unwrap();
        let fault = Fault {
            gate: y,
            site: Site::Output,
            stuck: false,
        };
        match three_phase(&ckt, &cssg, &fault, &ThreePhaseConfig::default()) {
            FaultStatus::Detected { sequence } => {
                assert_eq!(sequence.patterns, vec![0b11], "shortest test raises both");
                let det = replay_batch(&ckt, &cssg, &sequence, &[fault]).unwrap();
                assert!(det[0]);
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn all_c_element_faults_covered() {
        let ckt = library::c_element();
        let cssg = cssg_of(&ckt);
        for f in input_stuck_faults(&ckt)
            .into_iter()
            .chain(output_stuck_faults(&ckt))
        {
            match three_phase(&ckt, &cssg, &f, &ThreePhaseConfig::default()) {
                FaultStatus::Detected { sequence } => {
                    // The exact-set search may find tests the conservative
                    // ternary replay cannot confirm; validate with the
                    // nondeterministic oracle instead.
                    let v = validate_test(&ckt, &f, &sequence, cssg.k());
                    assert!(
                        matches!(v, Verdict::Detects { .. }),
                        "{}: {v:?}",
                        f.name(&ckt)
                    );
                }
                other => panic!("{}: {other:?}", f.name(&ckt)),
            }
        }
    }

    #[test]
    fn never_excited_fault_still_proved_untestable_by_search() {
        // A constant-0 gate's output never differs from 0 anywhere, so
        // output/SA0 changes nothing; the product search proves it.
        use satpg_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("konst");
        let a = b.input("A", "a");
        let z = b.gate("z", GateKind::Const(false), vec![]);
        let y = b.gate("y", GateKind::Or, vec![a, z.clone()]);
        b.output(y);
        b.output(z);
        let ckt = b.finish().unwrap();
        let cssg = cssg_of(&ckt);
        let zg = ckt.driver(ckt.signal_by_name("z").unwrap()).unwrap();
        let fault = Fault {
            gate: zg,
            site: Site::Output,
            stuck: false,
        };
        assert_eq!(
            three_phase(&ckt, &cssg, &fault, &ThreePhaseConfig::default()),
            FaultStatus::Untestable(UntestableReason::NoDistinguishingSequence)
        );
        // …while z/SA1 is excited everywhere and immediately observable.
        let sa1 = Fault {
            stuck: true,
            ..fault
        };
        assert!(matches!(
            three_phase(&ckt, &cssg, &sa1, &ThreePhaseConfig::default()),
            FaultStatus::Detected { .. }
        ));
    }

    #[test]
    fn stable_quiet_signal_detected_via_settling_divergence() {
        // §5.1's degenerate case: a signal that pulses only in unstable
        // states.  x = r·ā is 0 in every stable state, yet x/SA0 is
        // testable because without the pulse the handshake output a never
        // rises.
        use satpg_netlist::{CircuitBuilder, Cube, GateKind, Literal, Sop};
        let mut b = CircuitBuilder::new("pulse");
        let r = b.input("R", "r");
        let a_fb = b.signal("a");
        let x = b.gate(
            "x",
            GateKind::Sop(Sop {
                cubes: vec![Cube(vec![Literal::pos(0), Literal::neg(1)])],
            }),
            vec![r.clone(), a_fb],
        );
        let a_fb2 = b.signal("a");
        let a = b.gate(
            "a",
            GateKind::Sop(Sop {
                cubes: vec![
                    Cube(vec![Literal::pos(0)]),
                    Cube(vec![Literal::pos(1), Literal::pos(2)]),
                ],
            }),
            vec![x.clone(), r, a_fb2],
        );
        b.output(a);
        let ckt = b.finish().unwrap();
        let cssg = cssg_of(&ckt);
        // x is 0 in every stable state…
        let xsig = ckt.signal_by_name("x").unwrap();
        for s in cssg.states() {
            assert!(!s.get(xsig.index()));
        }
        // …yet x/SA0 has a test.
        let xg = ckt.driver(xsig).unwrap();
        let fault = Fault {
            gate: xg,
            site: Site::Output,
            stuck: false,
        };
        match three_phase(&ckt, &cssg, &fault, &ThreePhaseConfig::default()) {
            FaultStatus::Detected { sequence } => {
                let v = validate_test(&ckt, &fault, &sequence, cssg.k());
                assert!(matches!(v, Verdict::Detects { .. }), "{v:?}");
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn pi_stuck_detected_through_exact_settling() {
        // PI r stuck-at-1 on a pulse circuit defeats ternary simulation
        // (binate feedback) but the exact set semantics finds the test.
        use satpg_netlist::{CircuitBuilder, Cube, GateKind, Literal, Sop};
        let mut b = CircuitBuilder::new("pulse2");
        let r = b.input("R", "r");
        let a_fb = b.signal("a");
        let x = b.gate(
            "x",
            GateKind::Sop(Sop {
                cubes: vec![Cube(vec![Literal::pos(0), Literal::neg(1)])],
            }),
            vec![r.clone(), a_fb],
        );
        let a_fb2 = b.signal("a");
        let a = b.gate(
            "a",
            GateKind::Sop(Sop {
                cubes: vec![
                    Cube(vec![Literal::pos(0)]),
                    Cube(vec![Literal::pos(1), Literal::pos(2)]),
                ],
            }),
            vec![x.clone(), r, a_fb2],
        );
        b.output(a);
        let ckt = b.finish().unwrap();
        let cssg = cssg_of(&ckt);
        let rbuf = ckt.driver(ckt.signal_by_name("r").unwrap()).unwrap();
        let fault = Fault {
            gate: rbuf,
            site: Site::Output,
            stuck: true,
        };
        match three_phase(&ckt, &cssg, &fault, &ThreePhaseConfig::default()) {
            FaultStatus::Detected { sequence } => {
                let v = validate_test(&ckt, &fault, &sequence, cssg.k());
                assert!(matches!(v, Verdict::Detects { .. }), "{v:?}");
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn redundant_fault_proved_untestable() {
        // y = a·b + a·b̄ (redundant cover of y = a): the b pins are
        // untestable at the outputs.
        use satpg_netlist::{CircuitBuilder, Cube, GateKind, Literal, Sop};
        let mut b = CircuitBuilder::new("red");
        let a = b.input("A", "a");
        let bb = b.input("B", "b");
        let sop = Sop {
            cubes: vec![
                Cube(vec![Literal::pos(0), Literal::pos(1)]),
                Cube(vec![Literal::pos(0), Literal::neg(1)]),
            ],
        };
        let y = b.gate("y", GateKind::Sop(sop), vec![a, bb]);
        b.output(y);
        let ckt = b.finish().unwrap();
        let cssg = cssg_of(&ckt);
        let yg = ckt.driver(ckt.signal_by_name("y").unwrap()).unwrap();
        // Pin 1 (the b input) stuck-at-1: y becomes a·b + a = a — same
        // function, no test exists.
        let fault = Fault {
            gate: yg,
            site: Site::Pin(1),
            stuck: true,
        };
        match three_phase(&ckt, &cssg, &fault, &ThreePhaseConfig::default()) {
            FaultStatus::Untestable(UntestableReason::NoDistinguishingSequence) => {}
            other => panic!("expected untestable, got {other:?}"),
        }
    }

    #[test]
    fn detection_at_reset_yields_empty_sequence() {
        use satpg_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("direct");
        let a = b.input("A", "a");
        let y = b.gate("y", GateKind::Buf, vec![a]);
        b.output(y);
        let ckt = b.finish().unwrap();
        let cssg = cssg_of(&ckt);
        let yg = ckt.driver(ckt.signal_by_name("y").unwrap()).unwrap();
        // y/SA1 flips the output already in the settled reset state.
        let fault = Fault {
            gate: yg,
            site: Site::Output,
            stuck: true,
        };
        match three_phase(&ckt, &cssg, &fault, &ThreePhaseConfig::default()) {
            FaultStatus::Detected { sequence } => assert!(sequence.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn depth_cap_aborts() {
        let ckt = library::muller_pipeline2();
        let cssg = cssg_of(&ckt);
        let faults = input_stuck_faults(&ckt);
        let cfg = ThreePhaseConfig {
            max_depth: 0,
            max_nodes: 10,
            settle_cap: CapPolicy::Fixed(64),
            por: true,
        };
        // With no depth at all, anything not detected at reset aborts (or
        // is proved never-excited).
        for f in faults {
            match three_phase(&ckt, &cssg, &f, &cfg) {
                FaultStatus::Detected { sequence } => assert!(sequence.is_empty()),
                FaultStatus::Aborted | FaultStatus::Untestable(_) => {}
            }
        }
    }
}
