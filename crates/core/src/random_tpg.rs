//! Random test pattern generation (§5.4): a seeded random walk over the
//! CSSG, fault-simulated on 64 machines per pass.
//!
//! Two lane layouts share the engine:
//!
//! * **fault-per-lane** (default): lane 0 is the good machine, lanes
//!   1..64 carry distinct faults, and one pattern per pass is broadcast
//!   to every lane — 63 faults × 1 pattern per fixpoint.
//! * **pattern-per-bit** (`pattern_parallel`): one fault is broadcast
//!   to all 64 lanes and each lane walks its *own* random CSSG path, so
//!   a single fixpoint evaluates 64 candidate vectors against that
//!   fault — 1 fault × 64 patterns per pass, with the fault dropped at
//!   the first detecting lane.

use crate::cssg::{Cssg, TestSequence};
use crate::fault::Fault;
use crate::fsim::detect_lanes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use satpg_netlist::{Circuit, Pattern};
use satpg_sim::{
    parallel_settle, parallel_settle_patterns, Injection, ParallelInjection, PlaneState, LANES,
};

/// Configuration for [`random_tpg`].
#[derive(Clone, Copy, Debug)]
pub struct RandomTpgConfig {
    /// Vector budget: per 63-fault batch in fault-per-lane mode, per
    /// fault (in 64-vector passes) in pattern-per-bit mode.
    pub max_vectors: usize,
    /// Restart from reset after this many vectors without full coverage
    /// (per lane in pattern-per-bit mode).
    pub restart_after: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Use the pattern-per-bit layout: 64 patterns per pass against one
    /// broadcast fault, instead of one pattern against 63 faults.
    pub pattern_parallel: bool,
}

impl Default for RandomTpgConfig {
    fn default() -> Self {
        RandomTpgConfig {
            max_vectors: 10,
            restart_after: 5,
            seed: 0x005A_1797,
            pattern_parallel: false,
        }
    }
}

/// Outcome of a random-TPG run.
#[derive(Clone, Debug, Default)]
pub struct RandomTpgResult {
    /// `(index into the fault list, detecting sequence)` pairs.
    pub detected: Vec<(usize, TestSequence)>,
    /// Total vectors applied across all batches.
    pub vectors_applied: usize,
    /// Bit-parallel fixpoint passes run.
    pub passes: usize,
    /// Total (pattern, lane-layout) evaluations: one per pass in
    /// fault-per-lane mode, up to 64 per pass in pattern-per-bit mode.
    /// `patterns_evaluated / passes` is the measured patterns-per-pass
    /// throughput of the lane machinery.
    pub patterns_evaluated: u64,
}

impl RandomTpgResult {
    fn note_pass(&mut self, patterns: usize) {
        self.passes += 1;
        self.patterns_evaluated += patterns as u64;
    }

    /// The run's throughput counters, detached from the detection list.
    pub fn stats(&self) -> RandomStats {
        RandomStats {
            vectors_applied: self.vectors_applied,
            passes: self.passes,
            patterns_evaluated: self.patterns_evaluated,
        }
    }
}

/// Throughput counters of a random-TPG run, carried through
/// [`crate::stages::StageState`] into the report:
/// `patterns_evaluated / passes` is the measured patterns-per-pass
/// throughput of the lane machinery (1 in fault-per-lane mode, 64 in
/// pattern-per-bit mode).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RandomStats {
    /// Total vectors applied across all batches / lanes.
    pub vectors_applied: usize,
    /// Bit-parallel fixpoint passes run.
    pub passes: usize,
    /// Total pattern evaluations across all passes.
    pub patterns_evaluated: u64,
}

/// Runs random TPG over `faults`, returning the detected ones with their
/// sequences.  Detection is conservative (parallel ternary): a reported
/// sequence is guaranteed to expose the fault under any gate delays.
pub fn random_tpg(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &RandomTpgConfig,
) -> RandomTpgResult {
    if cfg.pattern_parallel {
        return random_tpg_ppsfp(ckt, cssg, faults, cfg);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = RandomTpgResult::default();
    for (chunk_idx, chunk) in faults.chunks(63).enumerate() {
        let lanes = chunk.len() + 1;
        let mut inj = vec![Injection::none()];
        inj.extend(chunk.iter().map(Fault::injection));
        let pinj = ParallelInjection::new(&inj);
        let s0 = &cssg.states()[cssg.initial()];
        let p0 = ckt.input_pattern(s0);

        let mut detected = vec![false; lanes];
        let mut planes = parallel_settle(ckt, &PlaneState::broadcast(s0), &p0, &pinj);
        result.note_pass(1);
        let mut good = cssg.initial();
        let mut seq: Vec<Pattern> = Vec::new();
        detect_lanes(ckt, &planes, &cssg.states()[good], lanes, &mut detected);
        record_new(
            &mut result,
            &detected,
            &mut vec![false; lanes],
            chunk_idx,
            &seq,
        );

        let mut already = detected.clone();
        let mut since_restart = 0usize;
        for _ in 0..cfg.max_vectors {
            if detected.iter().skip(1).all(|&d| d) {
                break;
            }
            let edges = cssg.edges(good);
            if edges.is_empty() || since_restart >= cfg.restart_after {
                planes = parallel_settle(ckt, &PlaneState::broadcast(s0), &p0, &pinj);
                result.note_pass(1);
                good = cssg.initial();
                seq.clear();
                since_restart = 0;
                continue;
            }
            let (pattern, succ) = edges[rng.gen_range(0..edges.len())].clone();
            seq.push(pattern.clone());
            since_restart += 1;
            planes = parallel_settle(ckt, &planes, &pattern, &pinj);
            result.note_pass(1);
            good = succ;
            result.vectors_applied += 1;
            detect_lanes(ckt, &planes, &cssg.states()[good], lanes, &mut detected);
            record_new(&mut result, &detected, &mut already, chunk_idx, &seq);
        }
    }
    result
}

/// Pattern-per-bit random TPG: per fault, all 64 lanes carry the same
/// injection and each lane follows its own random walk of the CSSG, so
/// one fixpoint pass evaluates 64 candidate vectors.  The fault is
/// dropped (its remaining lanes abandoned) at the first lane that
/// provably detects it.
fn random_tpg_ppsfp(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &RandomTpgConfig,
) -> RandomTpgResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = RandomTpgResult::default();
    let s0 = &cssg.states()[cssg.initial()];
    let p0 = ckt.input_pattern(s0);
    let outs: Vec<usize> = ckt.outputs().iter().map(|o| o.index()).collect();

    for (fi, fault) in faults.iter().enumerate() {
        let pinj = ParallelInjection::new(&vec![fault.injection(); LANES]);
        // Reset checkpoint: every lane at the faulty reset fixpoint.
        let reset = parallel_settle(ckt, &PlaneState::broadcast(s0), &p0, &pinj);
        result.note_pass(LANES);

        // Detection at reset (all lanes identical: check lane 0).
        let detect_at = |planes: &PlaneState, lane: usize, good: usize| -> bool {
            let gs = &cssg.states()[good];
            outs.iter()
                .any(|&o| planes.definite(o, lane).is_some_and(|v| v != gs.get(o)))
        };
        if detect_at(&reset, 0, cssg.initial()) {
            result.detected.push((fi, TestSequence::default()));
            continue;
        }

        let mut planes = reset.clone();
        let mut good = vec![cssg.initial(); LANES];
        let mut seqs: Vec<Vec<Pattern>> = vec![Vec::new(); LANES];
        let mut since_restart = vec![0usize; LANES];
        let mut caught: Option<(usize, Vec<Pattern>)> = None;

        'fault: for _ in 0..cfg.max_vectors {
            // Deal each lane its next pattern (restarting stuck lanes).
            let mut pats: Vec<Pattern> = Vec::with_capacity(LANES);
            let mut stepped = 0usize;
            for l in 0..LANES {
                let edges = cssg.edges(good[l]);
                if edges.is_empty() || since_restart[l] >= cfg.restart_after {
                    planes.copy_lane_from(&reset, l);
                    good[l] = cssg.initial();
                    seqs[l].clear();
                    since_restart[l] = 0;
                    // A restarting lane re-applies the reset pattern: a
                    // no-op settle that keeps the pass full-width.
                    pats.push(p0.clone());
                    continue;
                }
                let (pattern, succ) = edges[rng.gen_range(0..edges.len())].clone();
                seqs[l].push(pattern.clone());
                good[l] = succ;
                since_restart[l] += 1;
                stepped += 1;
                pats.push(pattern);
            }
            planes = parallel_settle_patterns(ckt, &planes, &pats, &pinj);
            result.note_pass(LANES);
            result.vectors_applied += stepped;
            for l in 0..LANES {
                if detect_at(&planes, l, good[l]) {
                    // Fault drop: first detecting lane wins; its walk is
                    // the recorded test.
                    caught = Some((l, seqs[l].clone()));
                    break 'fault;
                }
            }
        }
        if let Some((_, patterns)) = caught {
            result.detected.push((fi, TestSequence { patterns }));
        }
    }
    result
}

/// Records lanes that newly turned detected, remembering the sequence
/// prefix that exposed them.
fn record_new(
    result: &mut RandomTpgResult,
    detected: &[bool],
    already: &mut Vec<bool>,
    chunk_idx: usize,
    seq: &[Pattern],
) {
    if already.len() < detected.len() {
        already.resize(detected.len(), false);
    }
    for l in 1..detected.len() {
        if detected[l] && !already[l] {
            already[l] = true;
            result.detected.push((
                chunk_idx * 63 + (l - 1),
                TestSequence {
                    patterns: seq.to_vec(),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use crate::fault::input_stuck_faults;
    use crate::fsim::replay_batch;
    use satpg_netlist::library;

    #[test]
    fn detects_a_good_share_on_the_c_element() {
        let ckt = library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let res = random_tpg(&ckt, &cssg, &faults, &RandomTpgConfig::default());
        // The paper reports 40–80% random coverage; this tiny circuit
        // should be mostly covered.
        assert!(
            res.detected.len() * 2 >= faults.len(),
            "detected {}/{}",
            res.detected.len(),
            faults.len()
        );
        assert!(res.vectors_applied > 0);
        assert!(res.passes > 0);
        assert_eq!(
            res.patterns_evaluated, res.passes as u64,
            "fault-per-lane mode evaluates one pattern per pass"
        );
    }

    #[test]
    fn reported_sequences_replay_to_detection() {
        let ckt = library::muller_pipeline2();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let res = random_tpg(&ckt, &cssg, &faults, &RandomTpgConfig::default());
        assert!(!res.detected.is_empty());
        for (fi, seq) in &res.detected {
            let det = replay_batch(&ckt, &cssg, seq, &[faults[*fi]])
                .expect("recorded sequences are valid CSSG walks");
            assert!(det[0], "fault {} not re-detected by its sequence", fi);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let ckt = library::sr_latch();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let cfg = RandomTpgConfig {
            seed: 42,
            ..Default::default()
        };
        let a = random_tpg(&ckt, &cssg, &faults, &cfg);
        let b = random_tpg(&ckt, &cssg, &faults, &cfg);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.vectors_applied, b.vectors_applied);
        assert_eq!(a.passes, b.passes);
        assert_eq!(a.patterns_evaluated, b.patterns_evaluated);
    }

    #[test]
    fn zero_budget_detects_reset_observable_only() {
        let ckt = library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let cfg = RandomTpgConfig {
            max_vectors: 0,
            ..Default::default()
        };
        let res = random_tpg(&ckt, &cssg, &faults, &cfg);
        // With no vectors, only faults visible in the settled reset state
        // (e.g. an input pin stuck-1 that flips y … none here) may appear.
        for (_, seq) in &res.detected {
            assert!(seq.is_empty());
        }
    }

    #[test]
    fn pattern_parallel_evaluates_64_patterns_per_pass() {
        let ckt = library::muller_pipeline2();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let cfg = RandomTpgConfig {
            pattern_parallel: true,
            ..Default::default()
        };
        let res = random_tpg(&ckt, &cssg, &faults, &cfg);
        assert!(res.passes > 0);
        assert_eq!(
            res.patterns_evaluated,
            res.passes as u64 * LANES as u64,
            "pattern-per-bit mode fills all 64 lanes every pass"
        );
        // Its sequences replay to detection exactly like the default mode's.
        assert!(!res.detected.is_empty());
        for (fi, seq) in &res.detected {
            let det = replay_batch(&ckt, &cssg, seq, &[faults[*fi]])
                .expect("recorded sequences are valid CSSG walks");
            assert!(det[0], "fault {} not re-detected by its sequence", fi);
        }
    }

    #[test]
    fn pattern_parallel_is_deterministic_and_comparable() {
        let ckt = library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let cfg = RandomTpgConfig {
            pattern_parallel: true,
            seed: 7,
            ..Default::default()
        };
        let a = random_tpg(&ckt, &cssg, &faults, &cfg);
        let b = random_tpg(&ckt, &cssg, &faults, &cfg);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.passes, b.passes);
        // 64 walks per fault should cover at least what one walk does.
        let serial = random_tpg(&ckt, &cssg, &faults, &RandomTpgConfig::default());
        assert!(a.detected.len() >= serial.detected.len() / 2);
    }
}
