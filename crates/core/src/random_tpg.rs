//! Random test pattern generation (§5.4): a seeded random walk over the
//! CSSG, fault-simulated on 64 machines per pass.

use crate::cssg::{Cssg, TestSequence};
use crate::fault::Fault;
use crate::fsim::detect_lanes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use satpg_netlist::Circuit;
use satpg_sim::{parallel_settle, Injection, ParallelInjection, PlaneState};

/// Configuration for [`random_tpg`].
#[derive(Clone, Copy, Debug)]
pub struct RandomTpgConfig {
    /// Vector budget per 63-fault batch.
    pub max_vectors: usize,
    /// Restart from reset after this many vectors without full coverage.
    pub restart_after: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for RandomTpgConfig {
    fn default() -> Self {
        RandomTpgConfig {
            max_vectors: 10,
            restart_after: 5,
            seed: 0x005A_1797,
        }
    }
}

/// Outcome of a random-TPG run.
#[derive(Clone, Debug, Default)]
pub struct RandomTpgResult {
    /// `(index into the fault list, detecting sequence)` pairs.
    pub detected: Vec<(usize, TestSequence)>,
    /// Total vectors applied across all batches.
    pub vectors_applied: usize,
}

/// Runs random TPG over `faults`, returning the detected ones with their
/// sequences.  Detection is conservative (parallel ternary): a reported
/// sequence is guaranteed to expose the fault under any gate delays.
pub fn random_tpg(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &RandomTpgConfig,
) -> RandomTpgResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut result = RandomTpgResult::default();
    for (chunk_idx, chunk) in faults.chunks(63).enumerate() {
        let lanes = chunk.len() + 1;
        let mut inj = vec![Injection::none()];
        inj.extend(chunk.iter().map(Fault::injection));
        let pinj = ParallelInjection::new(&inj);
        let s0 = &cssg.states()[cssg.initial()];
        let p0 = ckt.input_pattern(s0);

        let mut detected = vec![false; lanes];
        let mut planes = parallel_settle(ckt, &PlaneState::broadcast(s0), p0, &pinj);
        let mut good = cssg.initial();
        let mut seq: Vec<u64> = Vec::new();
        detect_lanes(ckt, &planes, &cssg.states()[good], lanes, &mut detected);
        record_new(
            &mut result,
            &detected,
            &mut vec![false; lanes],
            chunk_idx,
            &seq,
        );

        let mut already = detected.clone();
        let mut since_restart = 0usize;
        for _ in 0..cfg.max_vectors {
            if detected.iter().skip(1).all(|&d| d) {
                break;
            }
            let edges = cssg.edges(good);
            if edges.is_empty() || since_restart >= cfg.restart_after {
                planes = parallel_settle(ckt, &PlaneState::broadcast(s0), p0, &pinj);
                good = cssg.initial();
                seq.clear();
                since_restart = 0;
                continue;
            }
            let (pattern, succ) = edges[rng.gen_range(0..edges.len())];
            seq.push(pattern);
            since_restart += 1;
            planes = parallel_settle(ckt, &planes, pattern, &pinj);
            good = succ;
            result.vectors_applied += 1;
            detect_lanes(ckt, &planes, &cssg.states()[good], lanes, &mut detected);
            record_new(&mut result, &detected, &mut already, chunk_idx, &seq);
        }
    }
    result
}

/// Records lanes that newly turned detected, remembering the sequence
/// prefix that exposed them.
fn record_new(
    result: &mut RandomTpgResult,
    detected: &[bool],
    already: &mut Vec<bool>,
    chunk_idx: usize,
    seq: &[u64],
) {
    if already.len() < detected.len() {
        already.resize(detected.len(), false);
    }
    for l in 1..detected.len() {
        if detected[l] && !already[l] {
            already[l] = true;
            result.detected.push((
                chunk_idx * 63 + (l - 1),
                TestSequence {
                    patterns: seq.to_vec(),
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use crate::fault::input_stuck_faults;
    use crate::fsim::replay_batch;
    use satpg_netlist::library;

    #[test]
    fn detects_a_good_share_on_the_c_element() {
        let ckt = library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let res = random_tpg(&ckt, &cssg, &faults, &RandomTpgConfig::default());
        // The paper reports 40–80% random coverage; this tiny circuit
        // should be mostly covered.
        assert!(
            res.detected.len() * 2 >= faults.len(),
            "detected {}/{}",
            res.detected.len(),
            faults.len()
        );
        assert!(res.vectors_applied > 0);
    }

    #[test]
    fn reported_sequences_replay_to_detection() {
        let ckt = library::muller_pipeline2();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let res = random_tpg(&ckt, &cssg, &faults, &RandomTpgConfig::default());
        assert!(!res.detected.is_empty());
        for (fi, seq) in &res.detected {
            let det = replay_batch(&ckt, &cssg, seq, &[faults[*fi]])
                .expect("recorded sequences are valid CSSG walks");
            assert!(det[0], "fault {} not re-detected by its sequence", fi);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let ckt = library::sr_latch();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let cfg = RandomTpgConfig {
            seed: 42,
            ..Default::default()
        };
        let a = random_tpg(&ckt, &cssg, &faults, &cfg);
        let b = random_tpg(&ckt, &cssg, &faults, &cfg);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.vectors_applied, b.vectors_applied);
    }

    #[test]
    fn zero_budget_detects_reset_observable_only() {
        let ckt = library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let cfg = RandomTpgConfig {
            max_vectors: 0,
            ..Default::default()
        };
        let res = random_tpg(&ckt, &cssg, &faults, &cfg);
        // With no vectors, only faults visible in the settled reset state
        // (e.g. an input pin stuck-1 that flips y … none here) may appear.
        for (_, seq) in &res.detected {
            assert!(seq.is_empty());
        }
    }
}
