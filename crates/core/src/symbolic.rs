//! Symbolic (BDD-based) CSSG construction — the §4.2 computation.
//!
//! State bit `i` of the circuit is encoded with three interleaved BDD
//! variables: `3i` (current frame *x*), `3i+1` (next frame *y*) and
//! `3i+2` (auxiliary frame *z*, used for relation composition and the
//! non-confluence check).  All frame moves are uniform shifts, which are
//! monotone and therefore legal [`satpg_bdd::Manager::remap`]s.
//!
//! The computation follows the paper exactly:
//!
//! * `R_δ(x,y)`: one excited gate switches (stable states self-loop);
//! * `R_I(x,y)`: from a stable state the environment rewrites the input
//!   pins, gates unchanged;
//! * `TCR_k = R_I ∘ R_δ^{k-1}` (early-terminated at a fixpoint);
//! * `CSSG_k(x,y) = TCR_k ∧ stable(y) ∧ ¬∃z [TCR_k(x,z) ∧ z≠y ∧
//!   X_P(z)=X_P(y)]` — the pruning of non-confluent and unstable pairs.

use crate::cssg::Cssg;
use crate::error::CoreError;
use crate::Result;
use satpg_bdd::{Bdd, Manager};
use satpg_netlist::{Bits, Circuit, Gate, GateId, GateKind};

/// Frame offsets.
const X: u32 = 0;
const Y: u32 = 1;
const Z: u32 = 2;

/// Default auto-GC threshold for the builder's manager: generous enough
/// that the bundled benchmarks never trigger it, tight enough that large
/// generated families reclaim their TCR-iteration intermediates.
pub const DEFAULT_GC_THRESHOLD: usize = 1 << 16;

/// The symbolic CSSG builder.
///
/// The builder roots its long-lived functions (the excitation vector,
/// the stability predicate, the transition relations and the iterated
/// TCR) so dead intermediates — in particular superseded TCR iterates —
/// are reclaimed whenever the manager's auto-GC threshold trips.
///
/// # Example
///
/// ```
/// use satpg_core::symbolic::SymbolicCssg;
///
/// let ckt = satpg_netlist::library::c_element();
/// let cssg = SymbolicCssg::build(&ckt, None).unwrap();
/// assert!(cssg.num_edges() > 0);
/// ```
pub struct SymbolicCssg {
    mgr: Manager,
    nbits: usize,
    m: usize,
}

/// The relations the construction hands from [`SymbolicCssg::valid_relation`]
/// to the extraction pass.  `valid` is the pruned CSSG relation; `tcr` and
/// `stable_y` are kept alive so extraction can classify the pruned pairs.
struct Relations {
    valid: Bdd,
    tcr: Bdd,
    stable_y: Bdd,
    /// The TCR iteration exhausted its `k-1` steps without reaching a
    /// fixpoint: unstable-at-`k` pairs may be truncation artifacts.
    depth_limited: bool,
}

impl SymbolicCssg {
    /// Builds the CSSG of `ckt` symbolically with transition bound `k`
    /// (default `4·gates + 4`), under the default memory policy
    /// ([`DEFAULT_GC_THRESHOLD`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyStateBits`] beyond 32 bits,
    /// [`CoreError::NoStableReset`] for an unstable reset state.
    pub fn build(ckt: &Circuit, k: Option<usize>) -> Result<Cssg> {
        Self::build_with_gc(ckt, k, Some(DEFAULT_GC_THRESHOLD))
    }

    /// [`SymbolicCssg::build`] with an explicit GC policy: `None` keeps
    /// every node immortal, `Some(t)` sweeps unrooted nodes whenever the
    /// unique table exceeds `t` entries.
    pub fn build_with_gc(ckt: &Circuit, k: Option<usize>, gc: Option<usize>) -> Result<Cssg> {
        Ok(Self::construct(ckt, k, gc, false)?.0)
    }

    /// [`SymbolicCssg::build_with_gc`] plus the pruning/truncation
    /// diagnostics ([`Cssg::pruned_nonconfluent`] and friends).  The
    /// classification costs an explicit-style enumeration pass over the
    /// reachable states, so the plain builders skip it.
    pub fn build_diagnostic(ckt: &Circuit, k: Option<usize>, gc: Option<usize>) -> Result<Cssg> {
        Ok(Self::construct(ckt, k, gc, true)?.0)
    }

    /// [`SymbolicCssg::build_diagnostic`] with the per-reachable-state
    /// TCR restriction work — the dominant cost of the diagnostics pass —
    /// partitioned across `shards` threads.
    ///
    /// The relation itself is built once; each shard thread then
    /// [`satpg_bdd::Manager::import`]s the TCR and stability predicate
    /// into a private manager (under the same GC policy) and classifies
    /// a contiguous chunk of the reachable states.  Per-state counts are
    /// exact model counts, so summing them in state order yields
    /// counters identical to the serial pass for every shard count.
    pub fn build_sharded(
        ckt: &Circuit,
        k: Option<usize>,
        gc: Option<usize>,
        shards: usize,
    ) -> Result<Cssg> {
        Ok(Self::construct_sharded(ckt, k, gc, shards)?.0)
    }

    /// The full construction with diagnostics, also returning the
    /// manager's GC telemetry (exposed for tests and benches).
    pub fn build_inner(
        ckt: &Circuit,
        k: Option<usize>,
        gc: Option<usize>,
    ) -> Result<(Cssg, satpg_bdd::GcStats)> {
        Self::construct(ckt, k, gc, true)
    }

    fn construct(
        ckt: &Circuit,
        k: Option<usize>,
        gc: Option<usize>,
        diagnose: bool,
    ) -> Result<(Cssg, satpg_bdd::GcStats)> {
        Self::construct_inner(ckt, k, gc, diagnose.then_some(1))
    }

    fn construct_sharded(
        ckt: &Circuit,
        k: Option<usize>,
        gc: Option<usize>,
        shards: usize,
    ) -> Result<(Cssg, satpg_bdd::GcStats)> {
        Self::construct_inner(ckt, k, gc, Some(shards.max(1)))
    }

    /// The shared construction body.  `diagnose_shards` is `None` for a
    /// plain build, `Some(n)` for a diagnostic build whose
    /// classification pass runs on `n` threads.
    fn construct_inner(
        ckt: &Circuit,
        k: Option<usize>,
        gc: Option<usize>,
        diagnose_shards: Option<usize>,
    ) -> Result<(Cssg, satpg_bdd::GcStats)> {
        let nbits = ckt.num_state_bits();
        if nbits > 32 {
            return Err(CoreError::TooManyStateBits(nbits));
        }
        if !ckt.is_stable(ckt.initial_state()) {
            return Err(CoreError::NoStableReset);
        }
        let k = k.unwrap_or(4 * ckt.num_gates() + 4);
        let mut mgr = Manager::new(3 * nbits as u32);
        mgr.set_gc_threshold(gc);
        let mut s = SymbolicCssg {
            mgr,
            nbits,
            m: ckt.num_inputs(),
        };
        let rel = s.valid_relation(ckt, k);
        s.mgr.protect(rel.valid);
        let mut cssg = s.extract(ckt, &rel, k)?;
        match diagnose_shards {
            None => {}
            Some(shards) if shards <= 1 => s.count_pruned(&mut cssg, &rel),
            Some(shards) => s.count_pruned_sharded(&mut cssg, &rel, gc, shards),
        }
        s.mgr.unprotect(rel.valid);
        s.mgr.unprotect(rel.tcr);
        s.mgr.unprotect(rel.stable_y);
        Ok((cssg, s.mgr.gc_stats()))
    }

    fn var(&mut self, bit: usize, frame: u32) -> Bdd {
        self.mgr.var(3 * bit as u32 + frame)
    }

    /// BDD of gate `g`'s function over the X frame.
    fn gate_fn(&mut self, ckt: &Circuit, g: GateId) -> Bdd {
        let gate = ckt.gate(g).clone();
        let pins: Vec<Bdd> = gate
            .inputs
            .iter()
            .map(|&sig| self.var(sig.index(), X))
            .collect();
        let out = self.var(ckt.gate_output(g).index(), X);
        let m = &mut self.mgr;
        // Pin handles (and the feedback pin `out`) are reused across the
        // folds below, so an auto-GC inside any step must not sweep them.
        for &p in &pins {
            m.protect(p);
        }
        m.protect(out);
        let r = Self::gate_fn_body(m, &gate, &pins, out);
        m.unprotect(out);
        for &p in &pins {
            m.unprotect(p);
        }
        r
    }

    fn gate_fn_body(m: &mut Manager, gate: &Gate, pins: &[Bdd], out: Bdd) -> Bdd {
        let fold_and = |m: &mut Manager, xs: &[Bdd]| xs.iter().fold(Bdd::TRUE, |a, &b| m.and(a, b));
        let fold_or = |m: &mut Manager, xs: &[Bdd]| xs.iter().fold(Bdd::FALSE, |a, &b| m.or(a, b));
        match &gate.kind {
            GateKind::Input | GateKind::Buf => pins[0],
            GateKind::Not => m.not(pins[0]),
            GateKind::And => fold_and(m, pins),
            GateKind::Or => fold_or(m, pins),
            GateKind::Nand => {
                let a = fold_and(m, pins);
                m.not(a)
            }
            GateKind::Nor => {
                let o = fold_or(m, pins);
                m.not(o)
            }
            GateKind::Xor => pins.iter().fold(Bdd::FALSE, |a, &b| m.xor(a, b)),
            GateKind::Xnor => {
                let x = pins.iter().fold(Bdd::FALSE, |a, &b| m.xor(a, b));
                m.not(x)
            }
            GateKind::C => {
                let all = fold_and(m, pins);
                m.protect(all);
                let any = fold_or(m, pins);
                let hold = m.and(out, any);
                let r = m.or(all, hold);
                m.unprotect(all);
                r
            }
            GateKind::Sop(sop) => {
                let mut acc = Bdd::FALSE;
                m.protect(acc);
                for cube in &sop.cubes {
                    let mut c = Bdd::TRUE;
                    m.protect(c);
                    for l in &cube.0 {
                        let v = pins[l.pin];
                        let lit = if l.positive { v } else { m.not(v) };
                        let nc = m.and(c, lit);
                        c = m.reroot(c, nc);
                    }
                    let na = m.or(acc, c);
                    acc = m.reroot(acc, na);
                    m.unprotect(c);
                }
                m.unprotect(acc);
                acc
            }
            GateKind::Const(v) => {
                if *v {
                    Bdd::TRUE
                } else {
                    Bdd::FALSE
                }
            }
        }
    }

    /// `iff(bit@a, bit@b)` conjoined over a bit range.
    fn same(&mut self, bits: impl Iterator<Item = usize>, fa: u32, fb: u32) -> Bdd {
        let mut acc = Bdd::TRUE;
        self.mgr.protect(acc);
        for i in bits {
            let a = self.var(i, fa);
            let b = self.var(i, fb);
            // `acc` is held across the `iff`, so it stays rooted.
            let eq = self.mgr.iff(a, b);
            let next = self.mgr.and(acc, eq);
            acc = self.mgr.reroot(acc, next);
        }
        self.mgr.unprotect(acc);
        acc
    }

    /// Builds the validated CSSG relation over (X, Y).
    ///
    /// Every BDD held across another operation is rooted for exactly the
    /// span it is needed, so an auto-GC sweep at any operation boundary
    /// reclaims precisely the superseded intermediates (most notably the
    /// dead TCR iterates, the dominant allocation on large circuits).
    fn valid_relation(&mut self, ckt: &Circuit, k: usize) -> Relations {
        let nbits = self.nbits;
        let m_inputs = self.m;
        // Excitation and stability over X.
        let mut excited = Vec::with_capacity(ckt.num_gates());
        let mut stable = Bdd::TRUE;
        self.mgr.protect(stable);
        for gi in 0..ckt.num_gates() {
            let g = GateId(gi as u32);
            let f = self.gate_fn(ckt, g);
            let out = self.var(ckt.gate_output(g).index(), X);
            let e = self.mgr.xor(f, out);
            self.mgr.protect(e);
            excited.push(e);
            let ne = self.mgr.not(e);
            let next = self.mgr.and(stable, ne);
            stable = self.mgr.reroot(stable, next);
        }

        // R_δ(x,y): stable self-loop or one excited gate switches.
        let same_all = self.same(0..nbits, X, Y);
        let mut r_delta = self.mgr.and(stable, same_all);
        self.mgr.protect(r_delta);
        for (gi, &exc) in excited.iter().enumerate() {
            let g = GateId(gi as u32);
            let out_bit = ckt.gate_output(g).index();
            let same_rest = self.same((0..nbits).filter(|&i| i != out_bit), X, Y);
            self.mgr.protect(same_rest);
            let xo = self.var(out_bit, X);
            let yo = self.var(out_bit, Y);
            let flip = self.mgr.xor(xo, yo);
            let t = self.mgr.and(exc, flip);
            let t = self.mgr.and(t, same_rest);
            self.mgr.unprotect(same_rest);
            let next = self.mgr.or(r_delta, t);
            r_delta = self.mgr.reroot(r_delta, next);
        }
        // The excitation vector is dead from here on.
        for &e in &excited {
            self.mgr.unprotect(e);
        }

        // R_I(x,y): stable, gates unchanged, inputs changed.
        let same_gates = self.same(m_inputs..nbits, X, Y);
        self.mgr.protect(same_gates);
        let same_env = self.same(0..m_inputs, X, Y);
        let diff_env = self.mgr.not(same_env);
        self.mgr.protect(diff_env);
        let r_i = self.mgr.and(stable, same_gates);
        self.mgr.unprotect(same_gates);
        let r_i = self.mgr.and(r_i, diff_env);
        self.mgr.unprotect(diff_env);

        // TCR_k = R_I ∘ R_δ^{k-1} with early fixpoint exit.
        let r_delta_yz = self.mgr.remap(r_delta, &|v| v + 1);
        self.mgr.protect(r_delta_yz);
        self.mgr.unprotect(r_delta);
        let yvars: Vec<u32> = (0..nbits as u32).map(|i| 3 * i + Y).collect();
        let mut t = r_i;
        self.mgr.protect(t);
        let mut fixpoint = false;
        for _ in 1..k {
            let t_xz = self.mgr.and_exists(t, r_delta_yz, &yvars);
            let t_next = self.mgr.remap(t_xz, &|v| {
                if v % 3 == Z {
                    v - 1
                } else {
                    v
                }
            });
            if t_next == t {
                fixpoint = true;
                break;
            }
            // The superseded iterate unroots here — with an auto-GC
            // threshold set, this is what bounds the TCR loop's memory.
            t = self.mgr.reroot(t, t_next);
        }
        self.mgr.unprotect(r_delta_yz);

        // Pruning: keep (x,y) with y stable and no sibling z ≠ y sharing
        // y's input pattern.
        let stable_y = self.mgr.remap(stable, &|v| v + 1);
        self.mgr.protect(stable_y);
        self.mgr.unprotect(stable);
        let t_xz = self.mgr.remap(t, &|v| if v % 3 == Y { v + 1 } else { v });
        self.mgr.protect(t_xz);
        let same_env_yz = self.same(0..m_inputs, Y, Z);
        self.mgr.protect(same_env_yz);
        let same_all_yz = self.same(0..nbits, Y, Z);
        let diff_yz = self.mgr.not(same_all_yz);
        let sibling = self.mgr.and(same_env_yz, diff_yz);
        self.mgr.unprotect(same_env_yz);
        let zvars: Vec<u32> = (0..nbits as u32).map(|i| 3 * i + Z).collect();
        let bad = self.mgr.and_exists(t_xz, sibling, &zvars);
        self.mgr.unprotect(t_xz);
        let not_bad = self.mgr.not(bad);
        self.mgr.protect(not_bad);
        let ok = self.mgr.and(t, stable_y);
        let valid = self.mgr.and(ok, not_bad);
        self.mgr.unprotect(not_bad);
        // `t` and `stable_y` stay protected: the extraction pass reuses
        // them for the pruning diagnostics and unprotects them afterward.
        Relations {
            valid,
            tcr: t,
            stable_y,
            depth_limited: !fixpoint,
        }
    }

    /// Enumerates the relation into an explicit [`Cssg`], keeping only the
    /// part reachable from the reset state, then classifies the pruned
    /// (state, pattern) pairs of every reachable state so the symbolic
    /// construction reports the same pruning/truncation diagnostics as
    /// the explicit one.
    fn extract(&mut self, ckt: &Circuit, rel: &Relations, k: usize) -> Result<Cssg> {
        let nbits = self.nbits;
        // All edges (x→y) as packed pairs.
        let vars: Vec<u32> = (0..nbits as u32)
            .flat_map(|i| [3 * i + X, 3 * i + Y])
            .collect();
        let models = self.mgr.models_packed(rel.valid, &vars);
        use std::collections::HashMap;
        let mut edges: HashMap<Bits, Vec<Bits>> = HashMap::new();
        for w in models {
            let mut from = Bits::zeros(nbits);
            let mut to = Bits::zeros(nbits);
            for i in 0..nbits {
                from.set(i, w >> (2 * i) & 1 == 1);
                to.set(i, w >> (2 * i + 1) & 1 == 1);
            }
            edges.entry(from).or_default().push(to);
        }
        // BFS from the reset state.
        let mut cssg = Cssg::new(ckt.num_inputs(), k);
        let root = cssg.intern(ckt.initial_state().clone());
        let mut work = vec![root];
        while let Some(si) = work.pop() {
            let from = cssg.states()[si].clone();
            let Some(tos) = edges.get(&from) else {
                continue;
            };
            for to in tos.clone() {
                let pattern = ckt.input_pattern(&to);
                let known = cssg.state_index(&to).is_some();
                let ni = cssg.intern(to);
                cssg.add_edge(si, pattern, ni);
                if !known {
                    work.push(ni);
                }
            }
        }
        cssg.sort_edges();
        Ok(cssg)
    }

    /// Per reachable state: classify every environment pattern the TCR
    /// reaches but the validated relation dropped.  A pattern with an
    /// unstable-at-`k` endpoint counts as pruned-unstable (and as
    /// truncated when the TCR ran out of depth before its fixpoint — the
    /// drop may then be an artifact, not a proof); the remaining dropped
    /// patterns had several stable endpoints, i.e. a critical race.
    fn count_pruned(&mut self, cssg: &mut Cssg, rel: &Relations) {
        let nbits = self.nbits;
        let env_y: Vec<u32> = (0..self.m as u32).map(|i| 3 * i + Y).collect();
        let gate_y: Vec<u32> = (self.m..nbits).map(|i| 3 * i as u32 + Y).collect();
        let not_stable_y = self.mgr.not(rel.stable_y);
        self.mgr.protect(not_stable_y);
        for si in 0..cssg.num_states() {
            let state = cssg.states()[si].clone();
            let (unstable, reached) = classify_state(
                &mut self.mgr,
                nbits,
                rel.tcr,
                not_stable_y,
                &env_y,
                &gate_y,
                &state,
            );
            let valid = cssg.edges(si).len();
            cssg.note_unstable_n(unstable);
            cssg.note_nonconfluent_n(reached.saturating_sub(unstable + valid));
            if rel.depth_limited {
                cssg.note_truncated_n(unstable);
            }
        }
        self.mgr.unprotect(not_stable_y);
    }

    /// [`SymbolicCssg::count_pruned`] with the reachable states split
    /// into contiguous chunks classified on worker threads.
    ///
    /// Each worker imports the TCR and the stability predicate into a
    /// private manager (the built relation's manager is only read), so
    /// no locking happens on the BDD side at all.  Per-state results are
    /// merged back in state order; the counts are exact, so the summed
    /// counters match the serial pass bit for bit.
    fn count_pruned_sharded(
        &mut self,
        cssg: &mut Cssg,
        rel: &Relations,
        gc: Option<usize>,
        shards: usize,
    ) {
        let n = cssg.num_states();
        if n == 0 {
            return;
        }
        let nbits = self.nbits;
        let m_inputs = self.m;
        let states: Vec<Bits> = cssg.states().to_vec();
        let chunk = n.div_ceil(shards.max(1));
        let ranges: Vec<(usize, usize)> = (0..shards)
            .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
            .filter(|&(lo, hi)| lo < hi)
            .collect();
        let src = &self.mgr;
        let counts: Vec<Vec<(usize, usize)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| {
                    let states = &states;
                    scope.spawn(move || {
                        classify_states(
                            src,
                            nbits,
                            m_inputs,
                            gc,
                            rel.tcr,
                            rel.stable_y,
                            &states[lo..hi],
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("symbolic shard worker panicked"))
                .collect()
        });
        let mut si = 0usize;
        for per_state in counts.into_iter().flatten() {
            let (unstable, reached) = per_state;
            let valid = cssg.edges(si).len();
            cssg.note_unstable_n(unstable);
            cssg.note_nonconfluent_n(reached.saturating_sub(unstable + valid));
            if rel.depth_limited {
                cssg.note_truncated_n(unstable);
            }
            si += 1;
        }
        debug_assert_eq!(si, n, "every reachable state classified");
    }
}

/// The per-state classification body shared by the serial and sharded
/// diagnostics passes: restrict the TCR to `state` and model-count the
/// environment patterns it reaches, split into (unstable, all)
/// endpoints.  One copy, so the sharded/serial counter identity cannot
/// drift.  `tcr` and `not_stable_y` must be rooted by the caller; every
/// intermediate held across an operation is rooted here, so the body is
/// safe under any auto-GC threshold.
fn classify_state(
    m: &mut Manager,
    nbits: usize,
    tcr: Bdd,
    not_stable_y: Bdd,
    env_y: &[u32],
    gate_y: &[u32],
    state: &Bits,
) -> (usize, usize) {
    let mut t_x = tcr;
    m.protect(t_x);
    for bit in 0..nbits {
        let r = m.restrict(t_x, 3 * bit as u32 + X, state.get(bit));
        t_x = m.reroot(t_x, r);
    }
    let all_pats = m.exists(t_x, gate_y);
    m.protect(all_pats);
    let unstable_part = m.and(t_x, not_stable_y);
    let unstable_pats = m.exists(unstable_part, gate_y);
    let reached = m.models_packed(all_pats, env_y).len();
    let unstable = m.models_packed(unstable_pats, env_y).len();
    m.unprotect(all_pats);
    m.unprotect(t_x);
    (unstable, reached)
}

/// One shard of the diagnostics pass: [`classify_state`] over a chunk
/// of the reachable states, on a private manager seeded by
/// [`Manager::import`] from the built relation's (read-only) manager.
fn classify_states(
    src: &Manager,
    nbits: usize,
    m_inputs: usize,
    gc: Option<usize>,
    tcr: Bdd,
    stable_y: Bdd,
    states: &[Bits],
) -> Vec<(usize, usize)> {
    let mut m = Manager::new(3 * nbits as u32);
    m.set_gc_threshold(gc);
    let tcr = m.import(src, tcr);
    m.protect(tcr);
    let stable = m.import(src, stable_y);
    m.protect(stable);
    let not_stable_y = m.not(stable);
    m.protect(not_stable_y);
    m.unprotect(stable);
    let env_y: Vec<u32> = (0..m_inputs as u32).map(|i| 3 * i + Y).collect();
    let gate_y: Vec<u32> = (m_inputs..nbits).map(|i| 3 * i as u32 + Y).collect();
    states
        .iter()
        .map(|state| classify_state(&mut m, nbits, tcr, not_stable_y, &env_y, &gate_y, state))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use satpg_netlist::{library, Pattern};

    /// The symbolic and explicit constructions must agree exactly when
    /// both use the exact k-bounded semantics.
    fn assert_same_cssg(ckt: &Circuit) {
        let cfg = CssgConfig {
            ternary_fast_path: false,
            ..CssgConfig::default()
        };
        let explicit = build_cssg(ckt, &cfg).unwrap();
        let symbolic =
            SymbolicCssg::build_diagnostic(ckt, None, Some(DEFAULT_GC_THRESHOLD)).unwrap();
        assert_eq!(
            explicit.num_states(),
            symbolic.num_states(),
            "{}: state counts",
            ckt.name()
        );
        assert_eq!(
            explicit.num_edges(),
            symbolic.num_edges(),
            "{}: edge counts",
            ckt.name()
        );
        // Edge-by-edge comparison through the state bit-vectors.
        for si in 0..explicit.num_states() {
            let state = &explicit.states()[si];
            let sj = symbolic
                .state_index(state)
                .unwrap_or_else(|| panic!("{}: state {state} missing symbolically", ckt.name()));
            let ee: Vec<(Pattern, Bits)> = explicit
                .edges(si)
                .iter()
                .map(|(p, t)| (p.clone(), explicit.states()[*t].clone()))
                .collect();
            let se: Vec<(Pattern, Bits)> = symbolic
                .edges(sj)
                .iter()
                .map(|(p, t)| (p.clone(), symbolic.states()[*t].clone()))
                .collect();
            assert_eq!(ee, se, "{}: edges of {state}", ckt.name());
        }
        // The pruning diagnostics must agree too: both constructions
        // classify every (reachable state, pattern) drop the same way.
        assert_eq!(
            explicit.pruned_nonconfluent(),
            symbolic.pruned_nonconfluent(),
            "{}: non-confluent counts",
            ckt.name()
        );
        assert_eq!(
            explicit.pruned_unstable(),
            symbolic.pruned_unstable(),
            "{}: unstable counts",
            ckt.name()
        );
        assert_eq!(explicit.pruned_truncated(), 0, "{}", ckt.name());
        // The symbolic truncation diagnostic is conservative: a circuit
        // whose TCR cycles without a fixpoint (a genuine oscillator)
        // flags its unstable pairs as possibly-truncated.
        assert!(
            symbolic.pruned_truncated() <= symbolic.pruned_unstable(),
            "{}",
            ckt.name()
        );
    }

    #[test]
    fn matches_explicit_on_c_element() {
        assert_same_cssg(&library::c_element());
    }

    #[test]
    fn matches_explicit_on_figure1a() {
        assert_same_cssg(&library::figure1a());
    }

    #[test]
    fn matches_explicit_on_figure1b() {
        assert_same_cssg(&library::figure1b());
    }

    #[test]
    fn matches_explicit_on_sr_latch() {
        assert_same_cssg(&library::sr_latch());
    }

    #[test]
    fn matches_explicit_on_muller_pipeline() {
        assert_same_cssg(&library::muller_pipeline2());
    }

    /// A brutally small GC threshold (sweep at nearly every operation)
    /// must not change the constructed CSSG on any library circuit, and
    /// must actually reclaim nodes on the non-trivial ones.
    #[test]
    fn tiny_gc_threshold_is_semantically_invisible() {
        let mut reclaimed_anywhere = false;
        for ckt in library::all() {
            let immortal = SymbolicCssg::build_with_gc(&ckt, None, None).unwrap();
            let (gc, stats) = SymbolicCssg::build_inner(&ckt, None, Some(16)).unwrap();
            assert_eq!(
                immortal.num_states(),
                gc.num_states(),
                "{}: states diverge under GC",
                ckt.name()
            );
            assert_eq!(
                immortal.num_edges(),
                gc.num_edges(),
                "{}: edges diverge under GC",
                ckt.name()
            );
            for si in 0..immortal.num_states() {
                let state = &immortal.states()[si];
                let sj = gc.state_index(state).expect("state survives GC");
                assert_eq!(immortal.edges(si), gc.edges(sj), "{}", ckt.name());
            }
            reclaimed_anywhere |= stats.reclaimed > 0;
        }
        assert!(reclaimed_anywhere, "threshold 16 must trigger sweeps");
    }

    /// The default policy bounds the working set: under a small
    /// threshold the peak unique-table size stays near the threshold
    /// rather than near the total allocation.
    #[test]
    fn gc_bounds_symbolic_working_set() {
        let ckt = library::muller_pipeline2();
        let (_, stats) = SymbolicCssg::build_inner(&ckt, None, Some(64)).unwrap();
        assert!(stats.runs > 0);
        assert!(stats.reclaimed > 0, "TCR iterates are reclaimed");
    }

    /// The sharded diagnostics pass must be invisible: same states,
    /// edges and pruning counters as the serial diagnostic build, for
    /// every shard count, with and without a GC policy.
    #[test]
    fn sharded_diagnostics_match_serial_on_library() {
        for ckt in library::all() {
            if ckt.num_state_bits() > 32 {
                continue;
            }
            for gc in [None, Some(1024)] {
                let serial = SymbolicCssg::build_diagnostic(&ckt, None, gc).unwrap();
                for shards in 1..=4 {
                    let sharded = SymbolicCssg::build_sharded(&ckt, None, gc, shards).unwrap();
                    let ctx = format!("{} @ {shards} shards, gc {gc:?}", ckt.name());
                    assert_eq!(serial.num_states(), sharded.num_states(), "{ctx}");
                    assert_eq!(serial.num_edges(), sharded.num_edges(), "{ctx}");
                    assert_eq!(serial.states(), sharded.states(), "{ctx}: state order");
                    for si in 0..serial.num_states() {
                        assert_eq!(serial.edges(si), sharded.edges(si), "{ctx}: state {si}");
                    }
                    assert_eq!(
                        serial.pruned_nonconfluent(),
                        sharded.pruned_nonconfluent(),
                        "{ctx}"
                    );
                    assert_eq!(serial.pruned_unstable(), sharded.pruned_unstable(), "{ctx}");
                    assert_eq!(
                        serial.pruned_truncated(),
                        sharded.pruned_truncated(),
                        "{ctx}"
                    );
                }
            }
        }
    }

    #[test]
    fn plain_build_skips_the_diagnostics_pass() {
        let ckt = library::c_element();
        let plain = SymbolicCssg::build(&ckt, None).unwrap();
        assert_eq!(
            plain.pruned_nonconfluent() + plain.pruned_unstable() + plain.pruned_truncated(),
            0,
            "plain builds skip the enumeration pass"
        );
        let diag = SymbolicCssg::build_diagnostic(&ckt, None, None).unwrap();
        assert!(diag.pruned_nonconfluent() > 0, "diagnostics classify drops");
        assert_eq!(plain.num_states(), diag.num_states());
        assert_eq!(plain.num_edges(), diag.num_edges());
    }

    #[test]
    fn too_wide_circuit_rejected() {
        use satpg_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("wide");
        let mut prev = None;
        for i in 0..20 {
            let a = b.input(format!("I{i}"), format!("i{i}"));
            prev = Some(b.gate(format!("g{i}"), GateKind::Buf, vec![a]));
        }
        b.output(prev.unwrap());
        let ckt = b.finish().unwrap();
        assert!(ckt.num_state_bits() > 32);
        assert!(matches!(
            SymbolicCssg::build(&ckt, None),
            Err(CoreError::TooManyStateBits(_))
        ));
    }
}
