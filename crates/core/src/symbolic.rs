//! Symbolic (BDD-based) CSSG construction — the §4.2 computation.
//!
//! State bit `i` of the circuit is encoded with three interleaved BDD
//! variables: `3i` (current frame *x*), `3i+1` (next frame *y*) and
//! `3i+2` (auxiliary frame *z*, used for relation composition and the
//! non-confluence check).  All frame moves are uniform shifts, which are
//! monotone and therefore legal [`satpg_bdd::Manager::remap`]s.
//!
//! The computation follows the paper exactly:
//!
//! * `R_δ(x,y)`: one excited gate switches (stable states self-loop);
//! * `R_I(x,y)`: from a stable state the environment rewrites the input
//!   pins, gates unchanged;
//! * `TCR_k = R_I ∘ R_δ^{k-1}` (early-terminated at a fixpoint);
//! * `CSSG_k(x,y) = TCR_k ∧ stable(y) ∧ ¬∃z [TCR_k(x,z) ∧ z≠y ∧
//!   X_P(z)=X_P(y)]` — the pruning of non-confluent and unstable pairs.

use crate::cssg::Cssg;
use crate::error::CoreError;
use crate::Result;
use satpg_bdd::{Bdd, Manager};
use satpg_netlist::{Bits, Circuit, GateId, GateKind};

/// Frame offsets.
const X: u32 = 0;
const Y: u32 = 1;
const Z: u32 = 2;

/// The symbolic CSSG builder.
///
/// # Example
///
/// ```
/// use satpg_core::symbolic::SymbolicCssg;
///
/// let ckt = satpg_netlist::library::c_element();
/// let cssg = SymbolicCssg::build(&ckt, None).unwrap();
/// assert!(cssg.num_edges() > 0);
/// ```
pub struct SymbolicCssg {
    mgr: Manager,
    nbits: usize,
    m: usize,
}

impl SymbolicCssg {
    /// Builds the CSSG of `ckt` symbolically with transition bound `k`
    /// (default `4·gates + 4`).
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyStateBits`] beyond 32 bits,
    /// [`CoreError::NoStableReset`] for an unstable reset state.
    pub fn build(ckt: &Circuit, k: Option<usize>) -> Result<Cssg> {
        let nbits = ckt.num_state_bits();
        if nbits > 32 {
            return Err(CoreError::TooManyStateBits(nbits));
        }
        if !ckt.is_stable(ckt.initial_state()) {
            return Err(CoreError::NoStableReset);
        }
        let k = k.unwrap_or(4 * ckt.num_gates() + 4);
        let mut s = SymbolicCssg {
            mgr: Manager::new(3 * nbits as u32),
            nbits,
            m: ckt.num_inputs(),
        };
        let valid = s.valid_relation(ckt, k);
        s.extract(ckt, valid, k)
    }

    fn var(&mut self, bit: usize, frame: u32) -> Bdd {
        self.mgr.var(3 * bit as u32 + frame)
    }

    /// BDD of gate `g`'s function over the X frame.
    fn gate_fn(&mut self, ckt: &Circuit, g: GateId) -> Bdd {
        let gate = ckt.gate(g).clone();
        let pins: Vec<Bdd> = gate
            .inputs
            .iter()
            .map(|&sig| self.var(sig.index(), X))
            .collect();
        let out = self.var(ckt.gate_output(g).index(), X);
        let m = &mut self.mgr;
        let fold_and = |m: &mut Manager, xs: &[Bdd]| xs.iter().fold(Bdd::TRUE, |a, &b| m.and(a, b));
        let fold_or = |m: &mut Manager, xs: &[Bdd]| xs.iter().fold(Bdd::FALSE, |a, &b| m.or(a, b));
        match &gate.kind {
            GateKind::Input | GateKind::Buf => pins[0],
            GateKind::Not => m.not(pins[0]),
            GateKind::And => fold_and(m, &pins),
            GateKind::Or => fold_or(m, &pins),
            GateKind::Nand => {
                let a = fold_and(m, &pins);
                m.not(a)
            }
            GateKind::Nor => {
                let o = fold_or(m, &pins);
                m.not(o)
            }
            GateKind::Xor => pins.iter().fold(Bdd::FALSE, |a, &b| m.xor(a, b)),
            GateKind::Xnor => {
                let x = pins.iter().fold(Bdd::FALSE, |a, &b| m.xor(a, b));
                m.not(x)
            }
            GateKind::C => {
                let all = fold_and(m, &pins);
                let any = fold_or(m, &pins);
                let hold = m.and(out, any);
                m.or(all, hold)
            }
            GateKind::Sop(sop) => {
                let mut acc = Bdd::FALSE;
                for cube in &sop.cubes {
                    let mut c = Bdd::TRUE;
                    for l in &cube.0 {
                        let v = pins[l.pin];
                        let lit = if l.positive { v } else { m.not(v) };
                        c = m.and(c, lit);
                    }
                    acc = m.or(acc, c);
                }
                acc
            }
            GateKind::Const(v) => {
                if *v {
                    Bdd::TRUE
                } else {
                    Bdd::FALSE
                }
            }
        }
    }

    /// `iff(bit@a, bit@b)` conjoined over a bit range.
    fn same(&mut self, bits: impl Iterator<Item = usize>, fa: u32, fb: u32) -> Bdd {
        let mut acc = Bdd::TRUE;
        for i in bits {
            let a = self.var(i, fa);
            let b = self.var(i, fb);
            let eq = self.mgr.iff(a, b);
            acc = self.mgr.and(acc, eq);
        }
        acc
    }

    /// Builds the validated CSSG relation over (X, Y).
    fn valid_relation(&mut self, ckt: &Circuit, k: usize) -> Bdd {
        let nbits = self.nbits;
        let m_inputs = self.m;
        // Excitation and stability over X.
        let mut excited = Vec::with_capacity(ckt.num_gates());
        let mut stable = Bdd::TRUE;
        for gi in 0..ckt.num_gates() {
            let g = GateId(gi as u32);
            let f = self.gate_fn(ckt, g);
            let out = self.var(ckt.gate_output(g).index(), X);
            let e = self.mgr.xor(f, out);
            excited.push(e);
            let ne = self.mgr.not(e);
            stable = self.mgr.and(stable, ne);
        }

        // R_δ(x,y): stable self-loop or one excited gate switches.
        let same_all = self.same(0..nbits, X, Y);
        let mut r_delta = self.mgr.and(stable, same_all);
        for (gi, &exc) in excited.iter().enumerate() {
            let g = GateId(gi as u32);
            let out_bit = ckt.gate_output(g).index();
            let same_rest = self.same((0..nbits).filter(|&i| i != out_bit), X, Y);
            let xo = self.var(out_bit, X);
            let yo = self.var(out_bit, Y);
            let flip = self.mgr.xor(xo, yo);
            let t = self.mgr.and(exc, flip);
            let t = self.mgr.and(t, same_rest);
            r_delta = self.mgr.or(r_delta, t);
        }

        // R_I(x,y): stable, gates unchanged, inputs changed.
        let same_gates = self.same(m_inputs..nbits, X, Y);
        let same_env = self.same(0..m_inputs, X, Y);
        let diff_env = self.mgr.not(same_env);
        let mut r_i = self.mgr.and(stable, same_gates);
        r_i = self.mgr.and(r_i, diff_env);

        // TCR_k = R_I ∘ R_δ^{k-1} with early fixpoint exit.
        let r_delta_yz = self.mgr.remap(r_delta, &|v| v + 1);
        let yvars: Vec<u32> = (0..nbits as u32).map(|i| 3 * i + Y).collect();
        let mut t = r_i;
        for _ in 1..k {
            let t_xz = self.mgr.and_exists(t, r_delta_yz, &yvars);
            let t_next = self.mgr.remap(t_xz, &|v| {
                if v % 3 == Z {
                    v - 1
                } else {
                    v
                }
            });
            if t_next == t {
                break;
            }
            t = t_next;
        }

        // Pruning: keep (x,y) with y stable and no sibling z ≠ y sharing
        // y's input pattern.
        let stable_y = self.mgr.remap(stable, &|v| v + 1);
        let t_xz = self.mgr.remap(t, &|v| if v % 3 == Y { v + 1 } else { v });
        let same_env_yz = self.same(0..m_inputs, Y, Z);
        let same_all_yz = self.same(0..nbits, Y, Z);
        let diff_yz = self.mgr.not(same_all_yz);
        let sibling = self.mgr.and(same_env_yz, diff_yz);
        let zvars: Vec<u32> = (0..nbits as u32).map(|i| 3 * i + Z).collect();
        let bad = self.mgr.and_exists(t_xz, sibling, &zvars);
        let not_bad = self.mgr.not(bad);
        let ok = self.mgr.and(t, stable_y);
        self.mgr.and(ok, not_bad)
    }

    /// Enumerates the relation into an explicit [`Cssg`], keeping only the
    /// part reachable from the reset state.
    fn extract(&mut self, ckt: &Circuit, valid: Bdd, k: usize) -> Result<Cssg> {
        let nbits = self.nbits;
        // All edges (x→y) as packed pairs.
        let vars: Vec<u32> = (0..nbits as u32)
            .flat_map(|i| [3 * i + X, 3 * i + Y])
            .collect();
        let models = self.mgr.models_packed(valid, &vars);
        use std::collections::HashMap;
        let mut edges: HashMap<Bits, Vec<Bits>> = HashMap::new();
        for w in models {
            let mut from = Bits::zeros(nbits);
            let mut to = Bits::zeros(nbits);
            for i in 0..nbits {
                from.set(i, w >> (2 * i) & 1 == 1);
                to.set(i, w >> (2 * i + 1) & 1 == 1);
            }
            edges.entry(from).or_default().push(to);
        }
        // BFS from the reset state.
        let mut cssg = Cssg::new(ckt.num_inputs(), k);
        let root = cssg.intern(ckt.initial_state().clone());
        let mut work = vec![root];
        while let Some(si) = work.pop() {
            let from = cssg.states()[si].clone();
            let Some(tos) = edges.get(&from) else {
                continue;
            };
            for to in tos.clone() {
                let pattern = ckt.input_pattern(&to);
                let known = cssg.state_index(&to).is_some();
                let ni = cssg.intern(to);
                cssg.add_edge(si, pattern, ni);
                if !known {
                    work.push(ni);
                }
            }
        }
        cssg.sort_edges();
        Ok(cssg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use satpg_netlist::library;

    /// The symbolic and explicit constructions must agree exactly when
    /// both use the exact k-bounded semantics.
    fn assert_same_cssg(ckt: &Circuit) {
        let cfg = CssgConfig {
            ternary_fast_path: false,
            ..CssgConfig::default()
        };
        let explicit = build_cssg(ckt, &cfg).unwrap();
        let symbolic = SymbolicCssg::build(ckt, None).unwrap();
        assert_eq!(
            explicit.num_states(),
            symbolic.num_states(),
            "{}: state counts",
            ckt.name()
        );
        assert_eq!(
            explicit.num_edges(),
            symbolic.num_edges(),
            "{}: edge counts",
            ckt.name()
        );
        // Edge-by-edge comparison through the state bit-vectors.
        for si in 0..explicit.num_states() {
            let state = &explicit.states()[si];
            let sj = symbolic
                .state_index(state)
                .unwrap_or_else(|| panic!("{}: state {state} missing symbolically", ckt.name()));
            let ee: Vec<(u64, Bits)> = explicit
                .edges(si)
                .iter()
                .map(|&(p, t)| (p, explicit.states()[t].clone()))
                .collect();
            let se: Vec<(u64, Bits)> = symbolic
                .edges(sj)
                .iter()
                .map(|&(p, t)| (p, symbolic.states()[t].clone()))
                .collect();
            assert_eq!(ee, se, "{}: edges of {state}", ckt.name());
        }
    }

    #[test]
    fn matches_explicit_on_c_element() {
        assert_same_cssg(&library::c_element());
    }

    #[test]
    fn matches_explicit_on_figure1a() {
        assert_same_cssg(&library::figure1a());
    }

    #[test]
    fn matches_explicit_on_figure1b() {
        assert_same_cssg(&library::figure1b());
    }

    #[test]
    fn matches_explicit_on_sr_latch() {
        assert_same_cssg(&library::sr_latch());
    }

    #[test]
    fn matches_explicit_on_muller_pipeline() {
        assert_same_cssg(&library::muller_pipeline2());
    }

    #[test]
    fn too_wide_circuit_rejected() {
        use satpg_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("wide");
        let mut prev = None;
        for i in 0..20 {
            let a = b.input(format!("I{i}"), format!("i{i}"));
            prev = Some(b.gate(format!("g{i}"), GateKind::Buf, vec![a]));
        }
        b.output(prev.unwrap());
        let ckt = b.finish().unwrap();
        assert!(ckt.num_state_bits() > 32);
        assert!(matches!(
            SymbolicCssg::build(&ckt, None),
            Err(CoreError::TooManyStateBits(_))
        ));
    }
}
