//! Scan-point selection — the paper's stated future work ("automatic
//! techniques to select those signals in which the insertion of scan
//! paths can contribute to improve testability").
//!
//! For every fault left undetected by the flow, the good×faulty product
//! is explored once more, recording at which *internal* signals a
//! guaranteed mismatch (every possible faulty state disagrees with the
//! good machine) occurs.  A signal that would expose many undetected
//! faults if it were observable is a good candidate for a test point or
//! partial scan — the paper's suggested remedy for the poorly-covered
//! redundant circuits of Table 2.

use crate::atpg::AtpgReport;
use crate::cssg::Cssg;
use crate::fault::Fault;
use crate::three_phase::ThreePhaseConfig;
use satpg_netlist::{Bits, Circuit, SignalId};
use satpg_sim::{Settler, SettlerConfig};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// One scan candidate: an internal signal and the undetected faults it
/// would expose if observable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScanCandidate {
    /// The signal to observe.
    pub signal: SignalId,
    /// Indices (into the analyzed fault list) of faults it would expose.
    pub exposes: Vec<usize>,
}

/// Result of [`scan_candidates`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ScanAnalysis {
    /// Candidates sorted by decreasing number of exposed faults.
    pub candidates: Vec<ScanCandidate>,
    /// Faults that no single observation point exposes.
    pub hopeless: Vec<usize>,
}

/// Signals (state-bit mask) at which every state of `fset` disagrees with
/// `good`.
fn mismatch_mask(ckt: &Circuit, good: &Bits, fset: &BTreeSet<Bits>) -> Vec<bool> {
    let n = ckt.num_state_bits();
    let mut mask = vec![true; n];
    for f in fset {
        for (i, m) in mask.iter_mut().enumerate() {
            if *m && f.get(i) == good.get(i) {
                *m = false;
            }
        }
    }
    if fset.is_empty() {
        mask.fill(false);
    }
    mask
}

/// Explores the product machine of one fault and returns the signals at
/// which a guaranteed mismatch is ever reachable.
fn exposing_signals(
    ckt: &Circuit,
    cssg: &Cssg,
    fault: &Fault,
    cfg: &ThreePhaseConfig,
) -> Vec<bool> {
    let scfg = SettlerConfig {
        k: cssg.k(),
        cap: cfg.settle_cap,
        por: cfg.por,
        ternary_fast_path: true,
        threads: 1,
    };
    let mut settler = Settler::new(ckt, &fault.injection(), &scfg);
    let n = ckt.num_state_bits();
    let mut exposed = vec![false; n];
    let s0 = &cssg.states()[cssg.initial()];
    let Some(f0) = settler
        .settle_set(&BTreeSet::from([s0.clone()]), ckt.input_pattern(s0))
        .ok()
    else {
        return exposed;
    };
    let key_of = |g: usize, f: &BTreeSet<Bits>| (g, f.iter().cloned().collect::<Vec<_>>());
    let mut visited: HashSet<(usize, Vec<Bits>)> = HashSet::new();
    visited.insert(key_of(cssg.initial(), &f0));
    let mut queue: VecDeque<(usize, BTreeSet<Bits>, usize)> =
        VecDeque::from([(cssg.initial(), f0, 0)]);
    while let Some((good, fset, depth)) = queue.pop_front() {
        for (i, m) in mismatch_mask(ckt, &cssg.states()[good], &fset)
            .into_iter()
            .enumerate()
        {
            if m {
                exposed[i] = true;
            }
        }
        if depth >= cfg.max_depth || visited.len() >= cfg.max_nodes {
            continue;
        }
        let edges: Vec<(satpg_netlist::Pattern, usize)> = cssg.edges(good).to_vec();
        for (pattern, gsucc) in edges {
            let Some(fsucc) = settler.settle_set(&fset, pattern).ok() else {
                continue;
            };
            let key = key_of(gsucc, &fsucc);
            if visited.insert(key) {
                queue.push_back((gsucc, fsucc, depth + 1));
            }
        }
    }
    exposed
}

/// Ranks internal signals by how many of the report's undetected faults
/// each would expose if it were observable.
///
/// All non-detected faults (untestable and aborted alike) are analyzed:
/// a redundancy that is untestable at the primary outputs may well be
/// observable internally, which is exactly the partial-scan argument.
pub fn scan_candidates(
    ckt: &Circuit,
    cssg: &Cssg,
    report: &AtpgReport,
    cfg: &ThreePhaseConfig,
) -> ScanAnalysis {
    let undetected: Vec<(usize, Fault)> = report
        .records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.detected_by.is_none())
        .map(|(i, r)| (i, r.fault))
        .collect();
    let outputs: HashSet<usize> = ckt.outputs().iter().map(|o| o.index()).collect();
    let n = ckt.num_state_bits();
    let mut per_signal: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut hopeless = Vec::new();
    for (fi, fault) in &undetected {
        let exposed = exposing_signals(ckt, cssg, fault, cfg);
        let mut any = false;
        for (sig, &e) in exposed.iter().enumerate() {
            // Primary outputs are already observable; skip environment pins.
            if e && !outputs.contains(&sig) && sig >= ckt.num_inputs() {
                per_signal[sig].push(*fi);
                any = true;
            }
        }
        if !any {
            hopeless.push(*fi);
        }
    }
    let mut candidates: Vec<ScanCandidate> = per_signal
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(sig, exposes)| ScanCandidate {
            signal: SignalId(sig as u32),
            exposes,
        })
        .collect();
    candidates.sort_by_key(|c| std::cmp::Reverse(c.exposes.len()));
    ScanAnalysis {
        candidates,
        hopeless,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atpg::{run_atpg, AtpgConfig};
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use satpg_netlist::{CircuitBuilder, GateKind};

    /// A circuit with an internal redundancy invisible at the output:
    /// y = a·b + a·b̄ = a, decomposed so the cube gates c0/c1 exist as
    /// internal nodes.  The b-pin faults are untestable at y but flip
    /// c0/c1 — classic partial-scan candidates.
    fn redundant_decomposed() -> satpg_netlist::Circuit {
        let mut bld = CircuitBuilder::new("red2l");
        let a = bld.input("A", "a");
        let b = bld.input("B", "b");
        let nb = bld.gate("b_n", GateKind::Not, vec![b.clone()]);
        let c0 = bld.gate("c0", GateKind::And, vec![a.clone(), b]);
        let c1 = bld.gate("c1", GateKind::And, vec![a, nb]);
        let y = bld.gate("y", GateKind::Or, vec![c0, c1]);
        bld.output(y);
        bld.init("b_n", true);
        bld.finish().unwrap()
    }

    #[test]
    fn internal_observation_exposes_redundant_faults() {
        let ckt = redundant_decomposed();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let report = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        assert!(
            report.covered() < report.total(),
            "the redundancy leaves undetected faults"
        );
        let analysis = scan_candidates(&ckt, &cssg, &report, &ThreePhaseConfig::default());
        assert!(
            !analysis.candidates.is_empty(),
            "some internal point exposes them"
        );
        // The cube outputs c0/c1 are the classic scan candidates here.
        let names: Vec<&str> = analysis
            .candidates
            .iter()
            .map(|c| ckt.signal_name(c.signal))
            .collect();
        assert!(
            names.contains(&"c0") || names.contains(&"c1"),
            "expected a cube output among {names:?}"
        );
        // Every exposed fault is indeed currently undetected.
        for c in &analysis.candidates {
            for &fi in &c.exposes {
                assert!(report.records[fi].detected_by.is_none());
            }
        }
    }

    #[test]
    fn fully_covered_circuit_yields_no_candidates() {
        let ckt = satpg_netlist::library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let report = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        assert_eq!(report.covered(), report.total());
        let analysis = scan_candidates(&ckt, &cssg, &report, &ThreePhaseConfig::default());
        assert!(analysis.candidates.is_empty());
        assert!(analysis.hopeless.is_empty());
    }
}
