//! Synchronous test-program emission.
//!
//! The whole point of the paper is that a conventional synchronous tester
//! can exercise an asynchronous chip: apply a vector, wait one test
//! cycle, strobe the outputs.  This module renders test sequences into
//! that form — one line per cycle with the applied inputs and the
//! expected (good-machine) outputs.

use crate::cssg::{Cssg, TestSequence};
use satpg_netlist::{Circuit, Pattern};
use std::fmt;

/// One tester cycle: drive `inputs`, wait, compare against `expected`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TesterCycle {
    /// Input pattern (bit `i` drives primary input `i`).
    pub inputs: Pattern,
    /// Expected primary-output values (bit `i` is output `i`).
    pub expected: u64,
}

/// A complete test program: named sequences separated by resets.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TestProgram {
    /// Circuit name.
    pub circuit: String,
    /// Input names, in pattern bit order.
    pub input_names: Vec<String>,
    /// Output names, in expected bit order.
    pub output_names: Vec<String>,
    /// `(label, cycles)` blocks; each block starts from reset.
    pub blocks: Vec<(String, Vec<TesterCycle>)>,
}

impl TestProgram {
    /// Creates an empty program for `ckt`.
    pub fn new(ckt: &Circuit) -> Self {
        TestProgram {
            circuit: ckt.name().to_string(),
            input_names: (0..ckt.num_inputs())
                .map(|i| ckt.signal_name(ckt.input_pin(i)).to_string())
                .collect(),
            output_names: ckt
                .outputs()
                .iter()
                .map(|&o| ckt.signal_name(o).to_string())
                .collect(),
            blocks: Vec::new(),
        }
    }

    /// Appends a labeled sequence, deriving expected outputs by replaying
    /// the good machine on the CSSG.  Returns `false` (and appends
    /// nothing) if the sequence is invalid.
    pub fn push_sequence(
        &mut self,
        ckt: &Circuit,
        cssg: &Cssg,
        label: impl Into<String>,
        seq: &TestSequence,
    ) -> bool {
        let Some(states) = cssg.replay(seq) else {
            return false;
        };
        let cycles = seq
            .patterns
            .iter()
            .zip(&states)
            .map(|(p, &s)| TesterCycle {
                inputs: p.clone(),
                expected: cssg.outputs(ckt, s),
            })
            .collect();
        self.blocks.push((label.into(), cycles));
        true
    }

    /// Total number of tester cycles (excluding resets).
    pub fn num_cycles(&self) -> usize {
        self.blocks.iter().map(|(_, c)| c.len()).sum()
    }

    fn bits_str(v: u64, n: usize) -> String {
        (0..n)
            .map(|i| if v >> i & 1 == 1 { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Display for TestProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# synchronous test program for `{}`", self.circuit)?;
        writeln!(f, "# inputs:  {}", self.input_names.join(" "))?;
        writeln!(f, "# outputs: {}", self.output_names.join(" "))?;
        writeln!(
            f,
            "# {} blocks, {} cycles",
            self.blocks.len(),
            self.num_cycles()
        )?;
        for (label, cycles) in &self.blocks {
            writeln!(f, "reset                  # {label}")?;
            for c in cycles {
                writeln!(
                    f,
                    "apply {} expect {}",
                    c.inputs,
                    Self::bits_str(c.expected, self.output_names.len()),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use satpg_netlist::library;

    #[test]
    fn program_renders_cycles() {
        let ckt = library::c_element();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let mut prog = TestProgram::new(&ckt);
        let ok = prog.push_sequence(
            &ckt,
            &cssg,
            "y/SA0",
            &TestSequence::from_u64(2, &[0b11, 0b00]),
        );
        assert!(ok);
        assert_eq!(prog.num_cycles(), 2);
        let text = prog.to_string();
        assert!(text.contains("apply 11 expect 1"), "{text}");
        assert!(text.contains("apply 00 expect 0"), "{text}");
        assert!(text.contains("reset"));
    }

    #[test]
    fn invalid_sequence_not_appended() {
        let ckt = library::figure1b();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let mut prog = TestProgram::new(&ckt);
        let ok = prog.push_sequence(&ckt, &cssg, "bogus", &TestSequence::from_u64(2, &[0b01]));
        assert!(!ok);
        assert_eq!(prog.blocks.len(), 0);
    }

    #[test]
    fn names_follow_circuit_order() {
        let ckt = library::sr_latch();
        let prog = TestProgram::new(&ckt);
        assert_eq!(prog.input_names, vec!["S", "R"]);
        assert_eq!(prog.output_names, vec!["q", "qb"]);
    }
}
