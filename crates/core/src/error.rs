//! Error type for the ATPG core.

use std::error::Error;
use std::fmt;

/// Errors from CSSG construction and ATPG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The circuit's declared initial state is not stable, so there is no
    /// reset state to anchor the CSSG.
    NoStableReset,
    /// The CSSG grew past the configured state budget.
    CssgOverflow(usize),
    /// The circuit has too many primary inputs to enumerate exhaustively
    /// (2^n patterns per state): CSSG construction needs an explicit
    /// pattern budget past 63 inputs.
    PatternBudgetRequired(usize),
    /// The circuit has more primary outputs than packed values support.
    TooManyOutputs(usize),
    /// The circuit has too many state bits for the symbolic encoding.
    TooManyStateBits(usize),
    /// The CSSG has no edges at all: no input vector is valid anywhere,
    /// so nothing can be tested synchronously.
    NoValidVectors,
    /// A netlist-level error.
    Netlist(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoStableReset => write!(f, "circuit has no stable reset state"),
            CoreError::CssgOverflow(n) => write!(f, "CSSG exceeded {n} stable states"),
            CoreError::PatternBudgetRequired(n) => {
                write!(
                    f,
                    "circuit has {n} primary inputs; exhaustive pattern \
                     enumeration stops at 63 — set a pattern budget"
                )
            }
            CoreError::TooManyOutputs(n) => {
                write!(f, "circuit has {n} primary outputs; at most 64 supported")
            }
            CoreError::TooManyStateBits(n) => {
                write!(
                    f,
                    "circuit has {n} state bits; symbolic encoding supports 32"
                )
            }
            CoreError::NoValidVectors => {
                write!(
                    f,
                    "no valid synchronous test vector exists for this circuit"
                )
            }
            CoreError::Netlist(m) => write!(f, "netlist error: {m}"),
        }
    }
}

impl Error for CoreError {}

impl From<satpg_netlist::NetlistError> for CoreError {
    fn from(e: satpg_netlist::NetlistError) -> Self {
        CoreError::Netlist(e.to_string())
    }
}
