//! Stuck-at fault enumeration and structural collapsing.
//!
//! The paper's fault model is the **input stuck-at** model: every gate
//! input pin may be stuck at 0 or 1.  Because every primary input is an
//! identity buffer, PI stuck-ats are included, and because a gate output
//! stuck-at is equivalent to specific pin faults, the input model
//! subsumes the output stuck-at model (whose totals the paper reports
//! separately to exhibit the 100%-testability result for
//! speed-independent circuits).

use satpg_netlist::{Circuit, GateId, GateKind};
use satpg_sim::{Injection, Site};
use std::fmt;

/// A single stuck-at fault.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fault {
    /// The gate carrying the fault site.
    pub gate: GateId,
    /// Input pin or output.
    pub site: Site,
    /// The stuck value.
    pub stuck: bool,
}

impl Fault {
    /// The simulation-level injection realizing this fault.
    pub fn injection(&self) -> Injection {
        Injection::single(self.gate, self.site, self.stuck)
    }

    /// The circuit signal observed when checking excitation: the source
    /// signal of the faulted pin, or the gate output.
    pub fn site_signal(&self, ckt: &Circuit) -> satpg_netlist::SignalId {
        match self.site {
            Site::Pin(p) => ckt.gate(self.gate).inputs[p],
            Site::Output => ckt.gate_output(self.gate),
        }
    }

    /// Human-readable name, e.g. `y.in1/SA0` or `y/SA1`.
    pub fn name(&self, ckt: &Circuit) -> String {
        let out = ckt.signal_name(ckt.gate_output(self.gate));
        let sa = if self.stuck { "SA1" } else { "SA0" };
        match self.site {
            Site::Pin(p) => format!("{out}.in{p}/{sa}"),
            Site::Output => format!("{out}/{sa}"),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sa = if self.stuck { "SA1" } else { "SA0" };
        match self.site {
            Site::Pin(p) => write!(f, "g{}.in{p}/{sa}", self.gate.0),
            Site::Output => write!(f, "g{}/{sa}", self.gate.0),
        }
    }
}

/// All input stuck-at faults: two per gate input pin.
pub fn input_stuck_faults(ckt: &Circuit) -> Vec<Fault> {
    let mut out = Vec::with_capacity(2 * ckt.num_pins());
    for (gi, gate) in ckt.gates().iter().enumerate() {
        for p in 0..gate.inputs.len() {
            for stuck in [false, true] {
                out.push(Fault {
                    gate: GateId(gi as u32),
                    site: Site::Pin(p),
                    stuck,
                });
            }
        }
    }
    out
}

/// All output stuck-at faults: two per gate (including input buffers).
pub fn output_stuck_faults(ckt: &Circuit) -> Vec<Fault> {
    let mut out = Vec::with_capacity(2 * ckt.num_gates());
    for gi in 0..ckt.num_gates() {
        for stuck in [false, true] {
            out.push(Fault {
                gate: GateId(gi as u32),
                site: Site::Output,
                stuck,
            });
        }
    }
    out
}

/// An equivalence class of faults under structural collapsing; testing
/// the representative tests every member.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultClass {
    /// The fault actually targeted.
    pub representative: Fault,
    /// All faults equivalent to it (including the representative).
    pub members: Vec<Fault>,
}

/// Structural (gate-local) fault collapsing.
///
/// Classical equivalences: on an AND gate every `pin/SA0` is equivalent
/// to `output/SA0`; dually for OR with SA1; NAND/NOR with the inverted
/// output value; and on BUF/NOT/Input gates pin faults are equivalent to
/// the correspondingly (un)inverted output fault.  Faults on the same
/// gate collapse into one class; classes are keyed by their dominant
/// output fault when one exists.
pub fn collapse_faults(ckt: &Circuit, faults: &[Fault]) -> Vec<FaultClass> {
    use std::collections::HashMap;
    // Map each fault to a canonical key.
    let canon = |f: &Fault| -> Fault {
        let kind = &ckt.gate(f.gate).kind;
        match (kind, f.site) {
            (GateKind::Buf | GateKind::Input, Site::Pin(_)) => Fault {
                gate: f.gate,
                site: Site::Output,
                stuck: f.stuck,
            },
            (GateKind::Not, Site::Pin(_)) => Fault {
                gate: f.gate,
                site: Site::Output,
                stuck: !f.stuck,
            },
            (GateKind::And, Site::Pin(_)) if !f.stuck => Fault {
                gate: f.gate,
                site: Site::Output,
                stuck: false,
            },
            (GateKind::Nand, Site::Pin(_)) if !f.stuck => Fault {
                gate: f.gate,
                site: Site::Output,
                stuck: true,
            },
            (GateKind::Or, Site::Pin(_)) if f.stuck => Fault {
                gate: f.gate,
                site: Site::Output,
                stuck: true,
            },
            (GateKind::Nor, Site::Pin(_)) if f.stuck => Fault {
                gate: f.gate,
                site: Site::Output,
                stuck: false,
            },
            _ => *f,
        }
    };
    let mut classes: HashMap<Fault, Vec<Fault>> = HashMap::new();
    let mut order: Vec<Fault> = Vec::new();
    for &f in faults {
        let key = canon(&f);
        let entry = classes.entry(key).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(f);
    }
    order
        .into_iter()
        .map(|key| {
            let members = classes.remove(&key).expect("inserted above");
            FaultClass {
                // Prefer an actual member as representative (the key may
                // be a synthetic output fault not in the input list).
                representative: *members.first().expect("nonempty"),
                members,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use satpg_netlist::library;

    #[test]
    fn input_fault_counts() {
        let c = library::c_element();
        // Gates: 2 input buffers (1 pin each) + C (2 pins) = 4 pins.
        assert_eq!(input_stuck_faults(&c).len(), 8);
        assert_eq!(output_stuck_faults(&c).len(), 6);
    }

    #[test]
    fn fault_names_are_informative() {
        let c = library::c_element();
        let f = Fault {
            gate: c.driver(c.signal_by_name("y").unwrap()).unwrap(),
            site: Site::Pin(1),
            stuck: true,
        };
        assert_eq!(f.name(&c), "y.in1/SA1");
        let o = Fault {
            site: Site::Output,
            stuck: false,
            ..f
        };
        assert_eq!(o.name(&c), "y/SA0");
    }

    #[test]
    fn site_signal_resolution() {
        let c = library::c_element();
        let y = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        let f = Fault {
            gate: y,
            site: Site::Pin(0),
            stuck: false,
        };
        assert_eq!(c.signal_name(f.site_signal(&c)), "a");
        let o = Fault {
            site: Site::Output,
            ..f
        };
        assert_eq!(c.signal_name(o.site_signal(&c)), "y");
    }

    #[test]
    fn and_gate_collapsing() {
        use satpg_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("and2");
        let a = b.input("A", "a");
        let bb = b.input("B", "b");
        let y = b.gate("y", GateKind::And, vec![a, bb]);
        b.output(y);
        let c = b.finish().unwrap();
        let all: Vec<Fault> = input_stuck_faults(&c)
            .into_iter()
            .chain(output_stuck_faults(&c))
            .collect();
        let classes = collapse_faults(&c, &all);
        // AND pins SA0 + output SA0 merge into one class of 3.
        let sa0_class = classes
            .iter()
            .find(|cl| cl.members.len() == 3 && cl.members.iter().all(|f| !f.stuck))
            .expect("SA0 class exists");
        assert_eq!(sa0_class.members.len(), 3);
        // Buffer pin faults merge with their output faults (2 each).
        let total: usize = classes.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, all.len(), "collapsing partitions the fault list");
        assert!(classes.len() < all.len());
    }

    #[test]
    fn not_gate_inverts_polarity() {
        use satpg_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("inv");
        let a = b.input("A", "a");
        let y = b.gate("y", GateKind::Not, vec![a]);
        b.output(y);
        b.init("y", true);
        let c = b.finish().unwrap();
        let y_gate = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        let pin_sa0 = Fault {
            gate: y_gate,
            site: Site::Pin(0),
            stuck: false,
        };
        let out_sa1 = Fault {
            gate: y_gate,
            site: Site::Output,
            stuck: true,
        };
        let classes = collapse_faults(&c, &[pin_sa0, out_sa1]);
        assert_eq!(classes.len(), 1, "input SA0 ≡ output SA1 on an inverter");
    }
}
