//! Explicit CSSG construction: enumerate stable states and validate every
//! input pattern with the k-bounded settling analysis.
//!
//! Two entry points share one semantics: [`build_cssg`] explores the
//! reachable stable states serially, [`build_cssg_sharded`] splits the
//! reachability frontier across worker threads (each with its private
//! interleaving-set tracking inside [`settle_explicit`]) and then merges
//! deterministically — the result is **bit-identical** to the serial
//! build for any shard count (see `crates/core/DESIGN.md`).

use crate::cssg::Cssg;
use crate::error::CoreError;
use crate::Result;
use satpg_netlist::{pattern_count, Bits, Circuit, Pattern};
use satpg_sim::{CapPolicy, Injection, Settle, SettleStats, Settler, SettlerConfig};
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Configuration for [`build_cssg`].
#[derive(Clone, Copy, Debug)]
pub struct CssgConfig {
    /// Transition bound `k`; `None` picks `4·gates + 4` (§4.1's test-cycle
    /// estimation with a generous constant).
    pub k: Option<usize>,
    /// Cap on the number of CSSG stable states.
    pub max_states: usize,
    /// Cap policy for the interleaving set tracked per settling analysis
    /// (the old fixed `max_settle_states = 2^15` is
    /// `CapPolicy::Fixed(1 << 15)`; the default scales with circuit
    /// size).
    pub settle_cap: CapPolicy,
    /// Partial-order reduction over commuting gate switchings inside
    /// every settling analysis.  Sound — the built graph is bit-identical
    /// to the naive walk wherever the naive walk completes — and it is
    /// what keeps the deep generated families (muller ≥ 19) from
    /// truncating.
    pub por: bool,
    /// Intra-settle parallel expansion threads (`0`/`1` = serial).  The
    /// graph is identical for any value; only wall clock changes.
    pub settle_threads: usize,
    /// Accept ternary-definite settles without the exhaustive analysis.
    pub ternary_fast_path: bool,
    /// Cap on the number of input patterns *tried* per stable state
    /// (ascending pattern order; the state's own pattern never counts).
    /// `None` enumerates all `2^inputs − 1` candidates — exhaustive, the
    /// historical behaviour, and mandatory below 64 inputs to keep every
    /// existing graph bit-identical.  Past 63 inputs exhaustive
    /// enumeration is impossible and a budget is required
    /// ([`CoreError::PatternBudgetRequired`]); candidates beyond the
    /// budget are counted in [`Cssg::patterns_skipped`], never silently
    /// dropped.
    pub pattern_budget: Option<u64>,
}

impl Default for CssgConfig {
    fn default() -> Self {
        CssgConfig {
            k: None,
            max_states: 1 << 14,
            settle_cap: CapPolicy::default_scaled(),
            por: true,
            settle_threads: 1,
            ternary_fast_path: true,
            pattern_budget: None,
        }
    }
}

impl CssgConfig {
    /// The settling-engine configuration this CSSG config induces.
    pub fn settler(&self, ckt: &Circuit) -> SettlerConfig {
        SettlerConfig {
            k: self.k.unwrap_or(4 * ckt.num_gates() + 4),
            cap: self.settle_cap,
            por: self.por,
            ternary_fast_path: self.ternary_fast_path,
            threads: self.settle_threads,
        }
    }
}

/// The shared precondition prologue of both builders: a divergence here
/// would let one entry point accept circuits the other rejects.
fn validate(ckt: &Circuit, cfg: &CssgConfig) -> Result<()> {
    if ckt.num_inputs() > 63 && cfg.pattern_budget.is_none() {
        return Err(CoreError::PatternBudgetRequired(ckt.num_inputs()));
    }
    if ckt.outputs().len() > 64 {
        return Err(CoreError::TooManyOutputs(ckt.outputs().len()));
    }
    if !ckt.is_stable(ckt.initial_state()) {
        return Err(CoreError::NoStableReset);
    }
    Ok(())
}

/// How many candidate patterns the budget leaves untried per state —
/// a pure function of (inputs, budget), so the serial and sharded
/// builders account identically.  Saturating: past 63 inputs the true
/// candidate count does not fit a word.
fn skipped_per_state(num_inputs: usize, budget: Option<u64>) -> u64 {
    let Some(budget) = budget else { return 0 };
    let candidates = pattern_count(num_inputs).map(|t| t - 1).unwrap_or(u64::MAX);
    candidates.saturating_sub(budget)
}

/// Builds the CSSG of `ckt` from its reset state by forward exploration:
/// every input pattern is tried in every discovered stable state, and
/// kept only when the settling analysis proves confluence within `k`
/// transitions.
///
/// Patterns equal to the state's current inputs are skipped (the paper's
/// `R_I` requires at least one input to change).
///
/// # Errors
///
/// [`CoreError::NoStableReset`] if the reset state is unstable,
/// [`CoreError::PatternBudgetRequired`] for more than 63 inputs without
/// a pattern budget, or [`CoreError::CssgOverflow`] when the state
/// budget is exceeded.
pub fn build_cssg(ckt: &Circuit, cfg: &CssgConfig) -> Result<Cssg> {
    validate(ckt, cfg)?;
    let scfg = cfg.settler(ckt);
    let _span = satpg_trace::span!(
        "cssg.build",
        circuit = ckt.name(),
        gates = ckt.num_gates(),
        k = scfg.k
    );
    let mut settler = Settler::new(ckt, &Injection::none(), &scfg);
    let mut cssg = Cssg::new(ckt.num_inputs(), scfg.k);
    let root = cssg.intern(ckt.initial_state().clone());
    let mut work = vec![root];
    let budget = cfg.pattern_budget.unwrap_or(u64::MAX);
    while let Some(si) = work.pop() {
        let state = cssg.states()[si].clone();
        let current = ckt.input_pattern(&state);
        let mut tried = 0u64;
        for pattern in Pattern::all(ckt.num_inputs()) {
            if tried >= budget {
                break;
            }
            if pattern == current {
                continue;
            }
            tried += 1;
            match settler.settle(&state, &pattern) {
                Settle::Confluent(next) => {
                    let known = cssg.state_index(&next).is_some();
                    let ni = cssg.intern(next);
                    if cssg.num_states() > cfg.max_states {
                        return Err(CoreError::CssgOverflow(cfg.max_states));
                    }
                    cssg.add_edge(si, pattern, ni);
                    if !known {
                        work.push(ni);
                    }
                }
                Settle::NonConfluent(_) => cssg.note_nonconfluent(),
                Settle::Unstable(_) => cssg.note_unstable(),
                // The interleaving set blew its cap: the pair is dropped
                // without a verdict — a truncation, not a proof.
                Settle::Truncated => cssg.note_truncated(),
            }
        }
    }
    cssg.note_settle_stats(settler.stats());
    let skip = skipped_per_state(ckt.num_inputs(), cfg.pattern_budget);
    cssg.note_patterns_skipped(skip.saturating_mul(cssg.num_states() as u64));
    cssg.sort_edges();
    note_build_metrics(&cssg, settler.stats());
    Ok(cssg)
}

/// Feeds one completed build's telemetry into the process metrics
/// registry (`cssg.*`, `settler.*`).  Write-only: nothing here is ever
/// read back into a build.
fn note_build_metrics(cssg: &Cssg, settle: &SettleStats) {
    let m = satpg_trace::metrics();
    m.counter("cssg.builds").inc();
    m.counter("cssg.patterns_skipped")
        .add(cssg.patterns_skipped());
    m.gauge("cssg.last_patterns_skipped")
        .set(cssg.patterns_skipped().min(i64::MAX as u64) as i64);
    m.histogram("cssg.states").record(cssg.num_states() as u64);
    m.histogram("cssg.edges").record(cssg.num_edges() as u64);
    settle.flush_metrics();
}

/// Shared exploration state of the sharded builder: the global intern
/// table plus the work queue of `(state, pattern)` pairs still awaiting
/// their settling analysis.  The pair — not the state — is the work
/// unit, so even a chain-shaped CSSG (e.g. a deep Muller pipeline,
/// whose frontier rarely holds more than a couple of states) exposes
/// `patterns − 1` units of parallelism per discovered state.  Workers
/// hold the lock only to pop work and intern successors; every settling
/// analysis runs outside it.
struct Explore {
    index: HashMap<Bits, u32>,
    states: Vec<Bits>,
    /// Per queued state: a lazy pattern cursor.  Patterns are dealt one
    /// at a time — a wide-input circuit has `2^inputs` of them per
    /// state, so materializing the pairs (as the first cut of this code
    /// did) would hold the lock for an exponential push burst where the
    /// serial builder loops in O(1) memory.
    queue: VecDeque<Cursor>,
    /// Workers currently mid-analysis (their successors are not queued
    /// yet, so an empty queue alone does not mean done).
    active: usize,
    /// Set on state-budget overflow; everyone drains and exits.
    overflow: bool,
}

/// A state's pattern cursor: deals candidates in ascending order, the
/// exact enumeration the serial builder walks.
struct Cursor {
    id: u32,
    /// Next pattern to hand out; `None` once the enumeration wrapped.
    next: Option<Pattern>,
    /// The state's own pattern — skipped without consuming budget (the
    /// paper's `R_I` requires an input change).
    own: Pattern,
    /// Candidates dealt so far, against the per-state pattern budget.
    dealt: u64,
}

impl Explore {
    /// Interns `state`, queueing a fresh pattern cursor for a newly
    /// discovered one.  Returns the id, or `None` on state-budget
    /// overflow.
    fn intern(&mut self, ckt: &Circuit, state: Bits, max_states: usize) -> Option<u32> {
        if let Some(&i) = self.index.get(&state) {
            return Some(i);
        }
        let i = self.states.len() as u32;
        let current = ckt.input_pattern(&state);
        self.index.insert(state.clone(), i);
        self.states.push(state);
        if self.states.len() > max_states {
            self.overflow = true;
            return None;
        }
        self.queue.push_back(Cursor {
            id: i,
            next: Some(Pattern::zeros(ckt.num_inputs())),
            own: current,
            dealt: 0,
        });
        Some(i)
    }

    /// Deals the next `(state, pattern)` pair, skipping each state's
    /// own pattern and retiring cursors that are exhausted or out of
    /// budget.
    fn next_pair(&mut self, budget: u64) -> Option<(u32, Pattern)> {
        loop {
            let cur = self.queue.front_mut()?;
            if cur.dealt >= budget {
                self.queue.pop_front();
                continue;
            }
            let Some(pattern) = cur.next.take() else {
                self.queue.pop_front();
                continue;
            };
            let mut succ = pattern.clone();
            if succ.increment() {
                cur.next = Some(succ);
            }
            if pattern == cur.own {
                continue;
            }
            cur.dealt += 1;
            return Some((cur.id, pattern));
        }
    }
}

/// One worker's private discoveries, merged after the join.
#[derive(Default)]
struct ShardResult {
    /// `(from, pattern, to)` over exploration-order state ids.
    edges: Vec<(u32, Pattern, u32)>,
    nonconfluent: usize,
    unstable: usize,
    truncated: usize,
    /// The worker's private settling-engine counters.  Each (state,
    /// pattern) pair is analysed by exactly one worker and each analysis
    /// is deterministic, so the sum over workers equals the serial
    /// builder's counters for every shard count.
    settle: SettleStats,
}

/// [`build_cssg`] with the frontier split across `shards` worker
/// threads.
///
/// The exploration interns states in a nondeterministic (scheduling
/// dependent) order, so the merge renumbers them by replaying the serial
/// builder's traversal over the completed edge relation: depth-first
/// from the reset state, successors pushed in ascending pattern order.
/// Serial numbering is a pure function of the graph, so the renumbered
/// result — states, edge lists, and the summed pruning/truncation
/// counters — is bit-identical to [`build_cssg`]'s for every shard
/// count (`shards <= 1` simply dispatches to the serial builder, which
/// skips the locking and the merge).
///
/// # Errors
///
/// Exactly the conditions of [`build_cssg`].
pub fn build_cssg_sharded(ckt: &Circuit, cfg: &CssgConfig, shards: usize) -> Result<Cssg> {
    if shards <= 1 {
        return build_cssg(ckt, cfg);
    }
    validate(ckt, cfg)?;
    let scfg = cfg.settler(ckt);
    let build_span = satpg_trace::span!(
        "cssg.build",
        circuit = ckt.name(),
        gates = ckt.num_gates(),
        k = scfg.k,
        shards = shards
    );
    let build_span_id = build_span.id();
    let mut explore = Explore {
        index: HashMap::new(),
        states: Vec::new(),
        queue: VecDeque::new(),
        active: 0,
        overflow: false,
    };
    explore.intern(ckt, ckt.initial_state().clone(), cfg.max_states);
    let shared = Mutex::new(explore);
    let work_cv = Condvar::new();

    let scfg_ref = &scfg;
    let shared_ref = &shared;
    let cv_ref = &work_cv;
    let results: Vec<ShardResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move || {
                    shard_loop(ckt, scfg_ref, cfg, shared_ref, cv_ref, shard, build_span_id)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("CSSG shard worker panicked"))
            .collect()
    });

    let explore = shared.into_inner().expect("exploration lock");
    if explore.overflow {
        return Err(CoreError::CssgOverflow(cfg.max_states));
    }
    let _merge_span = satpg_trace::span!("cssg.merge", states = explore.states.len());
    merge_shards(ckt, &scfg, cfg, explore, &results)
}

/// One shard's loop: pop a `(state, pattern)` pair, run its k-bounded
/// settling analysis privately, publish the verdict under the lock.
fn shard_loop(
    ckt: &Circuit,
    scfg: &SettlerConfig,
    cfg: &CssgConfig,
    shared: &Mutex<Explore>,
    work_cv: &Condvar,
    shard: usize,
    parent_span: u64,
) -> ShardResult {
    // The shard's span parents under the build span on the spawning
    // thread; recording stays in this thread's private buffer, so
    // shards never synchronize through the tracer.
    let _span = satpg_trace::Span::enter_with_parent(
        "cssg.shard",
        parent_span,
        vec![("shard", satpg_trace::ArgValue::from(shard))],
    );
    // Each shard runs its own settling engine: the interleaving-set
    // tracking (and the POR bookkeeping) is thread-private, so the
    // expensive analyses never contend on the exploration lock.
    let mut settler = Settler::new(ckt, &Injection::none(), scfg);
    let budget = cfg.pattern_budget.unwrap_or(u64::MAX);
    let mut local = ShardResult::default();
    // A worker usually deals consecutive patterns of the same state (a
    // cursor drains front-of-queue), so cache the last state and clone
    // under the lock only when the id changes.
    let mut cached: Option<(u32, Bits)> = None;
    loop {
        // Pop the next pair (or conclude the exploration is complete:
        // queue empty and nobody mid-analysis).
        let (si, pattern) = {
            let mut ex = shared.lock().expect("exploration lock");
            loop {
                if ex.overflow {
                    local.settle = settler.take_stats();
                    return local;
                }
                if let Some((si, pattern)) = ex.next_pair(budget) {
                    ex.active += 1;
                    if cached.as_ref().map(|c| c.0) != Some(si) {
                        cached = Some((si, ex.states[si as usize].clone()));
                    }
                    break (si, pattern);
                }
                if ex.active == 0 {
                    work_cv.notify_all();
                    local.settle = settler.take_stats();
                    return local;
                }
                ex = work_cv.wait(ex).expect("exploration lock");
            }
        };
        let state = &cached.as_ref().expect("state cached at pop").1;

        // The expensive part — the settling analysis, with this thread's
        // private interleaving-set tracking — runs unlocked.
        let verdict = settler.settle(state, &pattern);

        let mut ex = shared.lock().expect("exploration lock");
        match verdict {
            Settle::Confluent(next) => match ex.intern(ckt, next, cfg.max_states) {
                Some(ni) => {
                    local.edges.push((si, pattern, ni));
                    // A new state enqueues a burst of pairs; wake every
                    // idle shard, not just one.
                    work_cv.notify_all();
                }
                None => {
                    work_cv.notify_all();
                    local.settle = settler.take_stats();
                    return local;
                }
            },
            Settle::NonConfluent(_) => local.nonconfluent += 1,
            Settle::Unstable(_) => local.unstable += 1,
            // The interleaving set blew its cap: the pair is dropped
            // without a verdict — a truncation, not a proof.
            Settle::Truncated => local.truncated += 1,
        }
        ex.active -= 1;
        if ex.active == 0 {
            // Wake everyone: either the exploration is done (waiters see
            // an empty queue — possibly after retiring a cursor this
            // worker exhausted — and exit) or a cursor remains and they
            // resume dealing from it.
            work_cv.notify_all();
        }
    }
}

/// Deterministic merge: collect per-state edge lists, replay the serial
/// traversal to renumber, and assemble the final [`Cssg`].
fn merge_shards(
    ckt: &Circuit,
    scfg: &SettlerConfig,
    cfg: &CssgConfig,
    explore: Explore,
    results: &[ShardResult],
) -> Result<Cssg> {
    let n = explore.states.len();
    let mut edges_of: Vec<Vec<(Pattern, u32)>> = vec![Vec::new(); n];
    for r in results {
        for (from, pattern, to) in &r.edges {
            edges_of[*from as usize].push((pattern.clone(), *to));
        }
    }
    // Each state is analysed by exactly one worker, which pushes its
    // edges in ascending pattern order — but sort anyway so the replay
    // below never depends on that invariant.
    for e in &mut edges_of {
        e.sort_unstable();
    }

    // Replay the serial builder's numbering: depth-first stack, new
    // successors interned in ascending pattern order.
    let unassigned = u32::MAX;
    let mut new_of = vec![unassigned; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    new_of[0] = 0;
    order.push(0);
    let mut stack = vec![0u32];
    while let Some(o) = stack.pop() {
        for (_, t) in &edges_of[o as usize] {
            let t = *t;
            if new_of[t as usize] == unassigned {
                new_of[t as usize] = order.len() as u32;
                order.push(t);
                stack.push(t);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "every explored state is reachable");

    let mut cssg = Cssg::new(ckt.num_inputs(), scfg.k);
    for &old in &order {
        cssg.intern(explore.states[old as usize].clone());
    }
    for (old, edges) in edges_of.iter().enumerate() {
        let from = new_of[old] as usize;
        for (pattern, to) in edges {
            cssg.add_edge(from, pattern, new_of[*to as usize] as usize);
        }
    }
    for r in results {
        cssg.note_nonconfluent_n(r.nonconfluent);
        cssg.note_unstable_n(r.unstable);
        cssg.note_truncated_n(r.truncated);
        cssg.note_settle_stats(&r.settle);
    }
    let skip = skipped_per_state(ckt.num_inputs(), cfg.pattern_budget);
    cssg.note_patterns_skipped(skip.saturating_mul(cssg.num_states() as u64));
    cssg.sort_edges();
    note_build_metrics(&cssg, cssg.settle_stats());
    Ok(cssg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satpg_netlist::library;

    #[test]
    fn c_element_cssg_is_complete() {
        let ckt = library::c_element();
        let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        // Stable states: y=0 with any inputs not both 1; y=1 with any
        // inputs not both 0 — 3 + 3 = 6... but only those reachable from
        // reset (A=B=y=0).
        assert!(g.num_states() >= 4, "got {}", g.num_states());
        // From reset every pattern change is confluent: raising one or
        // both inputs of a low C-element cannot race.
        assert_eq!(g.edges(0).len(), 3);
        // But elsewhere simultaneous opposite input changes race against
        // the held state (e.g. AB: 10 → 01 with y=1), so pruning happens.
        assert!(g.pruned_nonconfluent() > 0);
    }

    #[test]
    fn figure1a_prunes_racy_pattern() {
        let ckt = library::figure1a();
        let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        // From the reset state (A=0, B=1) the pattern AB=10 races; it must
        // be pruned while other patterns stay.
        let reset = g.initial();
        assert!(g.successor(reset, 0b01).is_none(), "racing vector pruned");
        assert!(g.pruned_nonconfluent() > 0);
    }

    #[test]
    fn figure1b_prunes_oscillating_pattern() {
        let ckt = library::figure1b();
        let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let reset = g.initial();
        // Raising A (pattern bit 0) oscillates.
        assert!(g.successor(reset, 0b01).is_none());
        assert!(g.successor(reset, 0b11).is_none());
        assert!(g.pruned_unstable() > 0);
        // Raising B alone is harmless.
        assert!(g.successor(reset, 0b10).is_some());
    }

    #[test]
    fn edges_form_closed_graph() {
        for ckt in library::all() {
            let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
            for s in 0..g.num_states() {
                assert!(ckt.is_stable(&g.states()[s]), "{}: state {s}", ckt.name());
                for (p, t) in g.edges(s) {
                    assert!(*t < g.num_states());
                    assert_eq!(
                        &ckt.input_pattern(&g.states()[*t]),
                        p,
                        "{}: successor holds the applied pattern",
                        ckt.name()
                    );
                }
            }
        }
    }

    #[test]
    fn unstable_reset_is_rejected() {
        use satpg_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("osc");
        let a = b.input("A", "a");
        let fb = b.signal("x");
        b.gate("y", GateKind::Nand, vec![a, fb]);
        let y = b.signal("y");
        b.gate("x", GateKind::Buf, vec![y]);
        b.init("A", true);
        b.init("a", true);
        b.init("y", true);
        // x=0 but buf(y)=1: excited at reset.
        let ckt = b.finish();
        // The builder itself rejects unstable initial states, so this
        // construction cannot even produce a circuit — which is the same
        // guarantee CssgConfig relies on.
        assert!(ckt.is_err());
    }

    #[test]
    fn self_pattern_is_skipped() {
        let ckt = library::c_element();
        let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        for s in 0..g.num_states() {
            let cur = ckt.input_pattern(&g.states()[s]);
            assert!(g.successor(s, cur).is_none(), "no self-pattern edges");
        }
    }

    /// Field-by-field bit identity of two CSSGs (states in order, edge
    /// lists in order, every counter).
    fn assert_identical(a: &Cssg, b: &Cssg, ctx: &str) {
        assert_eq!(a.k(), b.k(), "{ctx}: k");
        assert_eq!(a.num_inputs(), b.num_inputs(), "{ctx}: inputs");
        assert_eq!(a.states(), b.states(), "{ctx}: state vector");
        for s in 0..a.num_states() {
            assert_eq!(a.edges(s), b.edges(s), "{ctx}: edges of state {s}");
        }
        assert_eq!(
            a.pruned_nonconfluent(),
            b.pruned_nonconfluent(),
            "{ctx}: non-confluent"
        );
        assert_eq!(a.pruned_unstable(), b.pruned_unstable(), "{ctx}: unstable");
        assert_eq!(
            a.pruned_truncated(),
            b.pruned_truncated(),
            "{ctx}: truncated"
        );
        assert_eq!(
            a.patterns_skipped(),
            b.patterns_skipped(),
            "{ctx}: patterns skipped"
        );
        // Work counters too: every pair is analysed exactly once by a
        // deterministic engine, so even the POR ledger matches.
        assert_eq!(a.settle_stats(), b.settle_stats(), "{ctx}: settle stats");
    }

    #[test]
    fn sharded_build_is_bit_identical_on_library() {
        for ckt in library::all() {
            let serial = build_cssg(&ckt, &CssgConfig::default()).unwrap();
            for shards in 1..=4 {
                let sharded = build_cssg_sharded(&ckt, &CssgConfig::default(), shards).unwrap();
                assert_identical(
                    &serial,
                    &sharded,
                    &format!("{} @ {shards} shards", ckt.name()),
                );
            }
        }
    }

    #[test]
    fn sharded_build_matches_under_exact_semantics() {
        // The exact (no ternary fast path) semantics exercises the
        // interleaving-set tracking on every pattern.
        let cfg = CssgConfig {
            ternary_fast_path: false,
            ..CssgConfig::default()
        };
        let ckt = library::muller_pipeline2();
        let serial = build_cssg(&ckt, &cfg).unwrap();
        let sharded = build_cssg_sharded(&ckt, &cfg, 3).unwrap();
        assert_identical(&serial, &sharded, "muller_pipeline2 exact");
    }

    #[test]
    fn sharded_build_reports_overflow_like_serial() {
        let ckt = library::muller_pipeline2();
        let cfg = CssgConfig {
            max_states: 2,
            ..CssgConfig::default()
        };
        assert!(matches!(
            build_cssg(&ckt, &cfg),
            Err(CoreError::CssgOverflow(2))
        ));
        for shards in [1, 4] {
            assert!(
                matches!(
                    build_cssg_sharded(&ckt, &cfg, shards),
                    Err(CoreError::CssgOverflow(2))
                ),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn small_k_prunes_slow_settles() {
        let ckt = library::muller_pipeline2();
        let strict = CssgConfig {
            k: Some(2),
            ternary_fast_path: false,
            ..CssgConfig::default()
        };
        let loose = CssgConfig::default();
        let gs = build_cssg(&ckt, &strict).unwrap();
        let gl = build_cssg(&ckt, &loose).unwrap();
        assert!(gs.num_edges() < gl.num_edges(), "k gates the edge set");
    }
}
