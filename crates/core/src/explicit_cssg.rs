//! Explicit CSSG construction: enumerate stable states and validate every
//! input pattern with the k-bounded settling analysis.

use crate::cssg::Cssg;
use crate::error::CoreError;
use crate::Result;
use satpg_netlist::Circuit;
use satpg_sim::{settle_explicit, ExplicitConfig, Injection, Settle};

/// Configuration for [`build_cssg`].
#[derive(Clone, Copy, Debug)]
pub struct CssgConfig {
    /// Transition bound `k`; `None` picks `4·gates + 4` (§4.1's test-cycle
    /// estimation with a generous constant).
    pub k: Option<usize>,
    /// Cap on the number of CSSG stable states.
    pub max_states: usize,
    /// Cap on the interleaving set tracked per settling analysis.
    pub max_settle_states: usize,
    /// Accept ternary-definite settles without the exhaustive analysis.
    pub ternary_fast_path: bool,
}

impl Default for CssgConfig {
    fn default() -> Self {
        CssgConfig {
            k: None,
            max_states: 1 << 14,
            max_settle_states: 1 << 15,
            ternary_fast_path: true,
        }
    }
}

impl CssgConfig {
    fn explicit(&self, ckt: &Circuit) -> ExplicitConfig {
        ExplicitConfig {
            k: self.k.unwrap_or(4 * ckt.num_gates() + 4),
            max_states: self.max_settle_states,
            ternary_fast_path: self.ternary_fast_path,
        }
    }
}

/// Builds the CSSG of `ckt` from its reset state by forward exploration:
/// every input pattern is tried in every discovered stable state, and
/// kept only when the settling analysis proves confluence within `k`
/// transitions.
///
/// Patterns equal to the state's current inputs are skipped (the paper's
/// `R_I` requires at least one input to change).
///
/// # Errors
///
/// [`CoreError::NoStableReset`] if the reset state is unstable,
/// [`CoreError::TooManyInputs`] for more than 63 inputs, or
/// [`CoreError::CssgOverflow`] when the state budget is exceeded.
pub fn build_cssg(ckt: &Circuit, cfg: &CssgConfig) -> Result<Cssg> {
    if ckt.num_inputs() > 63 {
        return Err(CoreError::TooManyInputs(ckt.num_inputs()));
    }
    if ckt.outputs().len() > 64 {
        return Err(CoreError::TooManyOutputs(ckt.outputs().len()));
    }
    if !ckt.is_stable(ckt.initial_state()) {
        return Err(CoreError::NoStableReset);
    }
    let ecfg = cfg.explicit(ckt);
    let mut cssg = Cssg::new(ckt.num_inputs(), ecfg.k);
    let root = cssg.intern(ckt.initial_state().clone());
    let mut work = vec![root];
    let inj = Injection::none();
    let npatterns = 1u64 << ckt.num_inputs();
    while let Some(si) = work.pop() {
        let state = cssg.states()[si].clone();
        let current = ckt.input_pattern(&state);
        for pattern in 0..npatterns {
            if pattern == current {
                continue;
            }
            match settle_explicit(ckt, &state, pattern, &inj, &ecfg) {
                Settle::Confluent(next) => {
                    let known = cssg.state_index(&next).is_some();
                    let ni = cssg.intern(next);
                    if cssg.num_states() > cfg.max_states {
                        return Err(CoreError::CssgOverflow(cfg.max_states));
                    }
                    cssg.add_edge(si, pattern, ni);
                    if !known {
                        work.push(ni);
                    }
                }
                Settle::NonConfluent(_) => cssg.note_nonconfluent(),
                Settle::Unstable(_) => cssg.note_unstable(),
                // The interleaving set blew its cap: the pair is dropped
                // without a verdict — a truncation, not a proof.
                Settle::Overflow => cssg.note_truncated(),
            }
        }
    }
    cssg.sort_edges();
    Ok(cssg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satpg_netlist::library;

    #[test]
    fn c_element_cssg_is_complete() {
        let ckt = library::c_element();
        let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        // Stable states: y=0 with any inputs not both 1; y=1 with any
        // inputs not both 0 — 3 + 3 = 6... but only those reachable from
        // reset (A=B=y=0).
        assert!(g.num_states() >= 4, "got {}", g.num_states());
        // From reset every pattern change is confluent: raising one or
        // both inputs of a low C-element cannot race.
        assert_eq!(g.edges(0).len(), 3);
        // But elsewhere simultaneous opposite input changes race against
        // the held state (e.g. AB: 10 → 01 with y=1), so pruning happens.
        assert!(g.pruned_nonconfluent() > 0);
    }

    #[test]
    fn figure1a_prunes_racy_pattern() {
        let ckt = library::figure1a();
        let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        // From the reset state (A=0, B=1) the pattern AB=10 races; it must
        // be pruned while other patterns stay.
        let reset = g.initial();
        assert!(g.successor(reset, 0b01).is_none(), "racing vector pruned");
        assert!(g.pruned_nonconfluent() > 0);
    }

    #[test]
    fn figure1b_prunes_oscillating_pattern() {
        let ckt = library::figure1b();
        let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let reset = g.initial();
        // Raising A (pattern bit 0) oscillates.
        assert!(g.successor(reset, 0b01).is_none());
        assert!(g.successor(reset, 0b11).is_none());
        assert!(g.pruned_unstable() > 0);
        // Raising B alone is harmless.
        assert!(g.successor(reset, 0b10).is_some());
    }

    #[test]
    fn edges_form_closed_graph() {
        for ckt in library::all() {
            let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
            for s in 0..g.num_states() {
                assert!(ckt.is_stable(&g.states()[s]), "{}: state {s}", ckt.name());
                for &(p, t) in g.edges(s) {
                    assert!(t < g.num_states());
                    assert_eq!(
                        ckt.input_pattern(&g.states()[t]),
                        p,
                        "{}: successor holds the applied pattern",
                        ckt.name()
                    );
                }
            }
        }
    }

    #[test]
    fn unstable_reset_is_rejected() {
        use satpg_netlist::{CircuitBuilder, GateKind};
        let mut b = CircuitBuilder::new("osc");
        let a = b.input("A", "a");
        let fb = b.signal("x");
        b.gate("y", GateKind::Nand, vec![a, fb]);
        let y = b.signal("y");
        b.gate("x", GateKind::Buf, vec![y]);
        b.init("A", true);
        b.init("a", true);
        b.init("y", true);
        // x=0 but buf(y)=1: excited at reset.
        let ckt = b.finish();
        // The builder itself rejects unstable initial states, so this
        // construction cannot even produce a circuit — which is the same
        // guarantee CssgConfig relies on.
        assert!(ckt.is_err());
    }

    #[test]
    fn self_pattern_is_skipped() {
        let ckt = library::c_element();
        let g = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        for s in 0..g.num_states() {
            let cur = ckt.input_pattern(&g.states()[s]);
            assert!(g.successor(s, cur).is_none(), "no self-pattern edges");
        }
    }

    #[test]
    fn small_k_prunes_slow_settles() {
        let ckt = library::muller_pipeline2();
        let strict = CssgConfig {
            k: Some(2),
            ternary_fast_path: false,
            ..CssgConfig::default()
        };
        let loose = CssgConfig::default();
        let gs = build_cssg(&ckt, &strict).unwrap();
        let gl = build_cssg(&ckt, &loose).unwrap();
        assert!(gs.num_edges() < gl.num_edges(), "k gates the edge set");
    }
}
