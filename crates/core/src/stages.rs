//! The ATPG flow decomposed into resumable stages.
//!
//! [`run_atpg`](crate::run_atpg) drives the full pipeline in one call,
//! but each step is exposed here so orchestration layers (notably the
//! fault-parallel `satpg-engine` crate) can run the same computation with
//! injectable pieces:
//!
//! * [`FaultPlan`] — the deterministic collapsing of a fault list into
//!   target classes (shared between serial and parallel drivers);
//! * [`random_stage`] — random TPG over the open classes;
//! * [`targeted_stage`] — the three-phase + fault-simulation loop over an
//!   explicit **fault queue**, with the three-phase search itself
//!   injected as an oracle callback (a parallel driver substitutes
//!   precomputed verdicts, falling back to the real search on a miss);
//! * [`assemble_report`] — per-fault record materialization.
//!
//! Because every stage is a pure function of its inputs plus the
//! [`StageState`] it advances, a serial run and any replay of the same
//! stages produce identical reports — the invariant the parallel engine's
//! deterministic merge is built on.

use crate::atpg::{AtpgReport, Phase};
use crate::cssg::{Cssg, TestSequence};
use crate::fault::{collapse_faults, Fault, FaultClass};
use crate::fsim::fault_simulate;
use crate::random_tpg::{random_tpg, RandomStats, RandomTpgConfig};
use crate::three_phase::FaultStatus;
use satpg_netlist::Circuit;
use std::collections::HashMap;

/// The deterministic targeting plan: fault classes plus the map from each
/// enumerated fault back to its class.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    classes: Vec<FaultClass>,
    class_of: HashMap<Fault, usize>,
}

impl FaultPlan {
    /// Builds the plan.  With `collapse` off every fault is its own
    /// class; with it on, structurally equivalent faults share one.
    pub fn new(ckt: &Circuit, faults: &[Fault], collapse: bool) -> Self {
        let classes = if collapse {
            collapse_faults(ckt, faults)
        } else {
            faults
                .iter()
                .map(|&f| FaultClass {
                    representative: f,
                    members: vec![f],
                })
                .collect()
        };
        let mut class_of = HashMap::new();
        for (ci, c) in classes.iter().enumerate() {
            for &m in &c.members {
                class_of.insert(m, ci);
            }
        }
        FaultPlan { classes, class_of }
    }

    /// The target classes, in deterministic order.
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class index of an enumerated fault.
    ///
    /// # Panics
    ///
    /// Panics if `f` was not part of the planned fault list.
    pub fn class_of(&self, f: &Fault) -> usize {
        self.class_of[f]
    }
}

/// Verdict of one fault class as the stages advance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ClassVerdict {
    /// Not yet resolved.
    #[default]
    Open,
    /// Detected by `phase`, exposed by `StageState::tests[test]`.
    Detected {
        /// The attributed flow phase.
        phase: Phase,
        /// Index into [`StageState::tests`].
        test: usize,
    },
    /// Proved untestable.
    Untestable,
    /// Resource limits hit.
    Aborted,
}

/// The resumable accumulator threaded through the stages.
#[derive(Clone, Debug, Default)]
pub struct StageState {
    /// Per-class verdicts, indexed like [`FaultPlan::classes`].
    pub verdicts: Vec<ClassVerdict>,
    /// The deduplicated test set, in discovery order.
    pub tests: Vec<TestSequence>,
    /// Lane-throughput counters of the random stage (zeros when the
    /// stage was skipped).  Deterministic given the stage config, so
    /// serial and parallel drivers that run the same random stage report
    /// identical numbers.
    pub random: RandomStats,
}

impl StageState {
    /// A fresh state with every class open.
    pub fn new(num_classes: usize) -> Self {
        StageState {
            verdicts: vec![ClassVerdict::Open; num_classes],
            tests: Vec::new(),
            random: RandomStats::default(),
        }
    }

    /// Interns a test sequence, returning its stable index.
    pub fn intern_test(&mut self, seq: TestSequence) -> usize {
        match self.tests.iter().position(|t| *t == seq) {
            Some(i) => i,
            None => {
                self.tests.push(seq);
                self.tests.len() - 1
            }
        }
    }

    /// Indices of the classes still open, ascending.
    pub fn open_classes(&self) -> Vec<usize> {
        (0..self.verdicts.len())
            .filter(|&ci| self.verdicts[ci] == ClassVerdict::Open)
            .collect()
    }
}

/// Stage 1: random TPG over the class representatives.  Classes whose
/// representative is detected get a [`Phase::Random`] verdict.
pub fn random_stage(
    ckt: &Circuit,
    cssg: &Cssg,
    plan: &FaultPlan,
    cfg: &RandomTpgConfig,
    state: &mut StageState,
) {
    let reps: Vec<Fault> = plan.classes.iter().map(|c| c.representative).collect();
    let res = random_tpg(ckt, cssg, &reps, cfg);
    state.random = res.stats();
    for (ci, seq) in res.detected {
        if state.verdicts[ci] == ClassVerdict::Open {
            let ti = state.intern_test(seq);
            state.verdicts[ci] = ClassVerdict::Detected {
                phase: Phase::Random,
                test: ti,
            };
        }
    }
}

/// Stage 2: the targeted loop.  Walks `queue` (class indices); for each
/// class still open it asks `oracle` for the three-phase verdict, and on
/// detection optionally fault-simulates the new test against every other
/// open class (harvesting [`Phase::FaultSim`] credits).
///
/// The serial driver passes `0..plan.len()` as the queue and the real
/// [`three_phase`](crate::three_phase) as the oracle; a parallel driver
/// may substitute any precomputed, order-independent verdict source.
/// Given the same queue and an oracle that is a pure function of the
/// class, the resulting state is identical regardless of where the
/// verdicts were computed.
pub fn targeted_stage(
    ckt: &Circuit,
    cssg: &Cssg,
    plan: &FaultPlan,
    fault_sim: bool,
    queue: &[usize],
    state: &mut StageState,
    oracle: &mut dyn FnMut(usize, &Fault) -> FaultStatus,
) {
    for &ci in queue {
        if state.verdicts[ci] != ClassVerdict::Open {
            continue;
        }
        match oracle(ci, &plan.classes[ci].representative) {
            FaultStatus::Detected { sequence } => {
                let ti = state.intern_test(sequence.clone());
                state.verdicts[ci] = ClassVerdict::Detected {
                    phase: Phase::ThreePhase,
                    test: ti,
                };
                if fault_sim {
                    let open = state.open_classes();
                    let open_faults: Vec<Fault> = open
                        .iter()
                        .map(|&cj| plan.classes[cj].representative)
                        .collect();
                    for hit in fault_simulate(ckt, cssg, &sequence, &open_faults) {
                        state.verdicts[open[hit]] = ClassVerdict::Detected {
                            phase: Phase::FaultSim,
                            test: ti,
                        };
                    }
                }
            }
            FaultStatus::Untestable(_) => state.verdicts[ci] = ClassVerdict::Untestable,
            FaultStatus::Aborted => state.verdicts[ci] = ClassVerdict::Aborted,
        }
    }
}

/// Wall-clock attribution carried into the report.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Microseconds: CSSG construction.
    pub us_cssg: u128,
    /// Microseconds: random TPG.
    pub us_random: u128,
    /// Microseconds: targeted search + fault simulation.
    pub us_three_phase: u128,
}

/// Final stage: materializes per-fault records from the class verdicts.
pub fn assemble_report(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    plan: &FaultPlan,
    state: StageState,
    timings: StageTimings,
) -> AtpgReport {
    let records = faults
        .iter()
        .map(|f| {
            let ci = plan.class_of(f);
            match state.verdicts[ci] {
                ClassVerdict::Detected { phase, test } => crate::atpg::FaultRecord {
                    fault: *f,
                    detected_by: Some(phase),
                    test: Some(test),
                    untestable: false,
                    aborted: false,
                },
                ClassVerdict::Untestable => crate::atpg::FaultRecord {
                    fault: *f,
                    detected_by: None,
                    test: None,
                    untestable: true,
                    aborted: false,
                },
                ClassVerdict::Aborted => crate::atpg::FaultRecord {
                    fault: *f,
                    detected_by: None,
                    test: None,
                    untestable: false,
                    aborted: true,
                },
                ClassVerdict::Open => crate::atpg::FaultRecord {
                    fault: *f,
                    detected_by: None,
                    test: None,
                    untestable: false,
                    aborted: false,
                },
            }
        })
        .collect();

    AtpgReport {
        circuit: ckt.name().to_string(),
        cssg_states: cssg.num_states(),
        cssg_edges: cssg.num_edges(),
        cssg_pruned_nonconfluent: cssg.pruned_nonconfluent(),
        cssg_pruned_unstable: cssg.pruned_unstable(),
        cssg_truncated: cssg.pruned_truncated(),
        cssg_settle_states: cssg.settle_stats().states_explored,
        cssg_por_pruned: cssg.settle_stats().por_pruned,
        cssg_patterns_skipped: cssg.patterns_skipped(),
        random_passes: state.random.passes,
        random_patterns: state.random.patterns_evaluated,
        random_vectors: state.random.vectors_applied,
        records,
        tests: state.tests,
        us_cssg: timings.us_cssg,
        us_random: timings.us_random,
        us_three_phase: timings.us_three_phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit_cssg::{build_cssg, CssgConfig};
    use crate::fault::input_stuck_faults;
    use crate::three_phase::{three_phase, ThreePhaseConfig};
    use satpg_netlist::library;

    #[test]
    fn stages_reproduce_run_atpg() {
        for ckt in [library::c_element(), library::muller_pipeline2()] {
            let cfg = crate::AtpgConfig::paper();
            let direct = crate::run_atpg(&ckt, &cfg).unwrap();

            let cssg = build_cssg(&ckt, &cfg.cssg).unwrap();
            let faults = input_stuck_faults(&ckt);
            let plan = FaultPlan::new(&ckt, &faults, cfg.collapse);
            let mut state = StageState::new(plan.len());
            random_stage(&ckt, &cssg, &plan, &cfg.random.unwrap(), &mut state);
            let queue: Vec<usize> = (0..plan.len()).collect();
            targeted_stage(
                &ckt,
                &cssg,
                &plan,
                cfg.fault_sim,
                &queue,
                &mut state,
                &mut |_, f| three_phase(&ckt, &cssg, f, &cfg.three_phase),
            );
            let staged =
                assemble_report(&ckt, &cssg, &faults, &plan, state, StageTimings::default());

            assert_eq!(direct.records, staged.records, "{}", ckt.name());
            assert_eq!(direct.tests, staged.tests, "{}", ckt.name());
        }
    }

    #[test]
    fn queue_order_with_pure_oracle_is_order_independent_on_outcome_source() {
        // Precomputing every verdict up front, then replaying in serial
        // order, must equal computing lazily — the engine's merge model.
        let ckt = library::muller_pipeline2();
        let cfg = ThreePhaseConfig::default();
        let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
        let faults = input_stuck_faults(&ckt);
        let plan = FaultPlan::new(&ckt, &faults, false);
        let queue: Vec<usize> = (0..plan.len()).collect();

        let mut lazy = StageState::new(plan.len());
        targeted_stage(&ckt, &cssg, &plan, true, &queue, &mut lazy, &mut |_, f| {
            three_phase(&ckt, &cssg, f, &cfg)
        });

        let precomputed: Vec<FaultStatus> = plan
            .classes()
            .iter()
            .map(|c| three_phase(&ckt, &cssg, &c.representative, &cfg))
            .collect();
        let mut replay = StageState::new(plan.len());
        targeted_stage(
            &ckt,
            &cssg,
            &plan,
            true,
            &queue,
            &mut replay,
            &mut |ci, _| precomputed[ci].clone(),
        );

        assert_eq!(lazy.verdicts, replay.verdicts);
        assert_eq!(lazy.tests, replay.tests);
    }

    #[test]
    fn fault_plan_collapsing_partitions() {
        let ckt = library::c_element();
        let faults = input_stuck_faults(&ckt);
        let collapsed = FaultPlan::new(&ckt, &faults, true);
        let plain = FaultPlan::new(&ckt, &faults, false);
        assert_eq!(plain.len(), faults.len());
        assert!(collapsed.len() <= plain.len());
        for f in &faults {
            assert!(collapsed.class_of(f) < collapsed.len());
        }
        let member_total: usize = collapsed.classes().iter().map(|c| c.members.len()).sum();
        assert_eq!(member_total, faults.len());
    }
}
