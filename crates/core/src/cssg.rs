//! The Confluent Stable State Graph: the synchronous FSM abstraction.

use satpg_netlist::{Bits, Circuit, IntoPattern, Pattern};
use satpg_sim::SettleStats;
use std::collections::HashMap;

/// A sequence of input patterns applied from the reset state, one per
/// test cycle.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TestSequence {
    /// The input patterns, in application order (bit `i` drives primary
    /// input `i`).
    pub patterns: Vec<Pattern>,
}

impl TestSequence {
    /// Builds a sequence of `num_inputs`-bit patterns from plain words
    /// (the pre-multi-word construction shape, kept for tests and small
    /// circuits).
    pub fn from_u64(num_inputs: usize, patterns: &[u64]) -> Self {
        TestSequence {
            patterns: patterns
                .iter()
                .map(|&p| Pattern::from_u64(num_inputs, p))
                .collect(),
        }
    }

    /// The number of test cycles.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// The k-step Confluent Stable State Graph (CSSG) of §4 of the paper.
///
/// Nodes are stable states reachable in test mode from the reset state;
/// an edge `(s, v) → s'` exists iff applying input pattern `v` to `s`
/// settles *every* interleaving of gate switchings to the single stable
/// state `s'` within `k` transitions.  The result is a deterministic
/// synchronous FSM on which standard sequential ATPG techniques operate.
#[derive(Clone, Debug)]
pub struct Cssg {
    num_inputs: usize,
    k: usize,
    states: Vec<Bits>,
    index: HashMap<Bits, usize>,
    /// Per state: `(pattern, successor)`, sorted by pattern.
    edges: Vec<Vec<(Pattern, usize)>>,
    /// Number of (state, pattern) pairs pruned for non-confluence.
    pruned_nonconfluent: usize,
    /// Number pruned for oscillation / settling past `k`.
    pruned_unstable: usize,
    /// Number of (state, pattern) pairs dropped because a *resource*
    /// limit truncated their analysis rather than a semantic verdict:
    /// the explicit builder's interleaving-set cap, or a symbolic TCR
    /// iteration that ran out of depth before reaching its fixpoint.
    /// A non-zero count means "untestable" verdicts downstream may be
    /// truncation artifacts, not real redundancy.
    pruned_truncated: usize,
    /// Number of (state, pattern) pairs never *tried* because the
    /// per-state pattern budget ran out (only possible when
    /// `CssgConfig::pattern_budget` caps enumeration).  Saturating.
    /// A non-zero count means the graph under-approximates the true
    /// CSSG: downstream "untestable" verdicts may be budget artifacts.
    patterns_skipped: u64,
    /// Aggregated settling-engine counters of the construction: state
    /// expansions performed, and how much the partial-order reduction
    /// saved.  Diagnostics only — excluded from bit-identity comparisons
    /// between differently-configured builds.
    settle_stats: SettleStats,
}

impl Cssg {
    pub(crate) fn new(num_inputs: usize, k: usize) -> Self {
        Cssg {
            num_inputs,
            k,
            states: Vec::new(),
            index: HashMap::new(),
            edges: Vec::new(),
            pruned_nonconfluent: 0,
            pruned_unstable: 0,
            pruned_truncated: 0,
            patterns_skipped: 0,
            settle_stats: SettleStats::default(),
        }
    }

    pub(crate) fn intern(&mut self, state: Bits) -> usize {
        match self.index.get(&state) {
            Some(&i) => i,
            None => {
                let i = self.states.len();
                self.index.insert(state.clone(), i);
                self.states.push(state);
                self.edges.push(Vec::new());
                i
            }
        }
    }

    pub(crate) fn add_edge(&mut self, from: usize, pattern: impl IntoPattern, to: usize) {
        let p = pattern.into_pattern(self.num_inputs);
        self.edges[from].push((p, to));
    }

    pub(crate) fn sort_edges(&mut self) {
        for e in &mut self.edges {
            e.sort_unstable();
            e.dedup();
        }
    }

    pub(crate) fn note_nonconfluent(&mut self) {
        self.pruned_nonconfluent += 1;
    }

    pub(crate) fn note_unstable(&mut self) {
        self.pruned_unstable += 1;
    }

    pub(crate) fn note_truncated(&mut self) {
        self.pruned_truncated += 1;
    }

    pub(crate) fn note_unstable_n(&mut self, n: usize) {
        self.pruned_unstable += n;
    }

    pub(crate) fn note_nonconfluent_n(&mut self, n: usize) {
        self.pruned_nonconfluent += n;
    }

    pub(crate) fn note_truncated_n(&mut self, n: usize) {
        self.pruned_truncated += n;
    }

    pub(crate) fn note_patterns_skipped(&mut self, n: u64) {
        self.patterns_skipped = self.patterns_skipped.saturating_add(n);
    }

    pub(crate) fn note_settle_stats(&mut self, stats: &SettleStats) {
        self.settle_stats.absorb(stats);
    }

    /// The transition bound `k` used during construction.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of primary inputs of the underlying circuit.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The stable states; index 0 is the reset state.
    pub fn states(&self) -> &[Bits] {
        &self.states
    }

    /// Number of stable states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of valid (state, pattern) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Outgoing edges of state `i`, sorted by pattern.
    pub fn edges(&self, i: usize) -> &[(Pattern, usize)] {
        &self.edges[i]
    }

    /// The reset state index (always 0).
    pub fn initial(&self) -> usize {
        0
    }

    /// The successor of state `i` under `pattern`, if the pattern is
    /// valid there.
    pub fn successor(&self, i: usize, pattern: impl IntoPattern) -> Option<usize> {
        let pattern = pattern.into_pattern(self.num_inputs);
        self.edges[i]
            .binary_search_by(|(p, _)| p.cmp(&pattern))
            .ok()
            .map(|pos| self.edges[i][pos].1)
    }

    /// Index of a stable state, if present.
    pub fn state_index(&self, state: &Bits) -> Option<usize> {
        self.index.get(state).copied()
    }

    /// How many (state, pattern) pairs were pruned as non-confluent.
    pub fn pruned_nonconfluent(&self) -> usize {
        self.pruned_nonconfluent
    }

    /// How many (state, pattern) pairs were pruned as unstable within `k`.
    pub fn pruned_unstable(&self) -> usize {
        self.pruned_unstable
    }

    /// How many (state, pattern) pairs were dropped at a resource limit
    /// (interleaving-set cap or TCR depth exhaustion) rather than by a
    /// semantic verdict.  The truncation diagnostic for the "coverage
    /// collapse: truncation vs real redundancy" question.
    pub fn pruned_truncated(&self) -> usize {
        self.pruned_truncated
    }

    /// How many (state, pattern) pairs were never analyzed because the
    /// construction's pattern budget ran out (saturating; zero for
    /// exhaustive builds).
    pub fn patterns_skipped(&self) -> u64 {
        self.patterns_skipped
    }

    /// Settling-engine counters of the construction: how many state
    /// expansions the interleaving analyses performed, how many
    /// expansions the partial-order reduction collapsed
    /// (`settle_stats().por_states`) and how many successor branches it
    /// pruned (`settle_stats().por_pruned`).
    ///
    /// Deterministic for a given configuration (and identical between
    /// the serial and sharded builders), but *not* part of the graph's
    /// bit identity across configurations: a POR build and a naive build
    /// of the same circuit have identical states/edges/pruning counters
    /// yet different work counters — that difference is the point.
    pub fn settle_stats(&self) -> &SettleStats {
        &self.settle_stats
    }

    /// Replays a test sequence on the good machine, returning the state
    /// index after each cycle, or `None` at the first invalid pattern.
    pub fn replay(&self, seq: &TestSequence) -> Option<Vec<usize>> {
        let mut cur = self.initial();
        let mut out = Vec::with_capacity(seq.len());
        for p in &seq.patterns {
            cur = self.successor(cur, p)?;
            out.push(cur);
        }
        Some(out)
    }

    /// The shortest pattern sequence from `from` to any state in `goals`,
    /// by breadth-first search (the *state justification* primitive).
    pub fn justify(&self, from: usize, goals: &[bool]) -> Option<Vec<Pattern>> {
        if goals[from] {
            return Some(Vec::new());
        }
        let mut prev: Vec<Option<(usize, Pattern)>> = vec![None; self.states.len()];
        let mut seen = vec![false; self.states.len()];
        seen[from] = true;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(s) = queue.pop_front() {
            for (p, t) in &self.edges[s] {
                let t = *t;
                if !seen[t] {
                    seen[t] = true;
                    prev[t] = Some((s, p.clone()));
                    if goals[t] {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cur = t;
                        while let Some((ps, pp)) = &prev[cur] {
                            path.push(pp.clone());
                            cur = *ps;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(t);
                }
            }
        }
        None
    }

    /// Primary-output values of state `i` under `circuit`.
    pub fn outputs(&self, circuit: &Circuit, i: usize) -> u64 {
        circuit.output_values(&self.states[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cssg {
        // 0 --1--> 1 --0--> 2 ; 2 --3--> 0
        let mut g = Cssg::new(2, 8);
        let a = g.intern(Bits::from_str01("00").unwrap());
        let b = g.intern(Bits::from_str01("01").unwrap());
        let c = g.intern(Bits::from_str01("11").unwrap());
        g.add_edge(a, 1, b);
        g.add_edge(b, 0, c);
        g.add_edge(c, 3, a);
        g.sort_edges();
        g
    }

    #[test]
    fn intern_deduplicates() {
        let mut g = Cssg::new(1, 4);
        let s = Bits::from_str01("10").unwrap();
        assert_eq!(g.intern(s.clone()), 0);
        assert_eq!(g.intern(s), 0);
        assert_eq!(g.num_states(), 1);
    }

    #[test]
    fn successor_lookup() {
        let g = tiny();
        assert_eq!(g.successor(0, 1), Some(1));
        assert_eq!(g.successor(0, 2), None);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn replay_follows_edges() {
        let g = tiny();
        let seq = TestSequence::from_u64(2, &[1, 0, 3]);
        assert_eq!(g.replay(&seq), Some(vec![1, 2, 0]));
        let bad = TestSequence::from_u64(2, &[2]);
        assert_eq!(g.replay(&bad), None);
    }

    #[test]
    fn justify_finds_shortest_path() {
        let g = tiny();
        let mut goals = vec![false; 3];
        goals[2] = true;
        assert_eq!(g.justify(0, &goals).unwrap(), vec![1u64, 0]);
        goals[2] = false;
        goals[0] = true;
        assert_eq!(g.justify(0, &goals), Some(Vec::new()));
        let unreachable = vec![false; 3];
        assert_eq!(g.justify(0, &unreachable), None);
    }
}
