//! Per-worker fault deques with work stealing.
//!
//! Each worker owns the front of its deque; idle workers steal from the
//! *back* of a victim's deque, so an owner and a thief contend only when
//! one item is left.  Items are class indices — plain `usize`s — and are
//! never re-enqueued, so termination is simply "every deque is empty".
//! (Built on `std::sync::Mutex` because the workspace is dependency-free;
//! the deques are coarse-grained but the unit of work — a three-phase
//! search — dwarfs the lock cost.)

use std::collections::VecDeque;
use std::sync::Mutex;

/// The sharded queues of one engine run.
pub struct ShardedQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
}

/// Where a popped item came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Popped {
    /// From the worker's own deque.
    Own(usize),
    /// Stolen from `victim`'s deque.
    Stolen {
        /// The item.
        item: usize,
        /// The worker it was taken from.
        victim: usize,
    },
}

impl Popped {
    /// The class index regardless of provenance.
    pub fn item(self) -> usize {
        match self {
            Popped::Own(i) => i,
            Popped::Stolen { item, .. } => item,
        }
    }
}

impl ShardedQueues {
    /// Distributes `items` round-robin over `workers` deques.
    pub fn new(workers: usize, items: &[usize]) -> Self {
        assert!(workers > 0, "at least one worker");
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for (i, &item) in items.iter().enumerate() {
            queues[i % workers].push_back(item);
        }
        ShardedQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    pub fn num_workers(&self) -> usize {
        self.queues.len()
    }

    /// Pops the next item for `worker`: front of its own deque first,
    /// then the back of the fullest other deque.  `None` means every
    /// deque is empty and the worker can retire.
    pub fn pop(&self, worker: usize) -> Option<Popped> {
        if let Some(item) = self.queues[worker].lock().expect("queue lock").pop_front() {
            return Some(Popped::Own(item));
        }
        // Steal from the victim with the most pending work.
        let mut best: Option<(usize, usize)> = None; // (len, victim)
        for v in 0..self.queues.len() {
            if v == worker {
                continue;
            }
            let len = self.queues[v].lock().expect("queue lock").len();
            if len > 0 && best.map(|(l, _)| len > l).unwrap_or(true) {
                best = Some((len, v));
            }
        }
        let (_, victim) = best?;
        self.queues[victim]
            .lock()
            .expect("queue lock")
            .pop_back()
            .map(|item| Popped::Stolen { item, victim })
    }

    /// Removes every pending item that `drop_if` approves from `worker`'s
    /// own deque, returning how many were removed.  This is the broadcast
    /// path: a test found elsewhere screens this worker's backlog.
    pub fn drop_pending(&self, worker: usize, drop_if: impl Fn(&[usize]) -> Vec<usize>) -> usize {
        let mut q = self.queues[worker].lock().expect("queue lock");
        let snapshot: Vec<usize> = q.iter().copied().collect();
        if snapshot.is_empty() {
            return 0;
        }
        let doomed = drop_if(&snapshot);
        if doomed.is_empty() {
            return 0;
        }
        let before = q.len();
        q.retain(|item| !doomed.contains(item));
        before - q.len()
    }
}

/// Splits `pending` into at most `units` contiguous chunks of
/// near-equal size, preserving order.  This is the distribution shape a
/// fleet coordinator ships across daemons: contiguous runs keep each
/// remote shard's classes adjacent in serial order, so a broadcast from
/// class `ca` screens whole shards of later classes at once.  Purely a
/// function of its inputs — any two coordinators plan identical shards.
pub fn plan_shards(pending: &[usize], units: usize) -> Vec<Vec<usize>> {
    assert!(units > 0, "at least one shard");
    if pending.is_empty() {
        return Vec::new();
    }
    let units = units.min(pending.len());
    let base = pending.len() / units;
    let extra = pending.len() % units;
    let mut out = Vec::with_capacity(units);
    let mut at = 0usize;
    for i in 0..units {
        let take = base + usize::from(i < extra);
        out.push(pending[at..at + take].to_vec());
        at += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_robin_distribution() {
        let items: Vec<usize> = (0..10).collect();
        let q = ShardedQueues::new(3, &items);
        assert_eq!(q.num_workers(), 3);
        // Worker 0 gets 0,3,6,9; worker 1 gets 1,4,7; worker 2 gets 2,5,8.
        assert_eq!(q.pop(0), Some(Popped::Own(0)));
        assert_eq!(q.pop(1), Some(Popped::Own(1)));
        assert_eq!(q.pop(2), Some(Popped::Own(2)));
    }

    #[test]
    fn drains_every_item_exactly_once() {
        let items: Vec<usize> = (0..100).collect();
        let q = ShardedQueues::new(4, &items);
        let mut seen = HashSet::new();
        // Single consumer drains everything, stealing included.
        while let Some(p) = q.pop(2) {
            assert!(seen.insert(p.item()), "duplicate {}", p.item());
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn steals_from_fullest_victim() {
        let q = ShardedQueues::new(3, &[0, 1, 2, 4, 7]);
        // Deques: w0 = [0, 4], w1 = [1, 7], w2 = [2].
        assert_eq!(q.pop(2), Some(Popped::Own(2)));
        // w2 now empty; both victims have 2 items; the first maximal one
        // (w0) is chosen, stealing its back item.
        assert_eq!(q.pop(2), Some(Popped::Stolen { item: 4, victim: 0 }));
    }

    #[test]
    fn drop_pending_removes_only_approved() {
        let q = ShardedQueues::new(1, &[10, 11, 12, 13]);
        let removed = q.drop_pending(0, |pending| {
            pending.iter().copied().filter(|&i| i % 2 == 0).collect()
        });
        assert_eq!(removed, 2);
        let mut left = Vec::new();
        while let Some(p) = q.pop(0) {
            left.push(p.item());
        }
        assert_eq!(left, vec![11, 13]);
    }

    #[test]
    fn plan_shards_is_contiguous_and_complete() {
        let pending: Vec<usize> = (3..20).collect();
        for units in 1..=6 {
            let shards = plan_shards(&pending, units);
            assert!(shards.len() <= units);
            let flat: Vec<usize> = shards.iter().flatten().copied().collect();
            assert_eq!(flat, pending, "{units} units must cover in order");
            let (min, max) = shards
                .iter()
                .map(|s| s.len())
                .fold((usize::MAX, 0), |(lo, hi), l| (lo.min(l), hi.max(l)));
            assert!(max - min <= 1, "{units} units must balance");
        }
        assert!(plan_shards(&[], 4).is_empty());
        assert_eq!(plan_shards(&[7], 4), vec![vec![7]]);
    }

    #[test]
    fn concurrent_drain_is_exactly_once() {
        let items: Vec<usize> = (0..500).collect();
        let q = ShardedQueues::new(4, &items);
        let seen = Mutex::new(HashSet::new());
        let (q, seen_ref) = (&q, &seen);
        std::thread::scope(|s| {
            for w in 0..4 {
                s.spawn(move || {
                    while let Some(p) = q.pop(w) {
                        assert!(seen_ref.lock().unwrap().insert(p.item()));
                    }
                });
            }
        });
        assert_eq!(seen.into_inner().unwrap().len(), 500);
    }
}
