//! Symbolic audit of discovered tests.
//!
//! Every engine worker owns a private [`Manager`] holding a BDD encoding
//! of the CSSG transition relation `T(S, P, S')`: state index bits `S`,
//! input-pattern bits `P`, next-state bits `S'`.  When the worker's
//! three-phase search emits a test, the auditor replays it as a symbolic
//! image computation — `R' = ∃S,P. R ∧ P=p ∧ T`, renamed back into the
//! `S` frame — and checks the reached set stays non-empty and lands
//! exactly on the states the explicit replay reaches.
//!
//! This is a cross-representation check (explicit search vs. symbolic
//! relation) in the spirit of the paper's §4.2 equivalence of the
//! explicit and BDD-based CSSG constructions, and it exercises the
//! per-worker manager enough to make the reported BDD telemetry
//! (node/cache counts, bounded cache clears) meaningful.

use satpg_bdd::{Bdd, Manager};
use satpg_core::{Cssg, TestSequence};

/// Cap on a worker manager's operation cache before the bounded-clear
/// heuristic drops it (see [`Manager::clear_cache_if_above`]).
pub const CACHE_BOUND: usize = 1 << 20;

/// The per-worker symbolic auditor.
pub struct WalkAuditor {
    mgr: Manager,
    /// Bits per state index.
    sbits: u32,
    /// Pattern bits (primary inputs).
    pbits: u32,
    /// The transition relation over (S, P, S'), rooted for the
    /// auditor's lifetime.
    relation: Bdd,
    /// Cube of the initial state in the S frame, also rooted.
    initial: Bdd,
    /// How many times the cache bound was hit.
    pub cache_clears: usize,
}

fn bits_for(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros().min(usize::BITS - 1)
}

impl WalkAuditor {
    /// Builds the relation BDD from the shared CSSG with immortal nodes
    /// (no GC); see [`WalkAuditor::with_gc`] for the bounded-memory
    /// variant.
    ///
    /// Variable layout: `[0, sbits)` = current state `S`,
    /// `[sbits, sbits+pbits)` = pattern `P`, `[sbits+pbits, 2·sbits+pbits)`
    /// = next state `S'`.
    pub fn new(cssg: &Cssg) -> Self {
        Self::with_gc(cssg, None)
    }

    /// Builds the auditor under a GC policy: with `Some(t)`, the private
    /// manager sweeps unrooted nodes whenever more than `t` are live.
    /// The relation and initial-state cube are rooted here; `replay`
    /// roots the rolling reached set, so everything else — per-step
    /// pattern cubes, constrained sets, pre-rename images — is
    /// reclaimable the moment the step completes.
    pub fn with_gc(cssg: &Cssg, gc_threshold: Option<usize>) -> Self {
        let sbits = bits_for(cssg.num_states()).max(1);
        let pbits = cssg.num_inputs() as u32;
        let mut mgr = Manager::new(2 * sbits + pbits);
        mgr.set_gc_threshold(gc_threshold);
        let mut relation = Bdd::FALSE;
        mgr.protect(relation);
        for s in 0..cssg.num_states() {
            for (p, t) in cssg.edges(s) {
                let mut lits: Vec<(u32, bool)> = Vec::new();
                for b in 0..sbits {
                    lits.push((b, s >> b & 1 == 1));
                }
                for b in 0..pbits {
                    lits.push((sbits + b, p.get(b as usize)));
                }
                for b in 0..sbits {
                    lits.push((sbits + pbits + b, t >> b & 1 == 1));
                }
                let edge = mgr.cube(&lits);
                let next = mgr.or(relation, edge);
                relation = mgr.reroot(relation, next);
            }
        }
        let init_lits: Vec<(u32, bool)> = (0..sbits)
            .map(|b| (b, cssg.initial() >> b & 1 == 1))
            .collect();
        let initial = mgr.cube(&init_lits);
        mgr.protect(initial);
        WalkAuditor {
            mgr,
            sbits,
            pbits,
            relation,
            initial,
            cache_clears: 0,
        }
    }

    /// Symbolically replays `seq` from the initial state.  Returns the
    /// number of states in the final reached set — `Some(1)` for a valid
    /// walk on the deterministic CSSG, `None` if the walk dies (which
    /// would mean the explicit search emitted an invalid test).
    pub fn replay(&mut self, seq: &TestSequence) -> Option<usize> {
        let quantify: Vec<u32> = (0..self.sbits + self.pbits).collect();
        // The rolling reached set is the only handle held across steps;
        // root it so the per-step intermediates are free to reclaim.
        let mut reached = self.initial;
        self.mgr.protect(reached);
        for p in &seq.patterns {
            let plits: Vec<(u32, bool)> = (0..self.pbits)
                .map(|b| (self.sbits + b, p.get(b as usize)))
                .collect();
            let pcube = self.mgr.cube(&plits);
            let constrained = self.mgr.and(reached, pcube);
            let img = self.mgr.and_exists(constrained, self.relation, &quantify);
            if img.is_false() {
                self.mgr.unprotect(reached);
                return None;
            }
            // Rename S' down into the S frame.
            let shift = self.sbits + self.pbits;
            let next = self.mgr.remap(img, &|v| v - shift);
            reached = self.mgr.reroot(reached, next);
            if self.mgr.clear_cache_if_above(CACHE_BOUND) {
                self.cache_clears += 1;
            }
        }
        let n = self.count_states(reached);
        self.mgr.unprotect(reached);
        Some(n)
    }

    /// Audits one discovered test: valid iff the symbolic replay
    /// survives every cycle.  The deterministic CSSG keeps the reached
    /// set a single state, which the audit also asserts.
    pub fn check(&mut self, seq: &TestSequence) -> bool {
        matches!(self.replay(seq), Some(1))
    }

    /// Live node count of the private manager (telemetry).
    pub fn num_nodes(&self) -> usize {
        self.mgr.num_nodes()
    }

    /// Operation-cache entries of the private manager (telemetry).
    pub fn cache_len(&self) -> usize {
        self.mgr.cache_len()
    }

    /// Live unique-table entries of the private manager (telemetry).
    pub fn unique_len(&self) -> usize {
        self.mgr.unique_len()
    }

    /// High-water mark of the unique table (telemetry).
    pub fn peak_unique(&self) -> usize {
        self.mgr.peak_unique_len()
    }

    /// GC sweeps the private manager has run (telemetry).
    pub fn gc_runs(&self) -> usize {
        self.mgr.gc_stats().runs
    }

    /// Nodes the private manager has reclaimed (telemetry).
    pub fn reclaimed_nodes(&self) -> usize {
        self.mgr.gc_stats().reclaimed
    }

    fn count_states(&self, set: Bdd) -> usize {
        // Enumerate assignments of the S frame satisfying `set`.
        let mut count = 0usize;
        for s in 0..(1usize << self.sbits) {
            if self.mgr.eval(set, &|v| s >> v & 1 == 1) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satpg_core::{build_cssg, CssgConfig};
    use satpg_netlist::library;

    fn cssg_of(ckt: &satpg_netlist::Circuit) -> satpg_core::Cssg {
        build_cssg(ckt, &CssgConfig::default()).unwrap()
    }

    #[test]
    fn valid_walks_pass_invalid_walks_fail() {
        let ckt = library::c_element();
        let cssg = cssg_of(&ckt);
        let mut aud = WalkAuditor::new(&cssg);
        // Raise both inputs: a CSSG edge from reset.
        let good = TestSequence::from_u64(2, &[0b11]);
        assert!(aud.check(&good));
        // Replaying the current reset pattern is never an edge.
        let bad = TestSequence::from_u64(2, &[0b00]);
        assert!(!aud.check(&bad));
    }

    #[test]
    fn symbolic_replay_matches_explicit_replay_everywhere() {
        for ckt in library::all() {
            let cssg = cssg_of(&ckt);
            let mut aud = WalkAuditor::new(&cssg);
            // Every single-step walk agrees with Cssg::replay.
            for s in [cssg.initial()] {
                for (p, _) in cssg.edges(s) {
                    let seq = TestSequence {
                        patterns: vec![p.clone()],
                    };
                    assert_eq!(
                        aud.check(&seq),
                        cssg.replay(&seq).is_some(),
                        "{}: pattern {p}",
                        ckt.name()
                    );
                }
            }
        }
    }

    /// A GC'd auditor under an absurdly small threshold returns the same
    /// verdict as an immortal one for every single-step walk, while
    /// actually reclaiming nodes.
    #[test]
    fn gc_auditor_matches_immortal_auditor() {
        for ckt in library::all() {
            let cssg = cssg_of(&ckt);
            let mut plain = WalkAuditor::new(&cssg);
            let mut gc = WalkAuditor::with_gc(&cssg, Some(16));
            for s in [cssg.initial()] {
                for (p, _) in cssg.edges(s) {
                    let seq = TestSequence {
                        patterns: vec![p.clone()],
                    };
                    assert_eq!(gc.check(&seq), plain.check(&seq), "{}", ckt.name());
                }
            }
            assert_eq!(plain.gc_runs(), 0, "immortal manager never sweeps");
            if plain.unique_len() > 16 {
                assert!(gc.gc_runs() > 0, "{}: tiny threshold sweeps", ckt.name());
                assert!(gc.unique_len() <= plain.unique_len());
            }
        }
    }

    #[test]
    fn audits_multi_step_atpg_tests() {
        let ckt = library::muller_pipeline2();
        let cssg = cssg_of(&ckt);
        let report = satpg_core::run_atpg(&ckt, &satpg_core::AtpgConfig::paper()).unwrap();
        let mut aud = WalkAuditor::new(&cssg);
        for t in &report.tests {
            if t.is_empty() {
                continue;
            }
            assert!(aud.check(t), "ATPG test must be a valid walk");
        }
        assert!(aud.num_nodes() > 2, "relation BDD is non-trivial");
    }
}
