//! `satpg-engine` — fault-parallel ATPG orchestration.
//!
//! The serial flow in `satpg-core` targets one fault at a time.  This
//! crate scales the campaign across `N` workers in the shared-nothing
//! shape the per-store sharding of modern BDD packages uses, one level
//! up — at the fault-campaign level:
//!
//! * the collapsed fault list is **sharded** round-robin across
//!   per-worker deques with **work stealing** ([`shard`]);
//! * every worker shares the read-only [`satpg_core::Cssg`] and circuit,
//!   and owns a **private [`satpg_bdd::Manager`]** used to audit its
//!   discoveries symbolically ([`audit`]) and report per-worker BDD
//!   telemetry;
//! * a test found by one worker is **broadcast**: other workers
//!   fault-simulate it against their pending faults and drop the ones it
//!   already covers, skipping their three-phase searches;
//! * results are merged by a **deterministic serial replay** over the
//!   resumable stages of [`satpg_core::stages`], so the final
//!   [`EngineReport`] carries fault records and tests *identical* to the
//!   serial [`satpg_core::run_atpg`] report, regardless of worker count,
//!   steal order or broadcast timing.
//!
//! The determinism argument: the three-phase verdict of a class is a pure
//! function of `(circuit, cssg, fault, config)`.  Workers merely
//! *precompute* verdicts; the merge replays the exact serial control flow
//! (class order, test interning, fault-simulation cascade), consuming a
//! precomputed verdict where one exists and recomputing on the spot where
//! broadcasting skipped a class the serial flow would have targeted.
//!
//! # Example
//!
//! ```
//! use satpg_engine::{run_engine, EngineConfig};
//!
//! let ckt = satpg_netlist::library::muller_pipeline2();
//! let cfg = EngineConfig { workers: 2, ..EngineConfig::paper() };
//! let out = run_engine(&ckt, &cfg).unwrap();
//! let serial = satpg_core::run_atpg(&ckt, &cfg.atpg).unwrap();
//! assert_eq!(out.report.records, serial.records);
//! assert_eq!(out.report.tests, serial.tests);
//! ```

pub mod audit;
mod run;
pub mod shard;

pub use run::{
    merge_partial, prepare_campaign, reports_identical, run_engine, run_engine_on,
    run_engine_on_streaming, run_engine_streaming, Campaign, EngineConfig, EngineEvent,
    EngineReport, EngineSink, NullSink, PartialMerge, WorkerStats,
};
