//! The engine driver: shard → search in parallel → deterministic merge.

use crate::audit::WalkAuditor;
use crate::shard::{Popped, ShardedQueues};
use satpg_core::json::Json;
use satpg_core::stages::{random_stage, targeted_stage, FaultPlan, StageState};
use satpg_core::{
    build_cssg_sharded, faults_for, three_phase, three_phase_traced, AtpgConfig, AtpgReport,
    CapPolicy, CoreError, Cssg, Fault, FaultStatus, TestSequence,
};
use satpg_netlist::Circuit;
use std::sync::{OnceLock, RwLock};
use std::time::Instant;

/// Incremental engine telemetry, emitted through an [`EngineSink`] as a
/// campaign advances.  Events from the parallel stage ([`TestFound`],
/// [`WorkerDone`]) arrive in completion order, which varies run to run;
/// the stage-transition events are totally ordered.
///
/// [`TestFound`]: EngineEvent::TestFound
/// [`WorkerDone`]: EngineEvent::WorkerDone
#[derive(Clone, Debug)]
pub enum EngineEvent {
    /// The CSSG abstraction is available (built or supplied by a cache).
    CssgReady {
        /// Stable states.
        states: usize,
        /// Valid (state, pattern) edges.
        edges: usize,
        /// (state, pattern) pairs dropped at a resource limit.
        truncated: usize,
        /// State expansions the settling analyses performed.
        settle_states: u64,
        /// Successor branches the partial-order reduction pruned
        /// (0 with POR off — the explored-vs-saved ledger).
        por_pruned: u64,
        /// Construction threads used (1 for a serial build; also 1 on a
        /// cache hit, where nothing was built).
        shards: usize,
        /// Microseconds spent constructing (0 on a cache hit).
        us: u128,
    },
    /// The random-TPG stage finished.
    RandomDone {
        /// Fault classes it resolved.
        resolved: usize,
        /// Bit-parallel fixpoint passes it ran.
        passes: usize,
        /// Pattern evaluations across those passes (`patterns / passes`
        /// is the lane throughput: 1 fault-per-lane, 64 pattern-per-bit).
        patterns: u64,
        /// Microseconds spent.
        us: u128,
    },
    /// The parallel three-phase stage is starting.
    ParallelStarted {
        /// Worker threads spawned.
        workers: usize,
        /// Open classes they will target.
        pending: usize,
    },
    /// A worker discovered a test (before broadcast).
    TestFound {
        /// The discovering worker.
        worker: usize,
        /// The targeted class index.
        class: usize,
        /// Test length in cycles.
        cycles: usize,
    },
    /// A worker drained its queue and exited.
    WorkerDone {
        /// Its final telemetry (BDD nodes, GC sweeps/reclaimed/peak, …).
        stats: WorkerStats,
    },
    /// The deterministic merge finished; the report follows.
    MergeDone {
        /// Classes re-searched serially.
        fallbacks: usize,
        /// Microseconds spent merging.
        us: u128,
    },
}

/// A consumer of [`EngineEvent`]s.  Implementations must be `Sync`:
/// workers emit from the scoped threads of the parallel stage.
pub trait EngineSink: Sync {
    /// Receives one event.  Called synchronously on the emitting thread;
    /// implementations should hand off quickly (e.g. into a channel).
    fn event(&self, ev: EngineEvent);
}

/// The do-nothing sink behind the non-streaming entry points.
pub struct NullSink;

impl EngineSink for NullSink {
    fn event(&self, _ev: EngineEvent) {}
}

/// Configuration of a fault-parallel campaign.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The underlying flow configuration (shared with the serial driver,
    /// so reports are comparable).
    pub atpg: AtpgConfig,
    /// Number of workers.  `0` means one per available CPU.
    pub workers: usize,
    /// Broadcast discovered tests so other workers can drop covered
    /// pending faults early.
    pub broadcast: bool,
    /// Symbolically audit every discovered test on the worker's private
    /// BDD manager.
    pub symbolic_audit: bool,
    /// Per-worker BDD GC policy: with `Some(t)`, each worker's private
    /// manager sweeps unrooted nodes whenever more than `t` are live
    /// (the `--gc-threshold` CLI flag).  `None` keeps nodes immortal.
    pub gc_threshold: Option<usize>,
    /// Threads for the CSSG construction phase
    /// ([`satpg_core::build_cssg_sharded`]).  `0` matches the campaign's
    /// worker count, so a parallel job also builds its abstraction in
    /// parallel; any value yields a CSSG structurally identical to the
    /// serial build (the `--cssg-shards` CLI flag).
    pub cssg_shards: usize,
    /// Partial-order reduction inside every settling analysis (CSSG
    /// construction and the workers' faulty-machine settles).  `false`
    /// forces the naive walks regardless of the nested `atpg` config
    /// (the `--no-por` CLI flag).
    pub settle_por: bool,
    /// Override for the settle-set cap policy of both layers; `None`
    /// keeps the nested `atpg` config's policies (the `--settle-cap`
    /// CLI flag).
    pub settle_cap: Option<CapPolicy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            atpg: AtpgConfig::default(),
            workers: 0,
            broadcast: true,
            symbolic_audit: true,
            gc_threshold: None,
            cssg_shards: 0,
            settle_por: true,
            settle_cap: None,
        }
    }
}

impl EngineConfig {
    /// The paper-table flow configuration under the parallel driver.
    pub fn paper() -> Self {
        EngineConfig {
            atpg: AtpgConfig::paper(),
            ..EngineConfig::default()
        }
    }

    fn effective_workers(&self, pending: usize) -> usize {
        self.requested_workers().clamp(1, pending.max(1))
    }

    /// The worker count before clamping to the pending-class count: the
    /// configured value, or one per available CPU for `0`.
    pub fn requested_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// Threads the CSSG build phase uses: `cssg_shards`, defaulting to
    /// the campaign's worker count when 0.
    pub fn build_shards(&self) -> usize {
        if self.cssg_shards == 0 {
            self.requested_workers()
        } else {
            self.cssg_shards
        }
    }

    /// The campaign with the settle overrides folded into the nested
    /// flow configuration, so the CSSG build, the workers and the merge
    /// all see one consistent settling policy.
    fn normalized(&self) -> EngineConfig {
        let mut cfg = self.clone();
        if !cfg.settle_por {
            cfg.atpg.cssg.por = false;
            cfg.atpg.three_phase.por = false;
        }
        if let Some(cap) = cfg.settle_cap {
            cfg.atpg.cssg.settle_cap = cap;
            cfg.atpg.three_phase.settle_cap = cap;
        }
        cfg
    }
}

/// Telemetry of one worker.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Classes whose three-phase search this worker ran.
    pub searched: usize,
    /// How many of those were stolen from other workers' deques.
    pub stolen: usize,
    /// Tests this worker discovered (and broadcast).
    pub tests_found: usize,
    /// Pending classes dropped after fault-simulating broadcast tests.
    pub broadcast_drops: usize,
    /// Discovered tests that failed the symbolic audit (always 0 unless
    /// the explicit search and the BDD relation disagree — a bug).
    pub audit_failures: usize,
    /// Live BDD nodes in the worker's private manager at exit.
    pub bdd_nodes: usize,
    /// Operation-cache entries in the private manager at exit.
    pub bdd_cache: usize,
    /// Times the bounded-cache heuristic cleared the cache.
    pub bdd_cache_clears: usize,
    /// GC sweeps the private manager ran (0 with GC disabled).
    pub bdd_gc_runs: usize,
    /// BDD nodes the private manager reclaimed across all sweeps.
    pub bdd_reclaimed: usize,
    /// High-water mark of the private manager's unique table.
    pub bdd_peak_unique: usize,
    /// State expansions this worker's settling analyses performed across
    /// its three-phase searches.
    pub settle_states: u64,
    /// Successor branches the partial-order reduction pruned in those
    /// analyses (0 with POR off).
    pub settle_por_pruned: u64,
    /// Settling analyses that fell back to the naive walk (the reduced
    /// walk did not settle within `k`).
    pub settle_fallbacks: u64,
    /// Wall-clock microseconds the worker was busy.
    pub us_busy: u128,
}

impl WorkerStats {
    /// The machine-readable form (used by `--json` output and the
    /// service telemetry stream).  `us_busy` is wall clock, so it is
    /// only present when `include_timing` asks for it — the timing-free
    /// form must be byte-identical across runs.
    pub fn to_json_value(&self, include_timing: bool) -> Json {
        let mut fields = vec![
            ("worker".to_string(), Json::int(self.worker)),
            ("searched".to_string(), Json::int(self.searched)),
            ("stolen".to_string(), Json::int(self.stolen)),
            ("tests_found".to_string(), Json::int(self.tests_found)),
            (
                "broadcast_drops".to_string(),
                Json::int(self.broadcast_drops),
            ),
            ("audit_failures".to_string(), Json::int(self.audit_failures)),
            ("bdd_nodes".to_string(), Json::int(self.bdd_nodes)),
            ("bdd_cache".to_string(), Json::int(self.bdd_cache)),
            (
                "bdd_cache_clears".to_string(),
                Json::int(self.bdd_cache_clears),
            ),
            ("bdd_gc_runs".to_string(), Json::int(self.bdd_gc_runs)),
            ("bdd_reclaimed".to_string(), Json::int(self.bdd_reclaimed)),
            (
                "bdd_peak_unique".to_string(),
                Json::int(self.bdd_peak_unique),
            ),
            ("settle_states".to_string(), Json::int(self.settle_states)),
            (
                "settle_por_pruned".to_string(),
                Json::int(self.settle_por_pruned),
            ),
            (
                "settle_fallbacks".to_string(),
                Json::int(self.settle_fallbacks),
            ),
        ];
        if include_timing {
            fields.push(("us_busy".to_string(), Json::int(self.us_busy)));
        }
        Json::Obj(fields)
    }
}

/// The campaign result: a serial-identical report plus parallel telemetry.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Fault records and tests, byte-for-byte identical to the serial
    /// [`satpg_core::run_atpg`] report for the same `AtpgConfig`
    /// (timing fields excepted — they measure this run).
    pub report: AtpgReport,
    /// Per-worker telemetry, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Classes resolved during the parallel phase.
    pub parallel_verdicts: usize,
    /// Classes the merge had to re-search serially because a broadcast
    /// drop skipped them (bounded by the drops; usually far smaller).
    pub merge_fallbacks: usize,
    /// Wall-clock microseconds of the parallel phase.
    pub us_parallel: u128,
    /// Wall-clock microseconds of the deterministic merge.
    pub us_merge: u128,
}

impl EngineReport {
    /// The machine-readable form: the serializable report plus the
    /// parallel-driver telemetry under `"engine"`.
    pub fn to_json_value(&self, include_timing: bool) -> Json {
        let mut engine = vec![
            (
                "workers".to_string(),
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| w.to_json_value(include_timing))
                        .collect(),
                ),
            ),
            (
                "parallel_verdicts".to_string(),
                Json::int(self.parallel_verdicts),
            ),
            (
                "merge_fallbacks".to_string(),
                Json::int(self.merge_fallbacks),
            ),
        ];
        if include_timing {
            engine.push(("us_parallel".to_string(), Json::int(self.us_parallel)));
            engine.push(("us_merge".to_string(), Json::int(self.us_merge)));
        }
        Json::Obj(vec![
            (
                "report".to_string(),
                self.report.to_json_value(include_timing),
            ),
            ("engine".to_string(), Json::Obj(engine)),
        ])
    }
}

/// A campaign paused at the targeted-stage boundary: the fault plan plus
/// the stage state left by random TPG.  This is the unit a distributed
/// coordinator exports — [`StageState::open_classes`] is the work to
/// partition across peers, and feeding the collected verdicts back
/// through [`merge_partial`] reproduces the serial report.
pub struct Campaign {
    /// The collapsed fault plan (class order is the serial order).
    pub plan: FaultPlan,
    /// Stage state after random TPG: open classes still need a verdict.
    pub state: StageState,
    /// Microseconds the random stage took.
    pub us_random: u128,
}

/// Builds the fault plan and runs the (serial, deterministic) random
/// stage — everything that precedes the parallelizable targeted search.
pub fn prepare_campaign(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &AtpgConfig,
) -> Campaign {
    let plan = FaultPlan::new(ckt, faults, cfg.collapse);
    let mut state = StageState::new(plan.len());
    let t = Instant::now();
    if let Some(rnd_cfg) = &cfg.random {
        let _span = satpg_trace::span!("stage.random", classes = plan.len());
        random_stage(ckt, cssg, &plan, rnd_cfg, &mut state);
    }
    Campaign {
        plan,
        state,
        us_random: t.elapsed().as_micros(),
    }
}

/// Outcome of [`merge_partial`]: the serial-identical report and how many
/// classes had to be re-searched locally.
pub struct PartialMerge {
    /// The assembled report, byte-identical (timing aside) to serial
    /// [`satpg_core::run_atpg`] for the same configuration.
    pub report: AtpgReport,
    /// Classes whose verdict was missing and recomputed on the spot.
    pub fallbacks: usize,
    /// Microseconds the merge replay took.
    pub us_merge: u128,
}

/// The deterministic merge as a standalone entry point: replays the exact
/// serial control flow over *all* classes, consuming a precomputed
/// verdict wherever `verdict(ci)` supplies one and recomputing the
/// three-phase search locally where it does not.
///
/// Because a class verdict is a pure function of
/// `(circuit, cssg, fault, config)`, the report does not depend on which
/// classes arrive precomputed: lost, late or never-dispatched verdicts
/// only move work into `fallbacks`, never change a record.  This is what
/// makes peer loss invisible to a fleet campaign's report.
///
/// `us_distributed` is the wall-clock of whatever parallel/remote phase
/// produced the verdicts; it is folded into the report's three-phase
/// timing alongside the merge's own time.
#[allow(clippy::too_many_arguments)]
pub fn merge_partial(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &AtpgConfig,
    plan: &FaultPlan,
    mut state: StageState,
    us_cssg: u128,
    us_random: u128,
    us_distributed: u128,
    verdict: &mut dyn FnMut(usize) -> Option<FaultStatus>,
) -> PartialMerge {
    let t = Instant::now();
    let merge_span = satpg_trace::span!("stage.merge", classes = plan.len());
    let mut fallbacks = 0usize;
    let queue: Vec<usize> = (0..plan.len()).collect();
    targeted_stage(
        ckt,
        cssg,
        plan,
        cfg.fault_sim,
        &queue,
        &mut state,
        &mut |ci, f| match verdict(ci) {
            Some(v) => v,
            None => {
                fallbacks += 1;
                three_phase(ckt, cssg, f, &cfg.three_phase)
            }
        },
    );
    drop(merge_span);
    let us_merge = t.elapsed().as_micros();
    let report = satpg_core::stages::assemble_report(
        ckt,
        cssg,
        faults,
        plan,
        state,
        satpg_core::stages::StageTimings {
            us_cssg,
            us_random,
            us_three_phase: us_distributed + us_merge,
        },
    );
    PartialMerge {
        report,
        fallbacks,
        us_merge,
    }
}

/// Runs the fault-parallel campaign on `ckt`.
///
/// # Errors
///
/// Same conditions as [`satpg_core::run_atpg`]: CSSG construction
/// failures or an abstraction with no valid vectors.
pub fn run_engine(ckt: &Circuit, cfg: &EngineConfig) -> Result<EngineReport, CoreError> {
    run_engine_streaming(ckt, cfg, &NullSink)
}

/// [`run_engine`] with incremental telemetry delivered to `sink`.
///
/// # Errors
///
/// Same conditions as [`run_engine`].
pub fn run_engine_streaming(
    ckt: &Circuit,
    cfg: &EngineConfig,
    sink: &dyn EngineSink,
) -> Result<EngineReport, CoreError> {
    let cfg = &cfg.normalized();
    let shards = cfg.build_shards();
    let _span = satpg_trace::span!(
        "engine.run",
        circuit = ckt.name(),
        workers = cfg.requested_workers()
    );
    let t0 = Instant::now();
    let cssg = build_cssg_sharded(ckt, &cfg.atpg.cssg, shards)?;
    let us_cssg = t0.elapsed().as_micros();
    if cssg.num_edges() == 0 {
        return Err(CoreError::NoValidVectors);
    }
    let faults = faults_for(ckt, cfg.atpg.fault_model);
    Ok(run_engine_built(
        ckt, &cssg, &faults, cfg, us_cssg, shards, sink,
    ))
}

/// Runs the campaign against an explicit fault list and prebuilt CSSG
/// (the injectable-queue entry point).
pub fn run_engine_on(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &EngineConfig,
    us_cssg: u128,
) -> EngineReport {
    run_engine_on_streaming(ckt, cssg, faults, cfg, us_cssg, &NullSink)
}

/// [`run_engine_on`] with incremental telemetry delivered to `sink`.
/// `us_cssg` is the construction time to attribute to the abstraction
/// (pass 0 when it came from a cache).
pub fn run_engine_on_streaming(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &EngineConfig,
    us_cssg: u128,
    sink: &dyn EngineSink,
) -> EngineReport {
    run_engine_built(ckt, cssg, faults, &cfg.normalized(), us_cssg, 1, sink)
}

/// The campaign body: `cssg_shards` records how many threads built the
/// supplied abstraction (1 when prebuilt or cache-served) for the
/// [`EngineEvent::CssgReady`] telemetry.
fn run_engine_built(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    cfg: &EngineConfig,
    us_cssg: u128,
    cssg_shards: usize,
    sink: &dyn EngineSink,
) -> EngineReport {
    sink.event(EngineEvent::CssgReady {
        states: cssg.num_states(),
        edges: cssg.num_edges(),
        truncated: cssg.pruned_truncated(),
        settle_states: cssg.settle_stats().states_explored,
        por_pruned: cssg.settle_stats().por_pruned,
        shards: cssg_shards,
        us: us_cssg,
    });
    // --- Stage 1: random TPG (serial; it is cheap, deterministic and
    // sets the shared baseline both drivers start the targeted loop from).
    let Campaign {
        plan,
        state,
        us_random,
    } = prepare_campaign(ckt, cssg, faults, &cfg.atpg);

    // --- Stage 2 (parallel): precompute three-phase verdicts. ---
    let pending = state.open_classes();
    sink.event(EngineEvent::RandomDone {
        resolved: plan.len() - pending.len(),
        passes: state.random.passes,
        patterns: state.random.patterns_evaluated,
        us: us_random,
    });
    let workers = cfg.effective_workers(pending.len());
    let queues = ShardedQueues::new(workers, &pending);
    let outcomes: Vec<OnceLock<FaultStatus>> = (0..plan.len()).map(|_| OnceLock::new()).collect();
    let broadcasts: RwLock<Vec<(usize, TestSequence)>> = RwLock::new(Vec::new());

    let t2 = Instant::now();
    let parallel_span =
        satpg_trace::span!("stage.parallel", workers = workers, pending = pending.len());
    // Workers parent their spans under the stage span explicitly; each
    // records into its own thread-local buffer, so tracing adds no
    // cross-worker synchronization to the stealing schedule.
    let parallel_span_id = parallel_span.id();
    let worker_stats: Vec<WorkerStats> = if pending.is_empty() {
        Vec::new()
    } else {
        sink.event(EngineEvent::ParallelStarted {
            workers,
            pending: pending.len(),
        });
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let outcomes = &outcomes;
                    let broadcasts = &broadcasts;
                    let plan = &plan;
                    scope.spawn(move || {
                        let stats = worker_loop(
                            ckt,
                            cssg,
                            plan,
                            cfg,
                            w,
                            queues,
                            outcomes,
                            broadcasts,
                            sink,
                            parallel_span_id,
                        );
                        sink.event(EngineEvent::WorkerDone {
                            stats: stats.clone(),
                        });
                        stats
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };
    drop(parallel_span);
    let us_parallel = t2.elapsed().as_micros();
    let parallel_verdicts = outcomes.iter().filter(|o| o.get().is_some()).count();

    // --- Stage 3: deterministic merge.  Replay the exact serial control
    // flow, consuming precomputed verdicts; a class skipped by a
    // broadcast drop but reached open here is recomputed on the spot.
    let merged = merge_partial(
        ckt,
        cssg,
        faults,
        &cfg.atpg,
        &plan,
        state,
        us_cssg,
        us_random,
        us_parallel,
        &mut |ci| outcomes[ci].get().cloned(),
    );
    sink.event(EngineEvent::MergeDone {
        fallbacks: merged.fallbacks,
        us: merged.us_merge,
    });
    flush_engine_metrics(
        &worker_stats,
        us_cssg,
        us_random,
        us_parallel,
        merged.us_merge,
    );

    EngineReport {
        report: merged.report,
        workers: worker_stats,
        parallel_verdicts,
        merge_fallbacks: merged.fallbacks,
        us_parallel,
        us_merge: merged.us_merge,
    }
}

/// Feeds one campaign's telemetry into the process metrics registry
/// (`engine.*` counters/gauges, `stage.*.us` histograms).  Called once
/// per run, after the merge — never from worker threads.
fn flush_engine_metrics(
    workers: &[WorkerStats],
    us_cssg: u128,
    us_random: u128,
    us_parallel: u128,
    us_merge: u128,
) {
    let m = satpg_trace::metrics();
    m.counter("engine.runs").inc();
    for w in workers {
        m.counter("engine.searched").add(w.searched as u64);
        m.counter("engine.stolen").add(w.stolen as u64);
        m.counter("engine.tests_found").add(w.tests_found as u64);
        m.counter("engine.broadcast_drops")
            .add(w.broadcast_drops as u64);
        m.counter("engine.audit_failures")
            .add(w.audit_failures as u64);
        m.counter("engine.bdd_gc_runs").add(w.bdd_gc_runs as u64);
        m.counter("engine.bdd_reclaimed")
            .add(w.bdd_reclaimed as u64);
        m.counter("engine.settle_states").add(w.settle_states);
        m.counter("engine.settle_por_pruned")
            .add(w.settle_por_pruned);
        m.counter("engine.settle_fallbacks").add(w.settle_fallbacks);
        m.gauge("engine.bdd_peak_unique")
            .max(w.bdd_peak_unique.min(i64::MAX as usize) as i64);
        m.histogram("engine.worker.busy_us")
            .record(w.us_busy.min(u64::MAX as u128) as u64);
    }
    m.histogram("stage.cssg.us")
        .record(us_cssg.min(u64::MAX as u128) as u64);
    m.histogram("stage.random.us")
        .record(us_random.min(u64::MAX as u128) as u64);
    m.histogram("stage.parallel.us")
        .record(us_parallel.min(u64::MAX as u128) as u64);
    m.histogram("stage.merge.us")
        .record(us_merge.min(u64::MAX as u128) as u64);
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    ckt: &Circuit,
    cssg: &Cssg,
    plan: &FaultPlan,
    cfg: &EngineConfig,
    w: usize,
    queues: &ShardedQueues,
    outcomes: &[OnceLock<FaultStatus>],
    broadcasts: &RwLock<Vec<(usize, TestSequence)>>,
    sink: &dyn EngineSink,
    parent_span: u64,
) -> WorkerStats {
    let t0 = Instant::now();
    // The worker's span parents under the parallel stage explicitly
    // (the stage span lives on the spawning thread's stack, not ours).
    let _span = satpg_trace::Span::enter_with_parent(
        "worker",
        parent_span,
        vec![("worker", satpg_trace::ArgValue::from(w))],
    );
    let mut stats = WorkerStats {
        worker: w,
        ..WorkerStats::default()
    };
    let mut auditor = cfg
        .symbolic_audit
        .then(|| WalkAuditor::with_gc(cssg, cfg.gc_threshold));
    let mut seen_broadcasts = 0usize;
    // Broadcasting only pays off when the merge can harvest the skipped
    // classes as fault-sim credits; with fault_sim off every drop would
    // serialize a recomputation instead.
    let broadcast = cfg.broadcast && cfg.atpg.fault_sim;

    while let Some(popped) = queues.pop(w) {
        // Screen the backlog against tests found elsewhere since the
        // last check.  Only classes *after* the broadcaster in serial
        // order are dropped: those are the ones the serial flow would
        // also have resolved by fault simulation, so the merge will not
        // need to re-search them.
        if broadcast {
            let log = broadcasts.read().expect("broadcast lock");
            let fresh: Vec<(usize, TestSequence)> = log[seen_broadcasts..].to_vec();
            seen_broadcasts = log.len();
            drop(log);
            for (ca, test) in fresh {
                stats.broadcast_drops += queues.drop_pending(w, |backlog| {
                    let candidates: Vec<usize> =
                        backlog.iter().copied().filter(|&cb| cb > ca).collect();
                    let cand_faults: Vec<Fault> = candidates
                        .iter()
                        .map(|&cb| plan.classes()[cb].representative)
                        .collect();
                    satpg_core::fault_simulate(ckt, cssg, &test, &cand_faults)
                        .into_iter()
                        .map(|hit| candidates[hit])
                        .collect()
                });
            }
        }

        let ci = popped.item();
        if matches!(popped, Popped::Stolen { .. }) {
            stats.stolen += 1;
        }
        let fault = plan.classes()[ci].representative;
        let (verdict, settle) = three_phase_traced(ckt, cssg, &fault, &cfg.atpg.three_phase);
        stats.settle_states += settle.states_explored;
        stats.settle_por_pruned += settle.por_pruned;
        stats.settle_fallbacks += settle.fallbacks;
        stats.searched += 1;
        if let FaultStatus::Detected { sequence } = &verdict {
            stats.tests_found += 1;
            sink.event(EngineEvent::TestFound {
                worker: w,
                class: ci,
                cycles: sequence.len(),
            });
            if let Some(aud) = auditor.as_mut() {
                if !aud.check(sequence) {
                    stats.audit_failures += 1;
                }
            }
            if broadcast {
                broadcasts
                    .write()
                    .expect("broadcast lock")
                    .push((ci, sequence.clone()));
            }
        }
        // First write wins; each class is processed at most once anyway.
        let _ = outcomes[ci].set(verdict);
    }

    if let Some(aud) = auditor {
        stats.bdd_nodes = aud.num_nodes();
        stats.bdd_cache = aud.cache_len();
        stats.bdd_cache_clears = aud.cache_clears;
        stats.bdd_gc_runs = aud.gc_runs();
        stats.bdd_reclaimed = aud.reclaimed_nodes();
        stats.bdd_peak_unique = aud.peak_unique();
    }
    stats.us_busy = t0.elapsed().as_micros();
    stats
}

/// Convenience: checks whether an engine report is verdict-identical to a
/// serial report (everything except wall-clock fields).
pub fn reports_identical(a: &AtpgReport, b: &AtpgReport) -> bool {
    a.circuit == b.circuit
        && a.cssg_states == b.cssg_states
        && a.cssg_edges == b.cssg_edges
        && a.cssg_patterns_skipped == b.cssg_patterns_skipped
        && a.random_passes == b.random_passes
        && a.random_patterns == b.random_patterns
        && a.records == b.records
        && a.tests == b.tests
}

#[cfg(test)]
mod tests {
    use super::*;
    use satpg_core::{run_atpg, FaultModel};
    use satpg_netlist::library;

    #[test]
    fn identical_to_serial_on_library_circuits() {
        for ckt in library::all() {
            let serial = run_atpg(&ckt, &AtpgConfig::paper());
            for workers in 1..=4 {
                let cfg = EngineConfig {
                    workers,
                    ..EngineConfig::paper()
                };
                let parallel = run_engine(&ckt, &cfg);
                match (&serial, &parallel) {
                    (Ok(s), Ok(p)) => {
                        assert!(
                            reports_identical(&p.report, s),
                            "{} with {workers} workers",
                            ckt.name()
                        );
                        assert_eq!(p.workers.iter().map(|w| w.audit_failures).sum::<usize>(), 0);
                    }
                    (Err(_), Err(_)) => {} // e.g. figure1b has no valid vectors
                    (s, p) => panic!("{}: serial {s:?} vs parallel {p:?}", ckt.name()),
                }
            }
        }
    }

    #[test]
    fn broadcast_off_still_identical() {
        let ckt = library::muller_pipeline2();
        let serial = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        let cfg = EngineConfig {
            workers: 3,
            broadcast: false,
            symbolic_audit: false,
            ..EngineConfig::paper()
        };
        let out = run_engine(&ckt, &cfg).unwrap();
        assert!(reports_identical(&out.report, &serial));
        assert_eq!(out.merge_fallbacks, 0, "no drops, no fallbacks");
    }

    #[test]
    fn worker_telemetry_accounts_for_all_searches() {
        let ckt = library::muller_pipeline2();
        let cfg = EngineConfig {
            workers: 2,
            broadcast: false,
            ..EngineConfig::paper()
        };
        let out = run_engine(&ckt, &cfg).unwrap();
        let searched: usize = out.workers.iter().map(|w| w.searched).sum();
        assert_eq!(searched, out.parallel_verdicts);
        for w in &out.workers {
            assert!(w.bdd_nodes >= 2, "auditor built a relation");
        }
    }

    #[test]
    fn gc_pressure_keeps_reports_identical() {
        // Disable random TPG so every class reaches the workers, then
        // squeeze the per-worker managers with a tiny GC threshold: the
        // report must not move, and the sweeps must actually reclaim.
        let ckt = library::muller_pipeline2();
        let atpg = AtpgConfig {
            random: None,
            ..AtpgConfig::paper()
        };
        let serial = run_atpg(&ckt, &atpg).unwrap();
        for workers in [1, 3] {
            let out = run_engine(
                &ckt,
                &EngineConfig {
                    atpg: atpg.clone(),
                    workers,
                    gc_threshold: Some(16),
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            assert!(reports_identical(&out.report, &serial), "{workers} workers");
            assert_eq!(
                out.workers.iter().map(|w| w.audit_failures).sum::<usize>(),
                0
            );
            let gc_runs: usize = out.workers.iter().map(|w| w.bdd_gc_runs).sum();
            let reclaimed: usize = out.workers.iter().map(|w| w.bdd_reclaimed).sum();
            assert!(gc_runs > 0, "tiny threshold must sweep");
            assert!(reclaimed > 0, "sweeps must reclaim nodes");
        }
    }

    #[test]
    fn sink_sees_stages_workers_and_tests() {
        use std::sync::Mutex;
        struct Collect(Mutex<Vec<EngineEvent>>);
        impl EngineSink for Collect {
            fn event(&self, ev: EngineEvent) {
                self.0.lock().unwrap().push(ev);
            }
        }
        let ckt = library::muller_pipeline2();
        let cfg = EngineConfig {
            workers: 2,
            ..EngineConfig::paper()
        };
        let sink = Collect(Mutex::new(Vec::new()));
        let out = run_engine_streaming(&ckt, &cfg, &sink).unwrap();
        let events = sink.0.into_inner().unwrap();

        // Stage transitions appear exactly once, in order.
        let stage_order: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::CssgReady { .. } => Some("cssg"),
                EngineEvent::RandomDone { .. } => Some("random"),
                EngineEvent::ParallelStarted { .. } => Some("parallel"),
                EngineEvent::MergeDone { .. } => Some("merge"),
                _ => None,
            })
            .collect();
        assert_eq!(stage_order, ["cssg", "random", "parallel", "merge"]);
        match events.first() {
            Some(EngineEvent::CssgReady {
                states,
                edges,
                shards,
                ..
            }) => {
                assert_eq!(*states, out.report.cssg_states);
                assert_eq!(*edges, out.report.cssg_edges);
                // cssg_shards defaults to the worker count.
                assert_eq!(*shards, 2, "build fan-out follows the workers");
            }
            other => panic!("expected CssgReady first, got {other:?}"),
        }
        // Every worker reports once; per-worker stats match the report.
        let done: Vec<&WorkerStats> = events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::WorkerDone { stats } => Some(stats),
                _ => None,
            })
            .collect();
        assert_eq!(done.len(), out.workers.len());
        let found: usize = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::TestFound { .. }))
            .count();
        assert_eq!(
            found,
            out.workers.iter().map(|w| w.tests_found).sum::<usize>()
        );
        // Streaming must not perturb the verdicts.
        let serial = run_atpg(&ckt, &cfg.atpg).unwrap();
        assert!(reports_identical(&out.report, &serial));
    }

    #[test]
    fn cssg_shards_override_is_report_invisible() {
        let ckt = library::muller_pipeline2();
        let serial = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        for cssg_shards in [1, 3] {
            let out = run_engine(
                &ckt,
                &EngineConfig {
                    workers: 2,
                    cssg_shards,
                    ..EngineConfig::paper()
                },
            )
            .unwrap();
            assert!(
                reports_identical(&out.report, &serial),
                "{cssg_shards} build shards"
            );
        }
    }

    #[test]
    fn collapse_and_output_model_pass_through() {
        let ckt = library::c_element();
        for (collapse, model) in [
            (true, FaultModel::InputStuckAt),
            (false, FaultModel::OutputStuckAt),
        ] {
            let atpg = AtpgConfig {
                collapse,
                fault_model: model,
                ..AtpgConfig::paper()
            };
            let serial = run_atpg(&ckt, &atpg).unwrap();
            let out = run_engine(
                &ckt,
                &EngineConfig {
                    atpg,
                    workers: 2,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            assert!(reports_identical(&out.report, &serial));
        }
    }
}
