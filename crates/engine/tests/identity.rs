//! The engine's headline property: for every bundled benchmark and every
//! worker count, the fault-parallel campaign produces a report identical
//! to the serial `run_atpg` — same per-fault verdicts, same phase
//! attribution, same test set, same test program — regardless of steal
//! order and broadcast timing.

use satpg_core::{run_atpg, AtpgConfig, FaultModel};
use satpg_engine::{reports_identical, run_engine, EngineConfig};
use satpg_netlist::Circuit;
use satpg_stg::synth::complex_gate;
use satpg_stg::{suite, StateGraph};

fn si_circuit(name: &str) -> Circuit {
    let stg = suite::load(name).unwrap();
    let sg = StateGraph::build(&stg).unwrap();
    complex_gate(&stg, &sg).unwrap()
}

#[test]
fn engine_matches_serial_on_every_bundled_benchmark() {
    for &name in suite::NAMES {
        let ckt = si_circuit(name);
        let serial = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
        for workers in 1..=4 {
            let cfg = EngineConfig {
                workers,
                ..EngineConfig::paper()
            };
            let out = run_engine(&ckt, &cfg).unwrap();
            assert!(
                reports_identical(&out.report, &serial),
                "{name}: {workers}-worker report diverges from serial"
            );
            // Coverage figures follow from the identical records, but
            // assert them explicitly — they are the paper's currency.
            assert_eq!(out.report.coverage(), serial.coverage(), "{name}");
            assert_eq!(out.report.untestable(), serial.untestable(), "{name}");
            assert_eq!(out.report.aborted(), serial.aborted(), "{name}");
            let audit_failures: usize = out.workers.iter().map(|w| w.audit_failures).sum();
            assert_eq!(audit_failures, 0, "{name}: symbolic audit rejected a test");
        }
    }
}

/// The same identity must survive aggressive memory pressure: with an
/// absurdly small per-worker GC threshold every audit operation triggers
/// sweeps, and the report must stay byte-identical to the serial flow
/// for every bundled benchmark and every worker count.
#[test]
fn engine_matches_serial_under_gc_pressure() {
    let mut swept_anywhere = false;
    // Random TPG off: every fault class reaches the workers, so every
    // worker exercises its GC'd private manager on real audit work.
    let atpg = AtpgConfig {
        random: None,
        ..AtpgConfig::paper()
    };
    for &name in suite::NAMES {
        let ckt = si_circuit(name);
        let serial = run_atpg(&ckt, &atpg).unwrap();
        for workers in 1..=4 {
            let cfg = EngineConfig {
                atpg: atpg.clone(),
                workers,
                gc_threshold: Some(16),
                ..EngineConfig::default()
            };
            let out = run_engine(&ckt, &cfg).unwrap();
            assert!(
                reports_identical(&out.report, &serial),
                "{name}: {workers}-worker report diverges from serial under GC"
            );
            let audit_failures: usize = out.workers.iter().map(|w| w.audit_failures).sum();
            assert_eq!(audit_failures, 0, "{name}: audit rejected a test under GC");
            for w in &out.workers {
                // Reclamation telemetry is internally consistent: a
                // sweeping worker has a peak, and the slab never exceeds
                // what was ever live at once plus the two terminals.
                if w.bdd_gc_runs > 0 {
                    assert!(w.bdd_peak_unique > 0, "{name}: sweeps but no peak");
                }
                assert!(
                    w.bdd_nodes <= w.bdd_peak_unique + 2,
                    "{name}: slab {} exceeds peak {} + terminals",
                    w.bdd_nodes,
                    w.bdd_peak_unique
                );
                swept_anywhere |= w.bdd_gc_runs > 0 && w.bdd_reclaimed > 0;
            }
        }
    }
    assert!(
        swept_anywhere,
        "a 16-node threshold must trigger reclamation somewhere in the suite"
    );
}

#[test]
fn engine_matches_serial_under_output_model_and_collapse() {
    for name in ["converta", "master-read", "vbe6a"] {
        let ckt = si_circuit(name);
        for (model, collapse) in [
            (FaultModel::OutputStuckAt, false),
            (FaultModel::InputStuckAt, true),
        ] {
            let atpg = AtpgConfig {
                fault_model: model,
                collapse,
                ..AtpgConfig::paper()
            };
            let serial = run_atpg(&ckt, &atpg).unwrap();
            for workers in [1, 3] {
                let out = run_engine(
                    &ckt,
                    &EngineConfig {
                        atpg: atpg.clone(),
                        workers,
                        ..EngineConfig::default()
                    },
                )
                .unwrap();
                assert!(
                    reports_identical(&out.report, &serial),
                    "{name} {model:?} collapse={collapse} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn tester_programs_are_identical_too() {
    use satpg_core::tester::TestProgram;
    use satpg_core::{build_cssg, CssgConfig};
    let ckt = si_circuit("master-read");
    let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
    let serial = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
    let out = run_engine(
        &ckt,
        &EngineConfig {
            workers: 4,
            ..EngineConfig::paper()
        },
    )
    .unwrap();

    let render = |tests: &[satpg_core::TestSequence]| {
        let mut prog = TestProgram::new(&ckt);
        for (i, t) in tests.iter().enumerate() {
            assert!(prog.push_sequence(&ckt, &cssg, format!("t{i}"), t));
        }
        prog.to_string()
    };
    assert_eq!(render(&serial.tests), render(&out.report.tests));
}

#[test]
fn worker_scaling_telemetry_is_consistent() {
    let ckt = si_circuit("mmu");
    for workers in 1..=4 {
        // Disable random TPG so every class reaches the parallel phase.
        let atpg = AtpgConfig {
            random: None,
            ..AtpgConfig::paper()
        };
        let out = run_engine(
            &ckt,
            &EngineConfig {
                atpg,
                workers,
                ..EngineConfig::paper()
            },
        )
        .unwrap();
        // Worker count is clamped to the pending-class count.
        assert!(out.workers.len() <= workers);
        assert!(!out.workers.is_empty(), "mmu leaves work for the engine");
        let searched: usize = out.workers.iter().map(|w| w.searched).sum();
        assert_eq!(searched, out.parallel_verdicts);
        // Fallback recomputation only ever happens when broadcasting
        // dropped something.
        let drops: usize = out.workers.iter().map(|w| w.broadcast_drops).sum();
        assert!(out.merge_fallbacks <= drops + searched);
    }
}
