//! Parallel ternary fault-simulation throughput (§5.4): how fast one test
//! sequence screens a whole fault list, 63 machines per pass.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use satpg_bench::{synthesize, Style};
use satpg_core::{build_cssg, fault_simulate, input_stuck_faults, CssgConfig, TestSequence};

fn bench_fsim(c: &mut Criterion) {
    let ckt = synthesize("master-read", Style::BoundedDelay);
    let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
    let faults = input_stuck_faults(&ckt);
    // A full handshake walk as the screening sequence.
    let seq = TestSequence::from_u64(ckt.num_inputs(), &[0b01, 0b11, 0b10, 0b00]);
    let mut g = c.benchmark_group("fault_sim");
    g.sample_size(30);
    g.throughput(Throughput::Elements(faults.len() as u64));
    g.bench_function("screen_all_input_faults", |b| {
        b.iter(|| std::hint::black_box(fault_simulate(&ckt, &cssg, &seq, &faults)))
    });
    g.finish();
}

criterion_group!(benches, bench_fsim);
criterion_main!(benches);
