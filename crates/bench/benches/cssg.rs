//! CSSG construction: explicit exploration vs BDD-based symbolic
//! computation (§4.2), plus the k-sensitivity of the abstraction.

use criterion::{criterion_group, criterion_main, Criterion};
use satpg_bench::{synthesize, Style};
use satpg_core::symbolic::SymbolicCssg;
use satpg_core::{build_cssg, CssgConfig};

fn bench_cssg(c: &mut Criterion) {
    let mut g = c.benchmark_group("cssg");
    g.sample_size(10);
    for name in ["chu150", "master-read"] {
        let ckt = synthesize(name, Style::SpeedIndependent);
        g.bench_function(format!("explicit/{name}"), |b| {
            b.iter(|| std::hint::black_box(build_cssg(&ckt, &CssgConfig::default()).unwrap()))
        });
        if ckt.num_state_bits() <= 32 {
            g.bench_function(format!("symbolic/{name}"), |b| {
                b.iter(|| std::hint::black_box(SymbolicCssg::build(&ckt, None).unwrap()))
            });
        }
        g.bench_function(format!("explicit_small_k/{name}"), |b| {
            let cfg = CssgConfig {
                k: Some(4),
                ..CssgConfig::default()
            };
            b.iter(|| std::hint::black_box(build_cssg(&ckt, &cfg).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cssg);
criterion_main!(benches);
