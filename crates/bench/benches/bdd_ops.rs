//! Micro-benchmarks for the ROBDD substrate: the operations symbolic
//! CSSG construction leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use satpg_bdd::{Bdd, Manager};

/// An n-bit ripple-carry adder equality: a classic BDD stress shape.
fn adder_equal(m: &mut Manager, n: u32) -> Bdd {
    // Variables: a_i = 3i, b_i = 3i+1, s_i = 3i+2 (interleaved).
    let mut carry = Bdd::FALSE;
    let mut acc = Bdd::TRUE;
    for i in 0..n {
        let a = m.var(3 * i);
        let b = m.var(3 * i + 1);
        let s = m.var(3 * i + 2);
        let axb = m.xor(a, b);
        let sum = m.xor(axb, carry);
        let ab = m.and(a, b);
        let ac = m.and(a, carry);
        let bc = m.and(b, carry);
        let t = m.or(ab, ac);
        carry = m.or(t, bc);
        let eq = m.iff(s, sum);
        acc = m.and(acc, eq);
    }
    acc
}

fn bench_bdd(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd");
    g.sample_size(20);
    g.bench_function("adder12_build", |b| {
        b.iter(|| {
            let mut m = Manager::new(3 * 12);
            std::hint::black_box(adder_equal(&mut m, 12))
        })
    });
    g.bench_function("adder12_and_exists", |b| {
        let mut m = Manager::new(3 * 12);
        let f = adder_equal(&mut m, 12);
        let g2 = adder_equal(&mut m, 10);
        let vars: Vec<u32> = (0..12).map(|i| 3 * i + 2).collect();
        b.iter(|| {
            m.clear_cache();
            std::hint::black_box(m.and_exists(f, g2, &vars))
        })
    });
    g.bench_function("adder12_sat_count", |b| {
        let mut m = Manager::new(3 * 12);
        let f = adder_equal(&mut m, 12);
        b.iter(|| std::hint::black_box(m.sat_count(f)))
    });
    g.bench_function("adder12_remap_shift", |b| {
        let mut m = Manager::new(3 * 12 + 1);
        let f = adder_equal(&mut m, 12);
        b.iter(|| {
            m.clear_cache();
            std::hint::black_box(m.remap(f, &|v| v + 1))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bdd);
criterion_main!(benches);
