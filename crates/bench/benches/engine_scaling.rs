//! Engine scaling: wall-clock of the fault-parallel campaign vs worker
//! count on generated workloads (a DME token ring and a deep Muller
//! pipeline).
//!
//! Run with `cargo bench -p satpg-bench --bench engine_scaling`.
//! Besides the human-readable table, one JSON line per measurement goes
//! to stdout, the full trajectory is written to
//! `target/engine_scaling.json`, and the durable `{bench, params,
//! value, unit}` records land in `target/bench_report.json` — the
//! input of `satpg bench-diff`.  `SATPG_BENCH_QUICK=1` shrinks every
//! workload so CI can regenerate a comparable report in seconds.
//!
//! Random TPG is disabled so every fault class reaches the parallel
//! targeted phase — the component whose scaling is under test.

use satpg_bench::report::{quick_mode, record, write_report, BenchRecord};
use satpg_core::{
    build_cssg, build_cssg_sharded, faults_for, random_tpg, AtpgConfig, CapPolicy, CssgConfig,
    FaultModel, RandomTpgConfig,
};
use satpg_engine::{run_engine, EngineConfig};
use satpg_netlist::{families as nf, Circuit};
use satpg_serve::{run_fleet, CircuitSpec, FleetConfig, JobSpec, ServeConfig, Server};
use satpg_stg::synth::complex_gate;
use satpg_stg::{families as sf, StateGraph};
use std::fmt::Write as _;
use std::time::Instant;

fn dme_circuit(cells: usize) -> Circuit {
    let stg = sf::dme_ring(cells).expect("generated ring parses");
    let sg = StateGraph::build(&stg).expect("generated ring is well-formed");
    complex_gate(&stg, &sg).expect("generated ring synthesizes")
}

fn measure(
    label: &str,
    ckt: &Circuit,
    workers: usize,
    reps: u32,
    records: &mut Vec<BenchRecord>,
) -> (u128, String) {
    let cfg = EngineConfig {
        atpg: AtpgConfig {
            random: None,
            fault_sim: true,
            ..AtpgConfig::default()
        },
        workers,
        broadcast: true,
        symbolic_audit: false,
        gc_threshold: None,
        cssg_shards: 1,
        settle_por: true,
        settle_cap: None,
    };
    // Warm-up, then best-of-`reps` wall clock.  With `reps == 0`
    // (quick mode) the single run doubles as the measurement.
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..=reps {
        let t = Instant::now();
        let out = run_engine(ckt, &cfg).expect("engine runs");
        let us = t.elapsed().as_micros();
        if last.is_some() || reps == 0 {
            best = best.min(us);
        }
        last = Some(out);
    }
    let out = last.expect("ran at least once");
    let json = format!(
        "{{\"bench\":\"engine_scaling\",\"workload\":\"{label}\",\"workers\":{workers},\
         \"best_us\":{best},\"faults\":{},\"coverage\":{:.2},\
         \"parallel_verdicts\":{},\"merge_fallbacks\":{}}}",
        out.report.total(),
        out.report.coverage(),
        out.parallel_verdicts,
        out.merge_fallbacks,
    );
    records.push(record(
        "engine_scaling",
        format!("{label}/w{workers}"),
        best as f64,
        "us",
    ));
    records.push(record(
        "engine_scaling",
        format!("{label}/w{workers}/coverage"),
        out.report.coverage(),
        "pct",
    ));
    records.push(record(
        "engine_scaling",
        format!("{label}/w{workers}/verdicts"),
        out.parallel_verdicts as f64,
        "count",
    ));
    (best, json)
}

/// Memory-policy probe: the same audited campaign under immortal nodes
/// vs a GC'd worker manager, reporting the peak BDD unique-table size
/// (the before/after figure for the reclamation work).
fn measure_memory(
    label: &str,
    ckt: &Circuit,
    gc_threshold: Option<usize>,
    records: &mut Vec<BenchRecord>,
) -> String {
    let cfg = EngineConfig {
        atpg: AtpgConfig {
            random: None,
            fault_sim: true,
            ..AtpgConfig::default()
        },
        workers: 2,
        broadcast: true,
        symbolic_audit: true,
        gc_threshold,
        cssg_shards: 1,
        settle_por: true,
        settle_cap: None,
    };
    let out = run_engine(ckt, &cfg).expect("engine runs");
    let peak = out
        .workers
        .iter()
        .map(|w| w.bdd_peak_unique)
        .max()
        .unwrap_or(0);
    let reclaimed: usize = out.workers.iter().map(|w| w.bdd_reclaimed).sum();
    let sweeps: usize = out.workers.iter().map(|w| w.bdd_gc_runs).sum();
    let policy = match gc_threshold {
        Some(t) => format!("gc{t}"),
        None => "immortal".to_string(),
    };
    records.push(record(
        "engine_memory",
        format!("{label}/{policy}"),
        peak as f64,
        "nodes",
    ));
    format!(
        "{{\"bench\":\"engine_memory\",\"workload\":\"{label}\",\"policy\":\"{policy}\",\
         \"bdd_peak_unique\":{peak},\"bdd_reclaimed\":{reclaimed},\"gc_sweeps\":{sweeps}}}"
    )
}

/// Sharded-CSSG-construction probe: wall clock of
/// [`build_cssg_sharded`] vs shard count, on the workload whose serial
/// build dominates engine start-up (a deep Muller pipeline).
fn measure_cssg_shards(
    label: &str,
    ckt: &Circuit,
    shards: usize,
    reps: u32,
    records: &mut Vec<BenchRecord>,
) -> (u128, String) {
    let cfg = CssgConfig::default();
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..=reps {
        let t = Instant::now();
        let cssg = build_cssg_sharded(ckt, &cfg, shards).expect("CSSG builds");
        let us = t.elapsed().as_micros();
        if last.is_some() || reps == 0 {
            best = best.min(us);
        }
        last = Some(cssg);
    }
    let cssg = last.expect("built at least once");
    let json = format!(
        "{{\"bench\":\"cssg_shard_scaling\",\"workload\":\"{label}\",\"shards\":{shards},\
         \"best_us\":{best},\"states\":{},\"edges\":{},\"truncated\":{}}}",
        cssg.num_states(),
        cssg.num_edges(),
        cssg.pruned_truncated(),
    );
    records.push(record(
        "cssg_shard_scaling",
        format!("{label}/s{shards}"),
        best as f64,
        "us",
    ));
    records.push(record(
        "cssg_shard_scaling",
        format!("{label}/s{shards}/states"),
        cssg.num_states() as f64,
        "states",
    ));
    (best, json)
}

/// Settling-engine probe: CSSG construction across the muller coverage
/// boundary, POR against the legacy naive walk, reporting the
/// explored-vs-saved ledger.  The `legacy` policy is the pre-PR-5
/// configuration (naive walk, fixed 2^15 cap) whose truncation the
/// coverage sweep measured; `por` is the current default.
fn measure_settler(
    size: usize,
    por: bool,
    reps: u32,
    records: &mut Vec<BenchRecord>,
) -> (u128, String) {
    let ckt = nf::muller_pipeline(size);
    let cfg = if por {
        CssgConfig::default()
    } else {
        CssgConfig {
            por: false,
            settle_cap: CapPolicy::Fixed(1 << 15),
            ..CssgConfig::default()
        }
    };
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..=reps {
        let t = Instant::now();
        let cssg = build_cssg(&ckt, &cfg).expect("CSSG builds");
        let us = t.elapsed().as_micros();
        if last.is_some() || reps == 0 {
            best = best.min(us);
        }
        last = Some(cssg);
    }
    let cssg = last.expect("built at least once");
    let ss = *cssg.settle_stats();
    let naive_equiv = ss.states_explored + ss.por_pruned;
    let json = format!(
        "{{\"bench\":\"settler_scaling\",\"workload\":\"muller_pipe{size}\",\
         \"policy\":\"{}\",\"best_us\":{best},\"states\":{},\"edges\":{},\
         \"pruned_truncated\":{},\"settle_states\":{},\"por_pruned\":{},\
         \"por_savings_ratio\":{:.3}}}",
        if por { "por" } else { "legacy" },
        cssg.num_states(),
        cssg.num_edges(),
        cssg.pruned_truncated(),
        ss.states_explored,
        ss.por_pruned,
        ss.por_pruned as f64 / naive_equiv.max(1) as f64,
    );
    let policy = if por { "por" } else { "legacy" };
    records.push(record(
        "settler_scaling",
        format!("muller_pipe{size}/{policy}"),
        best as f64,
        "us",
    ));
    records.push(record(
        "settler_scaling",
        format!("muller_pipe{size}/{policy}/settle_states"),
        ss.states_explored as f64,
        "states",
    ));
    (best, json)
}

/// Random-stage probe: the classic fault-per-lane layout (one pattern
/// against 63 faults) vs the pattern-per-bit layout (64 patterns per
/// settling pass against one broadcast fault).  The JSON line carries
/// the stage's own telemetry — `patterns_evaluated / passes` is the
/// measured per-pass pattern parallelism (64 in pattern-per-bit mode).
fn measure_random(
    label: &str,
    ckt: &Circuit,
    pattern_parallel: bool,
    reps: u32,
    records: &mut Vec<BenchRecord>,
) -> (u128, String) {
    let cssg = build_cssg(ckt, &CssgConfig::default()).expect("CSSG builds");
    let faults = faults_for(ckt, FaultModel::InputStuckAt);
    let cfg = RandomTpgConfig {
        pattern_parallel,
        ..RandomTpgConfig::default()
    };
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..=reps {
        let t = Instant::now();
        let res = random_tpg(ckt, &cssg, &faults, &cfg);
        let us = t.elapsed().as_micros();
        if last.is_some() || reps == 0 {
            best = best.min(us);
        }
        last = Some(res);
    }
    let res = last.expect("ran at least once");
    let stats = res.stats();
    let covered = res.detected.len();
    let json = format!(
        "{{\"bench\":\"random_stage\",\"workload\":\"{label}\",\"mode\":\"{}\",\
         \"best_us\":{best},\"faults\":{},\"covered\":{covered},\
         \"passes\":{},\"patterns_evaluated\":{},\"patterns_per_pass\":{:.1}}}",
        if pattern_parallel {
            "ppsfp"
        } else {
            "fault_per_lane"
        },
        faults.len(),
        stats.passes,
        stats.patterns_evaluated,
        stats.patterns_evaluated as f64 / stats.passes.max(1) as f64,
    );
    let mode = if pattern_parallel {
        "ppsfp"
    } else {
        "fault_per_lane"
    };
    records.push(record(
        "random_stage",
        format!("{label}/{mode}"),
        best as f64,
        "us",
    ));
    records.push(record(
        "random_stage",
        format!("{label}/{mode}/covered"),
        covered as f64,
        "count",
    ));
    (best, json)
}

/// Fleet probe: the same no-random campaign partitioned across N
/// in-process peer daemons over loopback TCP, vs peer count.  The
/// wall clock includes the protocol round trips — the distribution
/// overhead the coordinator amortizes — while the verdict count pins
/// that the remote path did the work.
fn measure_fleet(
    label: &str,
    ckt: &Circuit,
    peers: &[String],
    n: usize,
    reps: u32,
    records: &mut Vec<BenchRecord>,
) -> (u128, String) {
    let spec = JobSpec {
        workers: 2,
        no_random: true,
        ..JobSpec::new(CircuitSpec::InlineCkt {
            text: satpg_netlist::to_ckt(ckt),
        })
    };
    let fc = FleetConfig {
        peers: peers[..n].to_vec(),
        ..FleetConfig::default()
    };
    let mut best = u128::MAX;
    let mut last = None;
    for _ in 0..=reps {
        let t = Instant::now();
        let out = run_fleet(&spec, &fc).expect("fleet campaign runs");
        let us = t.elapsed().as_micros();
        if last.is_some() || reps == 0 {
            best = best.min(us);
        }
        last = Some(out);
    }
    let out = last.expect("ran at least once");
    let json = format!(
        "{{\"bench\":\"fleet_scaling\",\"workload\":\"{label}\",\"peers\":{n},\
         \"best_us\":{best},\"faults\":{},\"coverage\":{:.2},\
         \"shards\":{},\"remote_verdicts\":{},\"merge_fallbacks\":{}}}",
        out.report.total(),
        out.report.coverage(),
        out.stats.shards,
        out.stats.remote_verdicts,
        out.stats.merge_fallbacks,
    );
    records.push(record(
        "fleet_scaling",
        format!("{label}/p{n}"),
        best as f64,
        "us",
    ));
    records.push(record(
        "fleet_scaling",
        format!("{label}/p{n}/coverage"),
        out.report.coverage(),
        "pct",
    ));
    (best, json)
}

fn main() {
    // `SATPG_BENCH_QUICK=1` (CI) shrinks every dimension: smaller
    // circuits, fewer worker counts, no repetitions.  Record keys stay
    // stable within a mode, so a quick report diffs against the
    // committed quick baseline (`ci/bench_baseline.json`).
    let quick = quick_mode();
    let mut records: Vec<BenchRecord> = Vec::new();
    let workloads: Vec<(&str, Circuit)> = if quick {
        vec![
            ("dme_ring3", dme_circuit(3)),
            ("muller_pipe6", nf::muller_pipeline(6)),
            ("arbiter4", nf::arbiter_tree(4)),
        ]
    } else {
        vec![
            ("dme_ring5", dme_circuit(5)),
            ("muller_pipe8", nf::muller_pipeline(8)),
            ("arbiter5", nf::arbiter_tree(5)),
        ]
    };
    let settler_cases: &[(usize, bool)] = if quick {
        &[(10, true), (12, true), (10, false)]
    } else {
        &[
            (16, true),
            (18, true),
            (19, true),
            (20, true),
            (22, true),
            (16, false),
            (19, false),
        ]
    };
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let (shard_label, shard_size) = if quick {
        ("muller_pipe10", 10)
    } else {
        ("muller_pipe16", 16)
    };
    let reps: u32 = if quick { 0 } else { 1 };
    let mut trajectory = String::from("[\n");
    let mut first = true;

    // Settling-engine scaling across the old muller truncation boundary:
    // POR at every size, the legacy naive/2^15 policy only where it is
    // affordable (its cost explodes past 18 — which is the point).
    for &(size, por) in settler_cases {
        let (best, json) = measure_settler(size, por, reps, &mut records);
        println!(
            "bench settler_scaling/muller_pipe{size}/{} {best:>10} us",
            if por { "por   " } else { "legacy" }
        );
        println!("{json}");
        if !first {
            trajectory.push_str(",\n");
        }
        first = false;
        let _ = write!(trajectory, "  {json}");
    }

    // Random-stage pattern parallelism: fault-per-lane vs
    // pattern-per-bit on each engine workload.
    for (label, ckt) in &workloads {
        for pp in [false, true] {
            let (best, json) = measure_random(label, ckt, pp, reps, &mut records);
            println!(
                "bench random_stage/{label}/{} {best:>10} us",
                if pp { "ppsfp " } else { "lanes " }
            );
            println!("{json}");
            if !first {
                trajectory.push_str(",\n");
            }
            first = false;
            let _ = write!(trajectory, "  {json}");
        }
    }

    // CSSG construction scaling on the build-bound workload.
    let shard_ckt = nf::muller_pipeline(shard_size);
    let mut shard_base = 0u128;
    for &shards in shard_counts {
        let (best, json) = measure_cssg_shards(shard_label, &shard_ckt, shards, reps, &mut records);
        if shards == 1 {
            shard_base = best;
        }
        let speedup = shard_base as f64 / best.max(1) as f64;
        println!(
            "bench cssg_shard_scaling/{shard_label}/s{shards:<2} {best:>10} us  (speedup x{speedup:.2})"
        );
        println!("{json}");
        if !first {
            trajectory.push_str(",\n");
        }
        first = false;
        let _ = write!(trajectory, "  {json}");
    }
    for (label, ckt) in &workloads {
        let mut base_us = 0u128;
        for &workers in worker_counts {
            let (best, json) = measure(label, ckt, workers, reps, &mut records);
            if workers == 1 {
                base_us = best;
            }
            let speedup = base_us as f64 / best.max(1) as f64;
            println!(
                "bench engine_scaling/{label}/w{workers:<2} {best:>10} us  (speedup x{speedup:.2})"
            );
            println!("{json}");
            if !first {
                trajectory.push_str(",\n");
            }
            first = false;
            let _ = write!(trajectory, "  {json}");
        }
        for gc in [None, Some(1usize << 10)] {
            let json = measure_memory(label, ckt, gc, &mut records);
            println!("{json}");
            trajectory.push_str(",\n");
            let _ = write!(trajectory, "  {json}");
        }
    }
    // Fleet scaling: the coordinator across 1..N in-process peer
    // daemons on a no-random muller workload (every class reaches the
    // distributed phase).
    let (fleet_label, fleet_size) = if quick {
        ("muller_pipe10", 10)
    } else {
        ("muller_pipe16", 16)
    };
    let peer_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let max_peers = peer_counts.iter().copied().max().unwrap_or(1);
    let peers: Vec<String> = (0..max_peers)
        .map(|_| {
            let server = Server::bind(ServeConfig::default()).expect("bind peer daemon");
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let _ = server.run();
            });
            addr
        })
        .collect();
    let fleet_ckt = nf::muller_pipeline(fleet_size);
    let mut fleet_base = 0u128;
    for &n in peer_counts {
        let (best, json) = measure_fleet(fleet_label, &fleet_ckt, &peers, n, reps, &mut records);
        if n == 1 {
            fleet_base = best;
        }
        let speedup = fleet_base as f64 / best.max(1) as f64;
        println!(
            "bench fleet_scaling/{fleet_label}/p{n:<2} {best:>10} us  (speedup x{speedup:.2})"
        );
        println!("{json}");
        trajectory.push_str(",\n");
        let _ = write!(trajectory, "  {json}");
    }
    trajectory.push_str("\n]\n");
    // Benches run with the package as CWD; anchor on the workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("target");
    let _ = std::fs::create_dir_all(&path);
    let out = path.join("engine_scaling.json");
    match std::fs::write(&out, &trajectory) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    let report = path.join("bench_report.json");
    match write_report(&records, &report) {
        Ok(()) => println!("wrote {} ({} records)", report.display(), records.len()),
        Err(e) => eprintln!("could not write {}: {e}", report.display()),
    }
}
