//! Whole-flow ATPG benchmarks: one representative circuit per table, plus
//! the ablations the paper's discussion motivates (random TPG on/off and
//! fault collapsing).

use criterion::{criterion_group, criterion_main, Criterion};
use satpg_bench::{synthesize, Style};
use satpg_core::{run_atpg, AtpgConfig};

fn bench_atpg(c: &mut Criterion) {
    let mut g = c.benchmark_group("atpg");
    g.sample_size(10);
    for (label, name, style) in [
        ("table1/mmu", "mmu", Style::SpeedIndependent),
        ("table1/master-read", "master-read", Style::SpeedIndependent),
        ("table2/sbuf-send-ctl", "sbuf-send-ctl", Style::BoundedDelay),
        ("table2/vbe6a-redundant", "vbe6a", Style::BoundedDelay),
    ] {
        let ckt = synthesize(name, style);
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(run_atpg(&ckt, &AtpgConfig::paper()).unwrap()))
        });
    }
    // Ablations on one circuit.
    let ckt = synthesize("mmu", Style::SpeedIndependent);
    g.bench_function("ablation/no-random", |b| {
        let cfg = AtpgConfig {
            random: None,
            ..AtpgConfig::paper()
        };
        b.iter(|| std::hint::black_box(run_atpg(&ckt, &cfg).unwrap()))
    });
    g.bench_function("ablation/collapsed", |b| {
        let cfg = AtpgConfig {
            collapse: true,
            ..AtpgConfig::paper()
        };
        b.iter(|| std::hint::black_box(run_atpg(&ckt, &cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_atpg);
criterion_main!(benches);
