//! Simulation engine comparison on a suite circuit: scalar ternary vs
//! 64-lane parallel ternary vs exhaustive interleaving — the §5.4 claim
//! that parallel+ternary makes random TPG and fault simulation cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use satpg_bench::{synthesize, Style};
use satpg_sim::{
    parallel_settle, settle_explicit, ternary_settle, ExplicitConfig, Injection, ParallelInjection,
    PlaneState,
};

fn bench_sim(c: &mut Criterion) {
    let ckt = synthesize("master-read", Style::SpeedIndependent);
    let s0 = ckt.initial_state();
    let pattern = 0b01;
    let mut g = c.benchmark_group("simulation");
    g.sample_size(30);
    g.bench_function("ternary_settle", |b| {
        b.iter(|| std::hint::black_box(ternary_settle(&ckt, s0, pattern, &Injection::none())))
    });
    g.bench_function("parallel_settle_64_lanes", |b| {
        let pinj = ParallelInjection::new(&vec![Injection::none(); 64]);
        let planes = PlaneState::broadcast(s0);
        b.iter(|| std::hint::black_box(parallel_settle(&ckt, &planes, pattern, &pinj)))
    });
    g.bench_function("explicit_settle_exact", |b| {
        let cfg = ExplicitConfig {
            ternary_fast_path: false,
            ..ExplicitConfig::for_circuit(&ckt)
        };
        b.iter(|| {
            std::hint::black_box(settle_explicit(&ckt, s0, pattern, &Injection::none(), &cfg))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
