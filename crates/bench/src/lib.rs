//! Benchmark harness: regenerates the paper's Tables 1 and 2 and hosts
//! the Criterion micro-benchmarks.
//!
//! * `cargo run -p satpg-bench --release --bin table1` — Table 1
//!   (speed-independent complex-gate circuits, Petrify stand-in);
//! * `cargo run -p satpg-bench --release --bin table2` — Table 2
//!   (bounded-delay two-level circuits with hazard-cover redundancy for
//!   `trimos-send`/`vbe10b`/`vbe6a`, SIS stand-in);
//! * `cargo run -p satpg-bench --release --bin ablation_k` — sensitivity
//!   of the CSSG to the test-cycle bound `k` (§4.1);
//! * `cargo bench` — Criterion benches for the substrates.

pub mod report;

use satpg_core::report::TableRow;
use satpg_core::{run_atpg, AtpgConfig, AtpgReport, FaultModel};
use satpg_netlist::Circuit;
use satpg_stg::synth::{complex_gate, two_level, Redundancy};
use satpg_stg::{suite, StateGraph};

/// Which synthesis backend to benchmark (the two tables).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Style {
    /// Complex-gate speed-independent netlists (Table 1).
    SpeedIndependent,
    /// Two-level bounded-delay netlists; the three designated circuits
    /// get redundant hazard covers (Table 2).
    BoundedDelay,
}

/// Synthesizes one suite benchmark in the given style.
///
/// # Panics
///
/// Panics if the bundled benchmark fails to synthesize (a bug, covered by
/// the suite's own tests).
pub fn synthesize(name: &str, style: Style) -> Circuit {
    let stg = suite::load(name).expect("known benchmark");
    let sg = StateGraph::build(&stg).expect("suite specs are well-formed");
    match style {
        Style::SpeedIndependent => complex_gate(&stg, &sg).expect("synthesizable"),
        Style::BoundedDelay => {
            let red = if suite::is_redundant(name) {
                Redundancy::AllPrimes
            } else {
                Redundancy::None
            };
            two_level(&stg, &sg, red).expect("synthesizable")
        }
    }
}

/// Runs both fault-model campaigns on one benchmark and returns
/// `(output-model report, input-model report)`.
pub fn run_benchmark(name: &str, style: Style) -> (AtpgReport, AtpgReport) {
    let ckt = synthesize(name, style);
    let input = run_atpg(&ckt, &AtpgConfig::paper()).expect("ATPG runs");
    let output = run_atpg(
        &ckt,
        &AtpgConfig {
            fault_model: FaultModel::OutputStuckAt,
            ..AtpgConfig::paper()
        },
    )
    .expect("ATPG runs");
    (output, input)
}

/// Builds one table row for a benchmark.
pub fn row(name: &str, style: Style) -> TableRow {
    let (output, input) = run_benchmark(name, style);
    TableRow::new(name, &output, &input)
}

/// All rows of a table, in the paper's order.
pub fn table_rows(style: Style) -> Vec<TableRow> {
    suite::NAMES.iter().map(|&n| row(n, style)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_both_styles() {
        let si = synthesize("converta", Style::SpeedIndependent);
        let bd = synthesize("converta", Style::BoundedDelay);
        assert!(bd.num_gates() >= si.num_gates());
    }

    #[test]
    fn one_row_has_consistent_columns() {
        let r = row("converta", Style::SpeedIndependent);
        assert_eq!(r.rnd + r.ph3 + r.sim, r.input_cov);
        assert!(r.input_tot >= r.output_tot);
        assert_eq!(r.output_cov, r.output_tot, "SI: 100% output stuck-at");
    }
}
