//! Sweep all two-level benchmarks: CSSG sizes (development aid).

use satpg_bench::{synthesize, Style};
use satpg_core::{build_cssg, CssgConfig};

fn main() {
    for &name in satpg_stg::suite::NAMES {
        let ckt = synthesize(name, Style::BoundedDelay);
        match build_cssg(&ckt, &CssgConfig::default()) {
            Ok(c) => println!(
                "{name:<16} gates={:<3} states={:<4} edges={:<5} nc={} unst={}",
                ckt.num_gates(),
                c.num_states(),
                c.num_edges(),
                c.pruned_nonconfluent(),
                c.pruned_unstable()
            ),
            Err(e) => println!("{name:<16} gates={:<3} ERROR {e}", ckt.num_gates()),
        }
    }
}
