//! Ad-hoc inspection of a two-level benchmark (development aid).

use satpg_bench::{synthesize, Style};
use satpg_core::{build_cssg, CssgConfig};
use satpg_sim::{settle_explicit, ExplicitConfig, Injection, Settle};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "alloc-outbound".into());
    let ckt = synthesize(&name, Style::BoundedDelay);
    println!("{ckt}");
    for (gi, g) in ckt.gates().iter().enumerate() {
        let out = ckt.gate_output(satpg_netlist::GateId(gi as u32));
        let ins: Vec<&str> = g.inputs.iter().map(|&s| ckt.signal_name(s)).collect();
        println!(
            "  gate {} = {}({})",
            ckt.signal_name(out),
            g.kind.name(),
            ins.join(", ")
        );
    }
    let cfg = ExplicitConfig::for_circuit(&ckt);
    for pattern in satpg_netlist::Pattern::all(ckt.num_inputs()) {
        let r = settle_explicit(
            &ckt,
            ckt.initial_state(),
            &pattern,
            &Injection::none(),
            &cfg,
        );
        let label = match &r {
            Settle::Confluent(_) => "confluent".to_string(),
            Settle::NonConfluent(v) => format!("NONCONFLUENT ({})", v.len()),
            Settle::Unstable(v) => format!("UNSTABLE ({})", v.len()),
            Settle::Truncated => "OVERFLOW".to_string(),
        };
        println!("  reset + pattern {pattern}: {label}");
    }
    match build_cssg(&ckt, &CssgConfig::default()) {
        Ok(c) => println!("CSSG: {} states {} edges", c.num_states(), c.num_edges()),
        Err(e) => println!("CSSG error: {e}"),
    }
}
