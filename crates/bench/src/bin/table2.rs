//! Regenerates Table 2: ATPG results on hazard-free bounded-delay
//! circuits (two-level synthesis with redundant hazard covers for
//! `trimos-send`, `vbe10b` and `vbe6a`, the SIS stand-in).

use satpg_bench::{table_rows, Style};
use satpg_core::report::format_table;

fn main() {
    let rows = table_rows(Style::BoundedDelay);
    print!(
        "{}",
        format_table(
            "Table 2: experimental results (hazard-free, bounded delays)",
            &rows
        )
    );
}
