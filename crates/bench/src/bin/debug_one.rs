//! Ad-hoc inspection of one benchmark (development aid).

use satpg_bench::{synthesize, Style};
use satpg_core::{build_cssg, output_stuck_faults, three_phase, CssgConfig, ThreePhaseConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "converta".into());
    let ckt = synthesize(&name, Style::SpeedIndependent);
    println!("{ckt}");
    for (gi, g) in ckt.gates().iter().enumerate() {
        let out = ckt.gate_output(satpg_netlist::GateId(gi as u32));
        let ins: Vec<&str> = g.inputs.iter().map(|&s| ckt.signal_name(s)).collect();
        println!(
            "  gate {} = {:?}({})",
            ckt.signal_name(out),
            g.kind,
            ins.join(", ")
        );
    }
    let cssg = build_cssg(&ckt, &CssgConfig::default()).unwrap();
    println!(
        "CSSG: {} states, {} edges (pruned nc={}, unst={})",
        cssg.num_states(),
        cssg.num_edges(),
        cssg.pruned_nonconfluent(),
        cssg.pruned_unstable()
    );
    for f in output_stuck_faults(&ckt) {
        let st = three_phase(&ckt, &cssg, &f, &ThreePhaseConfig::default());
        let txt = match &st {
            satpg_core::FaultStatus::Detected { sequence } => {
                format!("DETECTED {:?}", sequence.patterns)
            }
            other => format!("{other:?}"),
        };
        if !txt.starts_with("DETECTED") {
            println!("  {:<16} {}", f.name(&ckt), txt);
        }
    }
    println!("done");
}
