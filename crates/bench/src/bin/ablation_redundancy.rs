//! Ablation: the cost of hazard-cover redundancy (the Table 2 story).
//! For the three designated circuits, compare the two-level netlist with
//! and without redundant consensus cubes: the redundant version carries
//! untestable faults, lowering coverage and raising ATPG effort.

use satpg_core::{run_atpg, AtpgConfig};
use satpg_stg::synth::{two_level, Redundancy};
use satpg_stg::{suite, StateGraph};

fn main() {
    println!("ablation: two-level synthesis with vs without redundant hazard covers");
    println!(
        "{:<14} {:>10} {:>7} {:>7} {:>5} {:>9} {:>9}",
        "example", "redundancy", "in tot", "in cov", "unt", "cover %", "CPU(us)"
    );
    for name in ["trimos-send", "vbe10b", "vbe6a"] {
        let stg = suite::load(name).unwrap();
        let sg = StateGraph::build(&stg).unwrap();
        for (label, red) in [
            ("minimal", Redundancy::None),
            ("all-primes", Redundancy::AllPrimes),
        ] {
            let ckt = two_level(&stg, &sg, red).unwrap();
            let r = run_atpg(&ckt, &AtpgConfig::paper()).unwrap();
            println!(
                "{:<14} {:>10} {:>7} {:>7} {:>5} {:>8.2}% {:>9}",
                name,
                label,
                r.total(),
                r.covered(),
                r.untestable(),
                r.coverage(),
                r.us_total()
            );
        }
    }
}
