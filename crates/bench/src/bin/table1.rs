//! Regenerates Table 1: ATPG results on speed-independent circuits
//! (complex-gate synthesis, the Petrify stand-in).

use satpg_bench::{table_rows, Style};
use satpg_core::report::format_table;

fn main() {
    let rows = table_rows(Style::SpeedIndependent);
    print!(
        "{}",
        format_table("Table 1: experimental results (speed-independent)", &rows)
    );
}
