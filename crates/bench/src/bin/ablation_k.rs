//! Ablation: sensitivity of the synchronous abstraction to the test-cycle
//! bound `k` (§4.1).  Short test cycles prune slow-settling vectors,
//! shrinking the CSSG and with it the achievable fault coverage.

use satpg_bench::{synthesize, Style};
use satpg_core::{build_cssg, run_atpg, AtpgConfig, CssgConfig};

fn main() {
    let circuits = ["chu150", "master-read", "alloc-outbound", "vbe6a"];
    println!("ablation: CSSG and coverage vs transition bound k");
    println!(
        "{:<16} {:>4} {:>7} {:>7} {:>9} {:>9}",
        "example", "k", "states", "edges", "in cov", "in tot"
    );
    for name in circuits {
        let ckt = synthesize(name, Style::SpeedIndependent);
        let default_k = 4 * ckt.num_gates() + 4;
        for k in [2, 4, 8, 16, default_k] {
            let cfg = CssgConfig {
                k: Some(k),
                ..CssgConfig::default()
            };
            let Ok(cssg) = build_cssg(&ckt, &cfg) else {
                continue;
            };
            let atpg = AtpgConfig {
                cssg: cfg,
                ..AtpgConfig::paper()
            };
            let (cov, tot) = match run_atpg(&ckt, &atpg) {
                Ok(r) => (r.covered(), r.total()),
                Err(_) => (0, 0),
            };
            println!(
                "{:<16} {:>4} {:>7} {:>7} {:>9} {:>9}",
                name,
                k,
                cssg.num_states(),
                cssg.num_edges(),
                cov,
                tot
            );
        }
    }
}
