//! Durable perf records: bench runs emit `{bench, params, value, unit}`
//! records and write them to `target/bench_report.json`, the input
//! format of `satpg bench-diff`.
//!
//! A record's identity for diffing is `(bench, params, unit)` — two
//! runs are comparable exactly when they used the same workloads, which
//! the `SATPG_BENCH_QUICK` switch keeps stable within a mode (diff
//! quick against quick, full against full).

use satpg_core::json::Json;
use std::io;
use std::path::Path;

/// One measured value of one configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark family (e.g. `engine_scaling`, `settler_scaling`).
    pub bench: String,
    /// Configuration within the family (e.g. `dme_ring5/w4`).
    pub params: String,
    /// The measured value.
    pub value: f64,
    /// Unit: `us` (wall clock — skipped by `bench-diff
    /// --ignore-timing`), `pct` (higher is better), or a deterministic
    /// count (`states`, `nodes`, `count`, ...).
    pub unit: String,
}

/// Shorthand constructor.
pub fn record(bench: &str, params: impl Into<String>, value: f64, unit: &str) -> BenchRecord {
    BenchRecord {
        bench: bench.to_string(),
        params: params.into(),
        value,
        unit: unit.to_string(),
    }
}

/// Whether `SATPG_BENCH_QUICK` asks for the shrunk CI workloads.
pub fn quick_mode() -> bool {
    std::env::var("SATPG_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Renders records as the `bench_report.json` array.
pub fn render(records: &[BenchRecord]) -> String {
    Json::Arr(
        records
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("bench".to_string(), Json::str(&r.bench)),
                    ("params".to_string(), Json::str(&r.params)),
                    ("value".to_string(), Json::Float(r.value)),
                    ("unit".to_string(), Json::str(&r.unit)),
                ])
            })
            .collect(),
    )
    .render()
}

/// Writes the report, creating parent directories as needed.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_report(records: &[BenchRecord], path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, render(records) + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let recs = vec![
            record("engine_scaling", "dme_ring5/w4", 1234.0, "us"),
            record("engine_scaling", "dme_ring5/w4/coverage", 99.5, "pct"),
        ];
        let v = Json::parse(&render(&recs)).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("bench").unwrap().as_str(),
            Some("engine_scaling")
        );
        assert_eq!(arr[0].get("value").unwrap().as_f64(), Some(1234.0));
        assert_eq!(arr[1].get("unit").unwrap().as_str(), Some("pct"));
    }
}
