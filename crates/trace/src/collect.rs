//! The span collector: per-thread event buffers, the thread-local
//! parent stack, and the install/uninstall globals.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A span argument value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgValue {
    /// Any integer (signed storage wide enough for `u64`).
    Int(i128),
    /// A string.
    Str(String),
}

macro_rules! arg_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for ArgValue {
            fn from(v: $t) -> ArgValue {
                ArgValue::Int(v as i128)
            }
        }
    )*};
}
arg_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// Begin or end of a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

/// One recorded event.  A span contributes exactly one `Begin` and (once
/// its guard drops) one `End`, both in the buffer of the thread that
/// performed the action, in append order — so per-thread timestamps are
/// monotone and Begin/End nest properly by construction.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Begin or end.
    pub kind: EventKind,
    /// Span name (static: the instrumentation vocabulary is fixed).
    pub name: &'static str,
    /// Process-unique span id.
    pub id: u64,
    /// Parent span id; `0` for roots.
    pub parent: u64,
    /// Collector-assigned thread id (dense, starting at 1).
    pub tid: u64,
    /// Microseconds since the collector was installed.
    pub ts_us: u64,
    /// Arguments captured at open (empty on `End`).
    pub args: Vec<(&'static str, ArgValue)>,
}

/// One thread's event buffer.  The mutex is touched by the owning
/// thread and, rarely, the drainer — never by other worker threads.
struct ThreadBuf {
    tid: u64,
    events: Mutex<Vec<TraceEvent>>,
}

/// The process collector: owns every thread buffer and the time base.
pub struct TraceCollector {
    epoch: Instant,
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
    next_tid: AtomicU64,
}

impl TraceCollector {
    fn new() -> TraceCollector {
        TraceCollector {
            epoch: Instant::now(),
            buffers: Mutex::new(Vec::new()),
            next_tid: AtomicU64::new(1),
        }
    }

    fn register_thread(&self) -> Arc<ThreadBuf> {
        let buf = Arc::new(ThreadBuf {
            tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
        });
        self.buffers
            .lock()
            .expect("collector buffers")
            .push(buf.clone());
        buf
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// A copy of every event recorded so far, buffers in registration
    /// order, each in append (= time) order.  Events stay in place.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let buffers = self.buffers.lock().expect("collector buffers");
        let mut out = Vec::new();
        for b in buffers.iter() {
            out.extend(b.events.lock().expect("thread buffer").iter().cloned());
        }
        out
    }

    /// Takes every event recorded so far, leaving the buffers empty
    /// (threads stay registered and keep recording).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let buffers = self.buffers.lock().expect("collector buffers");
        let mut out = Vec::new();
        for b in buffers.iter() {
            out.append(&mut b.events.lock().expect("thread buffer"));
        }
        out
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every install/uninstall; thread-locals compare against it
/// to notice a stale cached buffer.
static GENERATION: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static COLLECTOR: Mutex<Option<Arc<TraceCollector>>> = Mutex::new(None);

/// Whether a collector is installed.  One relaxed load — the entire
/// cost of a [`span!`](crate::span) at a disabled site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a fresh collector process-wide, returning a handle for
/// draining.  Replaces any previous collector (whose open spans stop
/// recording their ends — prefer install-once-per-process, or drain
/// before replacing).
pub fn install() -> Arc<TraceCollector> {
    let c = Arc::new(TraceCollector::new());
    *COLLECTOR.lock().expect("collector slot") = Some(c.clone());
    GENERATION.fetch_add(1, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    c
}

/// Uninstalls the collector; subsequent [`span!`](crate::span) sites
/// return to the one-atomic-load fast path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *COLLECTOR.lock().expect("collector slot") = None;
    GENERATION.fetch_add(1, Ordering::SeqCst);
}

/// The currently installed collector, if any.
pub fn installed_collector() -> Option<Arc<TraceCollector>> {
    COLLECTOR.lock().expect("collector slot").clone()
}

struct ThreadTrace {
    generation: u64,
    collector: Option<Arc<TraceCollector>>,
    buf: Option<Arc<ThreadBuf>>,
    /// Open span ids, innermost last — the parent stack.
    stack: Vec<u64>,
}

thread_local! {
    static TLS: RefCell<ThreadTrace> = const {
        RefCell::new(ThreadTrace {
            generation: 0,
            collector: None,
            buf: None,
            stack: Vec::new(),
        })
    };
}

/// The id of the innermost open span on this thread (`0` if none).
/// Pass it to [`Span::enter_with_parent`] on another thread to build
/// cross-thread hierarchies (e.g. engine workers under the parallel
/// stage span).
pub fn current_span_id() -> u64 {
    TLS.with(|t| t.borrow().stack.last().copied().unwrap_or(0))
}

/// An open span; records its end when dropped.  Obtain via
/// [`span!`](crate::span) (or [`Span::enter_with_parent`] for
/// cross-thread parentage).  Guards should drop on the thread that
/// opened them — the normal RAII pattern — so the thread-local parent
/// stack stays consistent.
pub struct Span {
    id: u64,
    name: &'static str,
    /// Captured at open so the end lands in the same collector/buffer
    /// even if install/uninstall races the span's lifetime.
    sink: Option<(Arc<TraceCollector>, Arc<ThreadBuf>)>,
}

impl Span {
    /// The no-op guard every disabled site returns.
    #[inline]
    pub fn disabled() -> Span {
        Span {
            id: 0,
            name: "",
            sink: None,
        }
    }

    /// Opens a span whose parent is the innermost open span on this
    /// thread.  Use the [`span!`](crate::span) macro instead, which
    /// checks [`enabled`] first.
    pub fn enter(name: &'static str, args: Vec<(&'static str, ArgValue)>) -> Span {
        Span::open(name, None, args)
    }

    /// Opens a span under an explicit parent id (use
    /// [`current_span_id`] on the parent thread), for hierarchies that
    /// cross threads.
    pub fn enter_with_parent(
        name: &'static str,
        parent: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Span {
        if !enabled() {
            return Span::disabled();
        }
        Span::open(name, Some(parent), args)
    }

    fn open(name: &'static str, parent: Option<u64>, args: Vec<(&'static str, ArgValue)>) -> Span {
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            let generation = GENERATION.load(Ordering::SeqCst);
            if t.generation != generation {
                t.collector = installed_collector();
                t.buf = t.collector.as_ref().map(|c| c.register_thread());
                t.generation = generation;
            }
            let (Some(collector), Some(buf)) = (t.collector.clone(), t.buf.clone()) else {
                return Span::disabled();
            };
            let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
            let parent = parent.unwrap_or_else(|| t.stack.last().copied().unwrap_or(0));
            t.stack.push(id);
            {
                let mut events = buf.events.lock().expect("thread buffer");
                // Timestamp under the buffer lock: append order is
                // timestamp order even if a guard migrates threads.
                events.push(TraceEvent {
                    kind: EventKind::Begin,
                    name,
                    id,
                    parent,
                    tid: buf.tid,
                    ts_us: collector.now_us(),
                    args,
                });
            }
            Span {
                id,
                name,
                sink: Some((collector, buf)),
            }
        })
    }

    /// This span's id (`0` when disabled); the explicit parent for
    /// spans opened on other threads.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((collector, buf)) = self.sink.take() else {
            return;
        };
        {
            let mut events = buf.events.lock().expect("thread buffer");
            events.push(TraceEvent {
                kind: EventKind::End,
                name: self.name,
                id: self.id,
                parent: 0,
                tid: buf.tid,
                ts_us: collector.now_us(),
                args: Vec::new(),
            });
        }
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            if t.stack.last() == Some(&self.id) {
                t.stack.pop();
            } else if let Some(pos) = t.stack.iter().rposition(|&x| x == self.id) {
                // Out-of-order drop (guards stored in a struct, say):
                // remove just this id so outer parents stay correct.
                t.stack.remove(pos);
            }
        });
    }
}
