//! Chrome `trace_event` export: renders drained [`TraceEvent`]s as the
//! JSON Object Format (`{"traceEvents":[...]}`) that `chrome://tracing`
//! and Perfetto load directly.
//!
//! Events are written grouped by thread in append order, which is
//! timestamp order — so per-thread timestamps are monotone in the file.
//! Begin/End balance is enforced at render time: an `End` whose `Begin`
//! was drained earlier is dropped, and a span still open at drain time
//! gets a synthetic `End` at the thread's last timestamp.  Every file
//! this module writes therefore passes the minimal schema check
//! (`satpg trace-check`): balanced B/E per thread, monotone per-thread
//! timestamps.

use crate::collect::{ArgValue, EventKind, TraceEvent};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_begin(out: &mut String, ev: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"span_id\":{},\"parent\":{}",
        escape(ev.name),
        ev.tid,
        ev.ts_us,
        ev.id,
        ev.parent
    );
    for (k, v) in &ev.args {
        match v {
            ArgValue::Int(i) => {
                let _ = write!(out, ",\"{}\":{}", escape(k), i);
            }
            ArgValue::Str(s) => {
                let _ = write!(out, ",\"{}\":\"{}\"", escape(k), escape(s));
            }
        }
    }
    out.push_str("}}");
}

fn push_end(out: &mut String, tid: u64, ts_us: u64) {
    let _ = write!(
        out,
        "{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us}}}"
    );
}

/// Renders events (as returned by
/// [`TraceCollector::drain`](crate::TraceCollector::drain)) into a
/// Chrome trace JSON string.
pub fn render(events: &[TraceEvent], process_name: &str) -> String {
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    );
    for tid in tids {
        // Open span ids on this thread, innermost last.
        let mut open: Vec<u64> = Vec::new();
        let mut last_ts = 0u64;
        for ev in events.iter().filter(|e| e.tid == tid) {
            last_ts = last_ts.max(ev.ts_us);
            match ev.kind {
                EventKind::Begin => {
                    open.push(ev.id);
                    out.push_str(",\n");
                    push_begin(&mut out, ev);
                }
                EventKind::End => {
                    // An end whose begin was drained in an earlier
                    // batch has nothing to balance here: drop it.
                    if let Some(pos) = open.iter().rposition(|&id| id == ev.id) {
                        // Ends between `pos` and the top belong to
                        // spans that outlived this drain; close them
                        // synthetically so nesting stays balanced.
                        for _ in pos..open.len() {
                            open.pop();
                            out.push_str(",\n");
                            push_end(&mut out, tid, ev.ts_us);
                        }
                    }
                }
            }
        }
        // Spans still open at drain time: synthesize their ends.
        for _ in 0..open.len() {
            out.push_str(",\n");
            push_end(&mut out, tid, last_ts);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders and writes a trace file.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_file(path: &Path, events: &[TraceEvent], process_name: &str) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, render(events, process_name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, id: u64, tid: u64, ts: u64) -> TraceEvent {
        TraceEvent {
            kind,
            name: "t",
            id,
            parent: 0,
            tid,
            ts_us: ts,
            args: Vec::new(),
        }
    }

    fn balance(s: &str) -> (usize, usize) {
        let b = s.matches("\"ph\":\"B\"").count();
        let e = s.matches("\"ph\":\"E\"").count();
        (b, e)
    }

    #[test]
    fn balanced_input_stays_balanced() {
        let events = vec![
            ev(EventKind::Begin, 1, 1, 10),
            ev(EventKind::Begin, 2, 1, 20),
            ev(EventKind::End, 2, 1, 30),
            ev(EventKind::End, 1, 1, 40),
        ];
        let s = render(&events, "test");
        assert_eq!(balance(&s), (2, 2));
    }

    #[test]
    fn open_span_gets_synthetic_end() {
        let events = vec![
            ev(EventKind::Begin, 1, 1, 10),
            ev(EventKind::Begin, 2, 1, 20),
            ev(EventKind::End, 2, 1, 30),
            // span 1 still open at drain time
        ];
        let s = render(&events, "test");
        assert_eq!(balance(&s), (2, 2));
    }

    #[test]
    fn orphan_end_is_dropped() {
        let events = vec![
            // begin drained in a previous batch
            ev(EventKind::End, 7, 3, 30),
            ev(EventKind::Begin, 8, 3, 40),
            ev(EventKind::End, 8, 3, 50),
        ];
        let s = render(&events, "test");
        assert_eq!(balance(&s), (1, 1));
    }

    #[test]
    fn args_and_names_are_escaped() {
        let mut e = ev(EventKind::Begin, 1, 1, 10);
        e.args = vec![
            ("n", ArgValue::Int(42)),
            ("s", ArgValue::Str("a\"b\\c".into())),
        ];
        let events = vec![e, ev(EventKind::End, 1, 1, 20)];
        let s = render(&events, "test");
        assert!(s.contains("\"n\":42"), "{s}");
        assert!(s.contains("\"s\":\"a\\\"b\\\\c\""), "{s}");
    }
}
