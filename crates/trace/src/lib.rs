//! `satpg-trace` — hierarchical span tracing and a process-wide metrics
//! registry, with zero dependencies (std only, hand-rolled JSON like
//! `satpg_core::json`; every other crate in the workspace depends on
//! this one, so it can depend on nothing).
//!
//! Three pieces:
//!
//! * **Spans** ([`span!`], [`Span`]) — RAII guards recording wall-time,
//!   thread id and parentage (via a thread-local stack, or an explicit
//!   parent for cross-thread hierarchies).  Begin/End events go into a
//!   per-thread buffer whose lock is touched only by the owning thread
//!   and the drainer, so instrumented worker threads never synchronize
//!   with each other — work-stealing schedules are not perturbed.
//! * **Metrics** ([`metrics`], [`MetricsRegistry`]) — named counters,
//!   gauges and fixed log-2 bucket histograms behind cheap atomic
//!   handles.  The registry always counts (it needs no collector), and
//!   its snapshot is deterministic in shape: names sorted, buckets at
//!   fixed power-of-two boundaries.
//! * **Exporters** — a Chrome `trace_event` JSON writer ([`chrome`])
//!   loadable in `chrome://tracing` / Perfetto, and a metrics snapshot
//!   renderer that is byte-stable modulo the measured values.
//!
//! # Zero overhead when disabled
//!
//! With no collector installed, [`span!`] is one relaxed atomic load and
//! returns a no-op guard — no allocation, no time read, no thread-local
//! touch.  Installing a collector flips the global and bumps a
//! generation counter; threads lazily re-register their buffers when
//! they notice the stale generation.
//!
//! # Determinism boundary
//!
//! Nothing in this crate feeds back into computation: spans and metrics
//! are write-only telemetry, and the byte-stable report forms of the
//! engine never read them.  See `crates/trace/DESIGN.md`.

pub mod chrome;
mod collect;
mod metrics;

pub use collect::{
    current_span_id, enabled, install, installed_collector, uninstall, ArgValue, EventKind, Span,
    TraceCollector, TraceEvent,
};
pub use metrics::{
    metrics, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};

/// Opens a span: `span!("cssg.build")` or
/// `span!("cssg.build", gates = n, k = k)`.
///
/// Returns a [`Span`] guard; the span closes when the guard drops.
/// Argument values may be any integer type or string.  When no
/// collector is installed this is a single relaxed atomic load and a
/// no-op guard.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::Span::enter(
                $name,
                ::std::vec![$((::core::stringify!($key), $crate::ArgValue::from($val))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}
