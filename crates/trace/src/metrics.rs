//! The process-wide metrics registry: named counters, gauges and
//! fixed log-2 bucket histograms behind cheap atomic handles.
//!
//! Unlike spans, metrics need no installed collector — the registry is
//! always live (a counter increment is one relaxed `fetch_add`), which
//! is what lets the daemon keep counting when a telemetry subscriber
//! disconnects.  Handles are looked up by name once and cached by the
//! instrumentation site; the lookup itself takes a short-lived registry
//! lock, so resolve handles outside hot loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: bucket `0` holds the value `0`, bucket
/// `i` (1..=64) holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A monotone counter handle.  Cheap to clone; clones share the cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed level.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `d` (negative to decrease).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the level to at least `v` (a high-water mark).
    pub fn max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistoCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A histogram handle with fixed log-2 buckets, so the snapshot shape
/// is deterministic: value `0` lands in bucket `0`, value `v > 0` in
/// bucket `bits(v)` covering `[2^(bits-1), 2^bits)`.
#[derive(Clone)]
pub struct Histogram(Arc<HistoCore>);

/// The bucket index of `v`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// The registry: named metric cells.  Use the process-wide [`metrics`]
/// instance; a private registry (e.g. in tests) works identically.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistoCore>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.counters.lock().expect("metrics counters");
        Counter(
            m.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                .clone(),
        )
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.gauges.lock().expect("metrics gauges");
        Gauge(
            m.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0)))
                .clone(),
        )
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.histograms.lock().expect("metrics histograms");
        Histogram(
            m.entry(name.to_string())
                .or_insert_with(|| {
                    Arc::new(HistoCore {
                        count: AtomicU64::new(0),
                        sum: AtomicU64::new(0),
                        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    })
                })
                .clone(),
        )
    }

    /// Drops every metric.  Existing handles keep working but their
    /// cells are no longer reachable from snapshots — meant for tests.
    pub fn reset(&self) {
        self.counters.lock().expect("metrics counters").clear();
        self.gauges.lock().expect("metrics gauges").clear();
        self.histograms.lock().expect("metrics histograms").clear();
    }

    /// A point-in-time copy of every metric, names sorted.  Values may
    /// be mid-update torn across *different* metrics (each cell is read
    /// atomically) — fine for telemetry, never fed back into results.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics counters")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics gauges")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics histograms")
            .iter()
            .map(|(k, v)| HistogramSnapshot {
                name: k.clone(),
                count: v.count.load(Ordering::Relaxed),
                sum: v.sum.load(Ordering::Relaxed),
                buckets: v
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u32, n))
                    })
                    .collect(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One histogram, frozen.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `(index, count)`; bucket `0` holds value
    /// `0`, bucket `i` holds `[2^(i-1), 2^i)`.
    pub buckets: Vec<(u32, u64)>,
}

/// A frozen registry: counters and gauges as sorted `(name, value)`
/// lists, histograms as [`HistogramSnapshot`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl MetricsSnapshot {
    /// Renders the snapshot as one JSON object.  Byte-stable modulo the
    /// measured values: names sorted, fixed key order, fixed bucket
    /// boundaries — two runs recording the same values render the same
    /// bytes.
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, &h.name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            ));
            for (j, (b, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{b},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// The process-wide registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_deterministically_across_threads() {
        let reg = MetricsRegistry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = reg.counter("t.concurrent");
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("t.concurrent").get(), threads * per_thread);
    }

    #[test]
    fn histogram_buckets_are_exact_at_powers_of_two() {
        // Bucket 0 holds 0; bucket i holds [2^(i-1), 2^i): a power of
        // two sits at the *bottom* of its bucket, one less at the top
        // of the previous.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for e in 1..64u32 {
            let v = 1u64 << e;
            assert_eq!(bucket_of(v), e as usize + 1, "2^{e}");
            assert_eq!(bucket_of(v - 1), e as usize, "2^{e}-1");
            assert_eq!(bucket_of(v + 1), e as usize + 1, "2^{e}+1");
        }
        assert_eq!(bucket_of(u64::MAX), 64);

        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.buckets");
        for v in [0u64, 1, 1, 2, 3, 4, 1024, 1023, 1025] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.count, 9);
        assert_eq!(hs.sum, 3083);
        // (bucket, count): 0→1, 1→2 (the two 1s), 2→2 (2 and 3),
        // 3→1 (4), 10→1 (1023 in [512,1024)), 11→2 (1024, 1025).
        assert_eq!(
            hs.buckets,
            vec![(0, 1), (1, 2), (2, 2), (3, 1), (10, 1), (11, 2)]
        );
    }

    #[test]
    fn gauges_set_add_max() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("t.level");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.max(10);
        g.max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn snapshot_renders_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.gauge("z.gauge").set(-3);
        reg.histogram("h.one").record(8);
        let a = reg.snapshot();
        let b = reg.snapshot();
        assert_eq!(a, b);
        let s = a.to_json_string();
        assert_eq!(
            s,
            "{\"counters\":{\"a.first\":1,\"b.second\":2},\
             \"gauges\":{\"z.gauge\":-3},\
             \"histograms\":{\"h.one\":{\"count\":1,\"sum\":8,\"buckets\":[[4,1]]}}}"
        );
        let first = s.find("a.first").unwrap();
        let second = s.find("b.second").unwrap();
        assert!(first < second, "names sorted");
    }
}
