//! Span collector behaviour: parentage (nested and cross-thread),
//! drained-vs-live consistency, and the disabled fast path.
//!
//! Installing a collector is process-global, so every test here takes
//! one lock — the cases exercise different collectors but share the
//! global slot.

use satpg_trace::{
    chrome, current_span_id, enabled, install, span, uninstall, EventKind, Span, TraceEvent,
};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test poisons the lock; later tests still need it.
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn begin<'a>(events: &'a [TraceEvent], name: &str) -> &'a TraceEvent {
    events
        .iter()
        .find(|e| e.kind == EventKind::Begin && e.name == name)
        .unwrap_or_else(|| panic!("no begin event named {name}"))
}

#[test]
fn disabled_spans_are_noops() {
    let _g = lock();
    uninstall();
    assert!(!enabled());
    let s = span!("t.disabled", n = 1);
    assert_eq!(s.id(), 0);
    drop(s);
    assert_eq!(current_span_id(), 0);
}

#[test]
fn nested_parentage_follows_the_stack() {
    let _g = lock();
    let c = install();
    {
        let outer = span!("t.outer");
        assert_eq!(current_span_id(), outer.id());
        {
            let inner = span!("t.inner", depth = 2);
            assert_eq!(current_span_id(), inner.id());
        }
        let sibling = span!("t.sibling");
        drop(sibling);
    }
    uninstall();
    let events = c.drain();
    let outer = begin(&events, "t.outer");
    let inner = begin(&events, "t.inner");
    let sibling = begin(&events, "t.sibling");
    assert_eq!(outer.parent, 0, "outer is a root");
    assert_eq!(inner.parent, outer.id);
    assert_eq!(sibling.parent, outer.id, "stack popped back to outer");
    // Begin/End pair per span, on one thread, in timestamp order.
    assert_eq!(events.len(), 6);
    for w in events.windows(2) {
        assert!(w[0].ts_us <= w[1].ts_us, "per-thread monotone timestamps");
    }
}

#[test]
fn cross_thread_parentage_via_explicit_parent() {
    let _g = lock();
    let c = install();
    {
        let root = span!("t.root");
        let root_id = root.id();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(move || {
                    let w = Span::enter_with_parent("t.worker", root_id, Vec::new());
                    assert_eq!(current_span_id(), w.id(), "worker stack is local");
                });
            }
        });
    }
    uninstall();
    let events = c.drain();
    let root = begin(&events, "t.root");
    let workers: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Begin && e.name == "t.worker")
        .collect();
    assert_eq!(workers.len(), 2);
    for w in &workers {
        assert_eq!(w.parent, root.id, "explicit parent crosses threads");
        assert_ne!(w.tid, root.tid, "workers record on their own threads");
    }
}

#[test]
fn snapshot_matches_later_drain() {
    let _g = lock();
    let c = install();
    {
        let _a = span!("t.first");
    }
    let live = c.snapshot();
    {
        let _b = span!("t.second");
    }
    uninstall();
    let drained = c.drain();
    // The snapshot is a prefix of the drain: same events, same order.
    assert_eq!(live.len(), 2);
    assert_eq!(drained.len(), 4);
    for (l, d) in live.iter().zip(drained.iter()) {
        assert_eq!(l.id, d.id);
        assert_eq!(l.name, d.name);
        assert_eq!(l.ts_us, d.ts_us);
    }
    // And a drain empties the buffers.
    assert!(c.drain().is_empty());
}

#[test]
fn chrome_export_is_balanced_and_loads_as_json() {
    let _g = lock();
    let c = install();
    {
        let _outer = span!("t.render", k = 3, label = "muller");
        let _inner = span!("t.render.inner");
    }
    uninstall();
    let s = chrome::render(&c.drain(), "satpg-test");
    assert_eq!(
        s.matches("\"ph\":\"B\"").count(),
        s.matches("\"ph\":\"E\"").count()
    );
    assert!(s.contains("\"label\":\"muller\""), "{s}");
    assert!(s.contains("\"traceEvents\""));
}
