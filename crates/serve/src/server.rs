//! The daemon: listener, bounded job queue with backpressure, worker
//! pool, and per-connection streaming of job telemetry.
//!
//! Threading model:
//!
//! * one **accept loop** (the caller's thread in [`Server::run`]),
//!   polling a non-blocking listener so a `shutdown` request can stop
//!   it without a self-connect;
//! * one thread per **connection**, which parses request lines and, for
//!   a submitted job, forwards the job's event channel to the socket
//!   until the job finishes;
//! * a fixed **pool** of job executors popping the shared queue.  Each
//!   job runs the fault-parallel engine with its own per-job worker
//!   count; engine telemetry flows through an [`EngineSink`] adapter
//!   into the submitting connection's channel.
//!
//! Backpressure: a `submit` that arrives with the queue at
//! `queue_depth` is answered with a `rejected` event immediately — the
//! client decides whether to retry.  Memory: jobs share nothing but the
//! read-only circuit/CSSG `Arc`s from the cache; per-worker BDD
//! managers die with the job, and `gc_threshold` bounds them while it
//! runs, so daemon-lifetime memory stays bounded.

use crate::cache::{fnv64, SessionCache, SingleFlight};
use crate::job::resolve_circuit;
use crate::net::{read_line_capped, write_line, Conn, Listener};
use crate::proto::{event, JobSpec, Request, MAX_LINE_BYTES};
use satpg_core::json::Json;
use satpg_core::{
    build_cssg_sharded, faults_for, AtpgConfig, CssgConfig, FaultModel, ThreePhaseConfig,
};
use satpg_engine::{run_engine_on_streaming, EngineConfig, EngineEvent, EngineSink};
use satpg_netlist::to_ckt;
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address: `host:port` (port 0 picks an ephemeral port) or
    /// `unix:/path/to.sock`.
    pub addr: String,
    /// Job-executor threads (concurrent jobs).
    pub pool_workers: usize,
    /// Queue slots; a submit beyond this is rejected (backpressure).
    pub queue_depth: usize,
    /// LRU capacity of each cache level (circuits, CSSGs).
    pub cache_entries: usize,
    /// Default per-job engine workers (`0` = one per CPU).
    pub default_job_workers: usize,
    /// Default per-worker BDD GC threshold for jobs that do not set one.
    pub gc_threshold: Option<usize>,
    /// Directory for per-job Chrome trace-event files; `None` leaves
    /// the span collector uninstalled (spans cost one atomic load).
    pub trace_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            pool_workers: 2,
            queue_depth: 16,
            cache_entries: 64,
            default_job_workers: 0,
            gc_threshold: None,
            trace_out: None,
        }
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    tx: mpsc::Sender<Json>,
}

/// CSSG cache key: canonical-netlist hash, the transition bound, and a
/// hash of the settling policy ([`settle_signature`]).  Deliberately
/// *not* keyed by shard count — sharded and serial builds are
/// structurally identical, so either satisfies a request for the other —
/// but POR/naive walks and different cap policies get distinct keys:
/// where one truncates and the other does not, their graphs differ.
type CssgKey = (u64, Option<usize>, u64);

/// Hash of the settling policy a CSSG was built under: the POR flag,
/// the cap policy, the ternary fast path and the per-state pattern
/// budget (a budgeted graph covers fewer edges, so it must never be
/// served for an exhaustive request or vice versa).  `CapPolicy`'s
/// `Debug` form is a stable rendering of its parameters, so equal
/// policies hash equal.
fn settle_signature(cfg: &satpg_core::CssgConfig) -> u64 {
    fnv64(
        format!(
            "por={};cap={:?};fast={};budget={:?}",
            cfg.por, cfg.settle_cap, cfg.ternary_fast_path, cfg.pattern_budget
        )
        .as_bytes(),
    )
}

struct State {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    cache: Mutex<SessionCache>,
    /// Anti-stampede guard: concurrent misses on one CSSG key coalesce
    /// into a single build; the losers block on the winner.
    cssg_flight: SingleFlight<CssgKey>,
    /// CSSG constructions actually run (cache misses that built).
    cssg_builds: AtomicUsize,
    /// Requests that blocked on another job's in-flight build.
    cssg_waits: AtomicUsize,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    jobs_queued: AtomicUsize,
    jobs_running: AtomicUsize,
    jobs_done: AtomicUsize,
    jobs_failed: AtomicUsize,
    jobs_rejected: AtomicUsize,
    /// Max across jobs of the per-worker unique-table high-water mark:
    /// the daemon's RSS proxy for BDD memory.
    peak_bdd_nodes: AtomicUsize,
    /// Telemetry events a job emitted after its client disconnected.
    /// The events are lost (nowhere to send them) but the *count* is
    /// not — `status` reports it, and the job's metrics still land in
    /// the process registry regardless.
    events_dropped: AtomicUsize,
    /// Connections currently forwarding an accepted job's event stream;
    /// shutdown waits for this to drain so a completed job's final
    /// report is not cut off by process exit.
    streaming: AtomicUsize,
    started: Instant,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: Listener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener without accepting yet, so callers can learn
    /// the ephemeral port before starting the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = Listener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(State {
            cache: Mutex::new(SessionCache::new(cfg.cache_entries)),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cssg_flight: SingleFlight::new(),
            cssg_builds: AtomicUsize::new(0),
            cssg_waits: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            jobs_queued: AtomicUsize::new(0),
            jobs_running: AtomicUsize::new(0),
            jobs_done: AtomicUsize::new(0),
            jobs_failed: AtomicUsize::new(0),
            jobs_rejected: AtomicUsize::new(0),
            peak_bdd_nodes: AtomicUsize::new(0),
            events_dropped: AtomicUsize::new(0),
            streaming: AtomicUsize::new(0),
            started: Instant::now(),
        });
        if state.cfg.trace_out.is_some() {
            satpg_trace::install();
        }
        Ok(Server { listener, state })
    }

    /// The address clients should connect to (`host:port` with the real
    /// port, or `unix:/path`).
    pub fn local_addr(&self) -> String {
        self.listener.printable_addr()
    }

    /// Runs the daemon until a `shutdown` request: accepts connections,
    /// executes jobs, then drains the queue and joins the pool.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept-loop I/O failures (never the
    /// per-connection ones, which only end that connection).
    pub fn run(self) -> io::Result<()> {
        let pool: Vec<_> = (0..self.state.cfg.pool_workers.max(1))
            .map(|_| {
                let state = self.state.clone();
                std::thread::spawn(move || pool_loop(&state))
            })
            .collect();

        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok(conn) => {
                    let state = self.state.clone();
                    // Detached: a connection blocked on a slow client
                    // must not block shutdown of the daemon itself.
                    std::thread::spawn(move || {
                        let _ = handle_conn(&state, conn);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Stop accepting, wake idle executors, and let them drain what
        // was queued before the shutdown request.
        self.state.queue_cv.notify_all();
        for h in pool {
            let _ = h.join();
        }
        // Every job channel is closed now; give connections that are
        // still flushing a finished job's events a bounded grace period
        // so process exit does not truncate their final report.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.state.streaming.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

fn pool_loop(state: &Arc<State>) {
    loop {
        let job = {
            let mut q = state.queue.lock().expect("queue lock");
            loop {
                if let Some(j) = q.pop_front() {
                    // Gauge updated under the queue lock, like the
                    // counter below: enqueue/dequeue serialize here, so
                    // the gauge tracks the queue length exactly.
                    satpg_trace::metrics()
                        .gauge("serve.queue_depth")
                        .set(q.len() as i64);
                    break j;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = state.queue_cv.wait(q).expect("queue lock");
            }
        };
        state.jobs_queued.fetch_sub(1, Ordering::SeqCst);
        state.jobs_running.fetch_add(1, Ordering::SeqCst);
        execute(state, &job);
        state.jobs_running.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Adapter from engine telemetry to protocol events on the job channel.
struct ChannelSink<'a> {
    job: u64,
    cssg_cache: &'static str,
    cssg_shards: usize,
    tx: Mutex<mpsc::Sender<Json>>,
    /// The daemon-wide dropped-event ledger ([`State::events_dropped`]).
    events_dropped: &'a AtomicUsize,
}

impl ChannelSink<'_> {
    fn send(&self, ev: Json) {
        let m = satpg_trace::metrics();
        m.counter("serve.events_emitted").inc();
        // A disconnected client mutes the stream, not the ledger: the
        // job finishes (its verdicts still warm the cache), its stage
        // and worker counters still land in the metrics registry above,
        // and the muted sends are counted so `status` can report how
        // much telemetry went unobserved.
        if self.tx.lock().expect("sink lock").send(ev).is_err() {
            self.events_dropped.fetch_add(1, Ordering::SeqCst);
            m.counter("serve.events_dropped").inc();
        }
    }
}

impl EngineSink for ChannelSink<'_> {
    fn event(&self, ev: EngineEvent) {
        let j = self.job;
        match ev {
            EngineEvent::CssgReady {
                states,
                edges,
                truncated,
                settle_states,
                por_pruned,
                shards: _,
                us,
            } => self.send(event::stage(
                j,
                "cssg",
                vec![
                    ("cache".to_string(), Json::str(self.cssg_cache)),
                    ("states".to_string(), Json::int(states)),
                    ("edges".to_string(), Json::int(edges)),
                    ("truncated".to_string(), Json::int(truncated)),
                    ("settle_states".to_string(), Json::int(settle_states)),
                    ("por_pruned".to_string(), Json::int(por_pruned)),
                    // The daemon builds (or cache-serves) the CSSG
                    // itself, so the engine-side count is always 1;
                    // report the daemon's actual build fan-out instead.
                    ("shards".to_string(), Json::int(self.cssg_shards)),
                    ("us".to_string(), Json::int(us)),
                ],
            )),
            EngineEvent::RandomDone {
                resolved,
                passes,
                patterns,
                us,
            } => self.send(event::stage(
                j,
                "random",
                vec![
                    ("resolved".to_string(), Json::int(resolved)),
                    ("passes".to_string(), Json::int(passes)),
                    ("patterns_evaluated".to_string(), Json::int(patterns)),
                    ("us".to_string(), Json::int(us)),
                ],
            )),
            EngineEvent::ParallelStarted { workers, pending } => self.send(event::stage(
                j,
                "parallel",
                vec![
                    ("workers".to_string(), Json::int(workers)),
                    ("pending".to_string(), Json::int(pending)),
                ],
            )),
            EngineEvent::TestFound {
                worker,
                class,
                cycles,
            } => self.send(event::test(j, worker, class, cycles)),
            EngineEvent::WorkerDone { stats } => self.send(event::worker(j, &stats)),
            EngineEvent::MergeDone { fallbacks, us } => self.send(event::stage(
                j,
                "merge",
                vec![
                    ("fallbacks".to_string(), Json::int(fallbacks)),
                    ("us".to_string(), Json::int(us)),
                ],
            )),
        }
    }
}

fn execute(state: &Arc<State>, job: &QueuedJob) {
    let ckey = fnv64(job.spec.circuit.cache_text().as_bytes());
    {
        // The job root span: every CSSG/engine span opened below runs
        // on this pool thread (or carries an explicit parent), so the
        // whole campaign nests under one `job` slice in the trace.
        let _job_span =
            satpg_trace::span!("job", job = job.id, content_hash = format!("{ckey:016x}"));
        execute_inner(state, job, ckey);
    }
    // Drain *after* the root span closed so its End is in the file.
    // The collector is process-wide: with pool_workers > 1 a drain can
    // carry a concurrent job's events too (see crates/trace/DESIGN.md);
    // slices stay attributable through their `job` root spans.
    if let Some(dir) = &state.cfg.trace_out {
        if let Some(col) = satpg_trace::installed_collector() {
            let events = col.drain();
            let path = dir.join(format!("job-{}-{ckey:016x}.json", job.id));
            if let Err(e) = satpg_trace::chrome::write_file(&path, &events, "satpg-serve") {
                eprintln!("satpg serve: trace write {} failed: {e}", path.display());
            }
        }
    }
}

fn execute_inner(state: &Arc<State>, job: &QueuedJob, ckey: u64) {
    let send = |ev: Json| {
        let _ = job.tx.send(ev);
    };
    let fail = |msg: &str| {
        send(event::error(job.id, msg));
        state.jobs_failed.fetch_add(1, Ordering::SeqCst);
    };
    let m = satpg_trace::metrics();

    // --- Circuit: content-hash lookup, then parse/synthesize. ---
    let cached = state.cache.lock().expect("cache lock").get_circuit(ckey);
    let (ckt, ckt_cache) = match cached {
        Some(c) => (c, "hit"),
        None => match resolve_circuit(&job.spec.circuit) {
            Ok(c) => {
                let c = Arc::new(c);
                state.cache.lock().expect("cache lock").put_circuit(
                    ckey,
                    c.clone(),
                    job.spec.circuit.cache_text().len(),
                );
                (c, "miss")
            }
            Err(msg) => return fail(&msg),
        },
    };
    m.counter(if ckt_cache == "hit" {
        "serve.cache.circuit_hits"
    } else {
        "serve.cache.circuit_misses"
    })
    .inc();
    send(event::stage(
        job.id,
        "circuit",
        vec![
            ("cache".to_string(), Json::str(ckt_cache)),
            ("name".to_string(), Json::str(ckt.name())),
            ("gates".to_string(), Json::int(ckt.num_gates())),
            ("inputs".to_string(), Json::int(ckt.num_inputs())),
        ],
    ));

    // --- Engine configuration (also decides the CSSG build fan-out:
    // the abstraction builds with the job's worker count). ---
    let cfg = EngineConfig {
        atpg: AtpgConfig {
            cssg: CssgConfig {
                k: job.spec.k,
                pattern_budget: job.spec.pattern_budget,
                ..CssgConfig::default()
            },
            random: if job.spec.no_random {
                None
            } else {
                Some(satpg_core::RandomTpgConfig {
                    pattern_parallel: job.spec.pp_random,
                    ..Default::default()
                })
            },
            fault_model: if job.spec.output_model {
                FaultModel::OutputStuckAt
            } else {
                FaultModel::InputStuckAt
            },
            collapse: job.spec.collapse,
            fault_sim: true,
            three_phase: ThreePhaseConfig::scaled(&ckt),
        },
        workers: if job.spec.workers == 0 {
            state.cfg.default_job_workers
        } else {
            job.spec.workers
        },
        broadcast: true,
        symbolic_audit: true,
        gc_threshold: job.spec.gc_threshold.or(state.cfg.gc_threshold),
        cssg_shards: 0,
        settle_por: true,
        settle_cap: None,
    };

    // --- CSSG: keyed by canonical netlist text + transition bound + a
    // settle-policy signature (POR flag, cap policy, fast path), the
    // same key for sharded and serial builds (identical structure) but
    // distinct keys for POR and naive walks — their graphs agree only
    // where the naive walk completes, so they must not alias.
    // Concurrent misses on one key single-flight through `cssg_flight`:
    // the first requester builds, later ones block and then hit.
    let skey: CssgKey = (
        fnv64(to_ckt(&ckt).as_bytes()),
        job.spec.k,
        settle_signature(&cfg.atpg.cssg),
    );
    let shards = cfg.build_shards();
    let (cssg, cssg_cache, us_cssg) = loop {
        if let Some(g) = state.cache.lock().expect("cache lock").get_cssg(skey) {
            break (g, "hit", 0u128);
        }
        if state.cssg_flight.begin(skey) {
            // Double-check under the claim: the previous builder may
            // have filled the cache between our miss and the claim.
            // Peek, not get — the miss was already counted above.
            if let Some(g) = state.cache.lock().expect("cache lock").peek_cssg(skey) {
                state.cssg_flight.finish(&skey);
                break (g, "hit", 0u128);
            }
            let t0 = Instant::now();
            let built = build_cssg_sharded(&ckt, &cfg.atpg.cssg, shards);
            let outcome = match built {
                Ok(g) => {
                    let g = Arc::new(g);
                    state
                        .cache
                        .lock()
                        .expect("cache lock")
                        .put_cssg(skey, g.clone());
                    state.cssg_builds.fetch_add(1, Ordering::SeqCst);
                    Ok((g, "miss", t0.elapsed().as_micros()))
                }
                Err(e) => Err(e.to_string()),
            };
            // Release the claim on success *and* failure, or waiters
            // would hang on a key that will never be filled.
            state.cssg_flight.finish(&skey);
            match outcome {
                Ok(hit) => break hit,
                Err(msg) => return fail(&msg),
            }
        } else {
            state.cssg_waits.fetch_add(1, Ordering::SeqCst);
            state.cssg_flight.wait(&skey);
            // Loop: normally a cache hit now; on a failed or evicted
            // build this requester becomes the next builder.
        }
    };
    m.counter(if cssg_cache == "hit" {
        "serve.cache.cssg_hits"
    } else {
        "serve.cache.cssg_misses"
    })
    .inc();
    if cssg.num_edges() == 0 {
        return fail(&satpg_core::CoreError::NoValidVectors.to_string());
    }

    // --- Engine campaign, telemetry streamed through the sink. ---
    let faults = faults_for(&ckt, cfg.atpg.fault_model);
    let sink = ChannelSink {
        job: job.id,
        cssg_cache,
        cssg_shards: if cssg_cache == "hit" { 1 } else { shards },
        tx: Mutex::new(job.tx.clone()),
        events_dropped: &state.events_dropped,
    };
    let out = run_engine_on_streaming(&ckt, &cssg, &faults, &cfg, us_cssg, &sink);

    let peak = out
        .workers
        .iter()
        .map(|w| w.bdd_peak_unique)
        .max()
        .unwrap_or(0);
    state.peak_bdd_nodes.fetch_max(peak, Ordering::SeqCst);

    let mut body = out.to_json_value(true);
    if let Json::Obj(m) = &mut body {
        m.push((
            "cache".to_string(),
            Json::Obj(vec![
                ("circuit".to_string(), Json::str(ckt_cache)),
                ("cssg".to_string(), Json::str(cssg_cache)),
            ]),
        ));
    }
    send(event::report(job.id, body));
    state.jobs_done.fetch_add(1, Ordering::SeqCst);
}

fn status_json(state: &State) -> Json {
    let (cache, netlist_bytes, cssg_entries) = {
        let c = state.cache.lock().expect("cache lock");
        (c.to_json_value(), c.circuit_bytes(), c.cssg_entries())
    };
    event::status(vec![
        (
            "jobs".to_string(),
            Json::Obj(vec![
                (
                    "queued".to_string(),
                    Json::int(state.jobs_queued.load(Ordering::SeqCst)),
                ),
                (
                    "running".to_string(),
                    Json::int(state.jobs_running.load(Ordering::SeqCst)),
                ),
                (
                    "done".to_string(),
                    Json::int(state.jobs_done.load(Ordering::SeqCst)),
                ),
                (
                    "failed".to_string(),
                    Json::int(state.jobs_failed.load(Ordering::SeqCst)),
                ),
                (
                    "rejected".to_string(),
                    Json::int(state.jobs_rejected.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        ("cache".to_string(), cache),
        ("netlist_cache_bytes".to_string(), Json::int(netlist_bytes)),
        ("cssg_cache_entries".to_string(), Json::int(cssg_entries)),
        (
            "events_dropped".to_string(),
            Json::int(state.events_dropped.load(Ordering::SeqCst)),
        ),
        (
            "cssg_builds".to_string(),
            Json::int(state.cssg_builds.load(Ordering::SeqCst)),
        ),
        (
            "cssg_singleflight_waits".to_string(),
            Json::int(state.cssg_waits.load(Ordering::SeqCst)),
        ),
        (
            "peak_bdd_nodes".to_string(),
            Json::int(state.peak_bdd_nodes.load(Ordering::SeqCst)),
        ),
        ("queue_depth".to_string(), Json::int(state.cfg.queue_depth)),
        (
            "pool_workers".to_string(),
            Json::int(state.cfg.pool_workers.max(1)),
        ),
        (
            "uptime_us".to_string(),
            Json::int(state.started.elapsed().as_micros()),
        ),
    ])
}

fn handle_conn(state: &Arc<State>, mut conn: Conn) -> io::Result<()> {
    let mut reader = BufReader::new(conn.try_clone()?);
    loop {
        let line = match read_line_capped(&mut reader, MAX_LINE_BYTES) {
            Ok(Some(l)) => l,
            Ok(None) => return Ok(()),
            Err(e) => {
                // Over-long line: tell the peer why before dropping it.
                let _ = write_line(&mut conn, &event::rejected(&e.to_string()).render());
                return Err(e);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(msg) => write_line(&mut conn, &event::rejected(&msg).render())?,
            Ok(Request::Status) => write_line(&mut conn, &status_json(state).render())?,
            Ok(Request::Metrics) => write_line(
                &mut conn,
                &event::metrics(&satpg_trace::metrics().snapshot()).render(),
            )?,
            Ok(Request::Shutdown) => {
                state.shutdown.store(true, Ordering::SeqCst);
                state.queue_cv.notify_all();
                write_line(&mut conn, &event::shutdown_ok().render())?;
                return Ok(());
            }
            Ok(Request::Submit(spec)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    state.jobs_rejected.fetch_add(1, Ordering::SeqCst);
                    write_line(&mut conn, &event::rejected("shutting down").render())?;
                    continue;
                }
                let (tx, rx) = mpsc::channel::<Json>();
                let accepted = {
                    let mut q = state.queue.lock().expect("queue lock");
                    if q.len() >= state.cfg.queue_depth {
                        None
                    } else {
                        let id = state.next_job.fetch_add(1, Ordering::SeqCst);
                        q.push_back(QueuedJob {
                            id,
                            spec: *spec,
                            tx,
                        });
                        // Counted while the queue lock is held: an
                        // executor can only pop (and decrement) after
                        // this lock round, so the gauge never wraps.
                        state.jobs_queued.fetch_add(1, Ordering::SeqCst);
                        satpg_trace::metrics()
                            .gauge("serve.queue_depth")
                            .set(q.len() as i64);
                        Some((id, q.len()))
                    }
                };
                match accepted {
                    None => {
                        state.jobs_rejected.fetch_add(1, Ordering::SeqCst);
                        write_line(
                            &mut conn,
                            &event::rejected(&format!(
                                "queue full (depth {})",
                                state.cfg.queue_depth
                            ))
                            .render(),
                        )?;
                    }
                    Some((id, depth)) => {
                        state.queue_cv.notify_one();
                        write_line(&mut conn, &event::accepted(id, depth).render())?;
                        // Stream until the executor drops the sender
                        // (after the final report/error event).  The
                        // streaming gauge keeps shutdown from exiting
                        // the process before this flush completes.
                        state.streaming.fetch_add(1, Ordering::SeqCst);
                        let mut io_result = Ok(());
                        for ev in rx {
                            if let Err(e) = write_line(&mut conn, &ev.render()) {
                                io_result = Err(e);
                                break;
                            }
                        }
                        state.streaming.fetch_sub(1, Ordering::SeqCst);
                        io_result?;
                    }
                }
            }
        }
    }
}
