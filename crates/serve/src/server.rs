//! The daemon: listener, bounded job queue with backpressure, worker
//! pool, and per-connection streaming of job telemetry.
//!
//! Threading model:
//!
//! * one **accept loop** (the caller's thread in [`Server::run`]),
//!   polling a non-blocking listener so a `shutdown` request can stop
//!   it without a self-connect;
//! * one thread per **connection**, which parses request lines and, for
//!   a submitted job, forwards the job's event channel to the socket
//!   until the job finishes;
//! * a fixed **pool** of job executors popping the shared queue.  Each
//!   job runs the fault-parallel engine with its own per-job worker
//!   count; engine telemetry flows through an [`EngineSink`] adapter
//!   into the submitting connection's channel.
//!
//! Backpressure: a `submit` that arrives with the queue at
//! `queue_depth` is answered with a `rejected` event immediately — the
//! client decides whether to retry.  Memory: jobs share nothing but the
//! read-only circuit/CSSG `Arc`s from the cache; per-worker BDD
//! managers die with the job, and `gc_threshold` bounds them while it
//! runs, so daemon-lifetime memory stays bounded.

use crate::cache::{fnv64, SessionCache, SingleFlight};
use crate::fleet::{run_fleet_built, FleetConfig};
use crate::job::{job_atpg_config, resolve_circuit};
use crate::net::{read_line_capped, write_line, Conn, Listener};
use crate::proto::{event, CircuitSpec, JobSpec, Request, ShardSpec, MAX_LINE_BYTES};
use satpg_core::json::Json;
use satpg_core::stages::FaultPlan;
use satpg_core::{
    build_cssg_sharded, fault_simulate, faults_for, three_phase, Cssg, CssgConfig, FaultStatus,
    TestSequence,
};
use satpg_engine::{run_engine_on_streaming, EngineConfig, EngineEvent, EngineSink};
use satpg_netlist::{to_ckt, Circuit};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address: `host:port` (port 0 picks an ephemeral port) or
    /// `unix:/path/to.sock`.
    pub addr: String,
    /// Job-executor threads (concurrent jobs).
    pub pool_workers: usize,
    /// Queue slots; a submit beyond this is rejected (backpressure).
    pub queue_depth: usize,
    /// LRU capacity of each cache level (circuits, CSSGs).
    pub cache_entries: usize,
    /// Default per-job engine workers (`0` = one per CPU).
    pub default_job_workers: usize,
    /// Default per-worker BDD GC threshold for jobs that do not set one.
    pub gc_threshold: Option<usize>,
    /// Directory for per-job Chrome trace-event files; `None` leaves
    /// the span collector uninstalled (spans cost one atomic load).
    pub trace_out: Option<PathBuf>,
    /// Fleet peers (`host:port` / `unix:/path` daemon addresses).  When
    /// non-empty this daemon is a coordinator: submitted jobs are
    /// partitioned across the peers instead of running locally, with
    /// local recomputation covering whatever the fleet loses.
    pub peers: Vec<String>,
    /// Concurrent shard sessions this daemon accepts as a fleet peer.
    pub max_shards: usize,
    /// Classes per fleet shard; `0` sizes chunks automatically.
    pub fleet_chunk: usize,
    /// Reconnect attempts per lost peer before giving up on it.
    pub fleet_retries: usize,
    /// Milliseconds of in-flight silence before a peer is declared lost.
    pub fleet_timeout_ms: u64,
    /// Base reconnect backoff in milliseconds (doubled per attempt).
    pub fleet_backoff_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            pool_workers: 2,
            queue_depth: 16,
            cache_entries: 64,
            default_job_workers: 0,
            gc_threshold: None,
            trace_out: None,
            peers: Vec::new(),
            max_shards: 16,
            fleet_chunk: 0,
            fleet_retries: 2,
            fleet_timeout_ms: 10_000,
            fleet_backoff_ms: 50,
        }
    }
}

impl ServeConfig {
    /// The coordinator-side fleet tuning this config denotes.
    pub fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            peers: self.peers.clone(),
            chunk: self.fleet_chunk,
            max_retries: self.fleet_retries,
            peer_timeout_ms: self.fleet_timeout_ms,
            backoff_ms: self.fleet_backoff_ms,
        }
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    tx: mpsc::Sender<Json>,
}

/// CSSG cache key: canonical-netlist hash, the transition bound, and a
/// hash of the settling policy ([`settle_signature`]).  Deliberately
/// *not* keyed by shard count — sharded and serial builds are
/// structurally identical, so either satisfies a request for the other —
/// but POR/naive walks and different cap policies get distinct keys:
/// where one truncates and the other does not, their graphs differ.
type CssgKey = (u64, Option<usize>, u64);

/// Hash of the settling policy a CSSG was built under: the POR flag,
/// the cap policy, the ternary fast path and the per-state pattern
/// budget (a budgeted graph covers fewer edges, so it must never be
/// served for an exhaustive request or vice versa).  `CapPolicy`'s
/// `Debug` form is a stable rendering of its parameters, so equal
/// policies hash equal.
fn settle_signature(cfg: &satpg_core::CssgConfig) -> u64 {
    fnv64(
        format!(
            "por={};cap={:?};fast={};budget={:?}",
            cfg.por, cfg.settle_cap, cfg.ternary_fast_path, cfg.pattern_budget
        )
        .as_bytes(),
    )
}

struct State {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    cache: Mutex<SessionCache>,
    /// Anti-stampede guard: concurrent misses on one CSSG key coalesce
    /// into a single build; the losers block on the winner.
    cssg_flight: SingleFlight<CssgKey>,
    /// CSSG constructions actually run (cache misses that built).
    cssg_builds: AtomicUsize,
    /// Requests that blocked on another job's in-flight build.
    cssg_waits: AtomicUsize,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    jobs_queued: AtomicUsize,
    jobs_running: AtomicUsize,
    jobs_done: AtomicUsize,
    jobs_failed: AtomicUsize,
    jobs_rejected: AtomicUsize,
    /// Max across jobs of the per-worker unique-table high-water mark:
    /// the daemon's RSS proxy for BDD memory.
    peak_bdd_nodes: AtomicUsize,
    /// Telemetry events a job emitted after its client disconnected.
    /// The events are lost (nowhere to send them) but the *count* is
    /// not — `status` reports it, and the job's metrics still land in
    /// the process registry regardless.
    events_dropped: AtomicUsize,
    /// Connections currently forwarding an accepted job's event stream;
    /// shutdown waits for this to drain so a completed job's final
    /// report is not cut off by process exit.
    streaming: AtomicUsize,
    /// Fleet shard sessions currently executing on this daemon (as a
    /// peer); bounded by `max_shards`, drained at shutdown like
    /// `streaming`.
    shards_running: AtomicUsize,
    /// Coordinator-side fleet totals across jobs, surfaced in `status`
    /// so an operator (and the fault-injection suite) can see requeues.
    fleet_campaigns: AtomicUsize,
    fleet_retries: AtomicUsize,
    fleet_peer_deaths: AtomicUsize,
    fleet_remote_verdicts: AtomicUsize,
    fleet_fallbacks: AtomicUsize,
    started: Instant,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: Listener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener without accepting yet, so callers can learn
    /// the ephemeral port before starting the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = Listener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(State {
            cache: Mutex::new(SessionCache::new(cfg.cache_entries)),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cssg_flight: SingleFlight::new(),
            cssg_builds: AtomicUsize::new(0),
            cssg_waits: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            jobs_queued: AtomicUsize::new(0),
            jobs_running: AtomicUsize::new(0),
            jobs_done: AtomicUsize::new(0),
            jobs_failed: AtomicUsize::new(0),
            jobs_rejected: AtomicUsize::new(0),
            peak_bdd_nodes: AtomicUsize::new(0),
            events_dropped: AtomicUsize::new(0),
            streaming: AtomicUsize::new(0),
            shards_running: AtomicUsize::new(0),
            fleet_campaigns: AtomicUsize::new(0),
            fleet_retries: AtomicUsize::new(0),
            fleet_peer_deaths: AtomicUsize::new(0),
            fleet_remote_verdicts: AtomicUsize::new(0),
            fleet_fallbacks: AtomicUsize::new(0),
            started: Instant::now(),
        });
        if state.cfg.trace_out.is_some() {
            satpg_trace::install();
        }
        Ok(Server { listener, state })
    }

    /// The address clients should connect to (`host:port` with the real
    /// port, or `unix:/path`).
    pub fn local_addr(&self) -> String {
        self.listener.printable_addr()
    }

    /// Runs the daemon until a `shutdown` request: accepts connections,
    /// executes jobs, then drains the queue and joins the pool.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept-loop I/O failures (never the
    /// per-connection ones, which only end that connection).
    pub fn run(self) -> io::Result<()> {
        let pool: Vec<_> = (0..self.state.cfg.pool_workers.max(1))
            .map(|_| {
                let state = self.state.clone();
                std::thread::spawn(move || pool_loop(&state))
            })
            .collect();

        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok(conn) => {
                    let state = self.state.clone();
                    // Detached: a connection blocked on a slow client
                    // must not block shutdown of the daemon itself.
                    std::thread::spawn(move || {
                        let _ = handle_conn(&state, conn);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Stop accepting, wake idle executors, and let them drain what
        // was queued before the shutdown request.
        self.state.queue_cv.notify_all();
        for h in pool {
            let _ = h.join();
        }
        // Every job channel is closed now; give connections that are
        // still flushing a finished job's events — and shard sessions a
        // coordinator is still counting on — a bounded grace period so
        // process exit does not truncate their final report.
        let deadline = Instant::now() + Duration::from_secs(5);
        while (self.state.streaming.load(Ordering::SeqCst) > 0
            || self.state.shards_running.load(Ordering::SeqCst) > 0)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

fn pool_loop(state: &Arc<State>) {
    loop {
        let job = {
            let mut q = state.queue.lock().expect("queue lock");
            loop {
                if let Some(j) = q.pop_front() {
                    // Gauge updated under the queue lock, like the
                    // counter below: enqueue/dequeue serialize here, so
                    // the gauge tracks the queue length exactly.
                    satpg_trace::metrics()
                        .gauge("serve.queue_depth")
                        .set(q.len() as i64);
                    break j;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = state.queue_cv.wait(q).expect("queue lock");
            }
        };
        state.jobs_queued.fetch_sub(1, Ordering::SeqCst);
        state.jobs_running.fetch_add(1, Ordering::SeqCst);
        execute(state, &job);
        state.jobs_running.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Adapter from engine telemetry to protocol events on the job channel.
struct ChannelSink<'a> {
    job: u64,
    cssg_cache: &'static str,
    cssg_shards: usize,
    tx: Mutex<mpsc::Sender<Json>>,
    /// The daemon-wide dropped-event ledger ([`State::events_dropped`]).
    events_dropped: &'a AtomicUsize,
}

impl ChannelSink<'_> {
    fn send(&self, ev: Json) {
        let m = satpg_trace::metrics();
        m.counter("serve.events_emitted").inc();
        // A disconnected client mutes the stream, not the ledger: the
        // job finishes (its verdicts still warm the cache), its stage
        // and worker counters still land in the metrics registry above,
        // and the muted sends are counted so `status` can report how
        // much telemetry went unobserved.
        if self.tx.lock().expect("sink lock").send(ev).is_err() {
            self.events_dropped.fetch_add(1, Ordering::SeqCst);
            m.counter("serve.events_dropped").inc();
        }
    }
}

impl EngineSink for ChannelSink<'_> {
    fn event(&self, ev: EngineEvent) {
        let j = self.job;
        match ev {
            EngineEvent::CssgReady {
                states,
                edges,
                truncated,
                settle_states,
                por_pruned,
                shards: _,
                us,
            } => self.send(event::stage(
                j,
                "cssg",
                vec![
                    ("cache".to_string(), Json::str(self.cssg_cache)),
                    ("states".to_string(), Json::int(states)),
                    ("edges".to_string(), Json::int(edges)),
                    ("truncated".to_string(), Json::int(truncated)),
                    ("settle_states".to_string(), Json::int(settle_states)),
                    ("por_pruned".to_string(), Json::int(por_pruned)),
                    // The daemon builds (or cache-serves) the CSSG
                    // itself, so the engine-side count is always 1;
                    // report the daemon's actual build fan-out instead.
                    ("shards".to_string(), Json::int(self.cssg_shards)),
                    ("us".to_string(), Json::int(us)),
                ],
            )),
            EngineEvent::RandomDone {
                resolved,
                passes,
                patterns,
                us,
            } => self.send(event::stage(
                j,
                "random",
                vec![
                    ("resolved".to_string(), Json::int(resolved)),
                    ("passes".to_string(), Json::int(passes)),
                    ("patterns_evaluated".to_string(), Json::int(patterns)),
                    ("us".to_string(), Json::int(us)),
                ],
            )),
            EngineEvent::ParallelStarted { workers, pending } => self.send(event::stage(
                j,
                "parallel",
                vec![
                    ("workers".to_string(), Json::int(workers)),
                    ("pending".to_string(), Json::int(pending)),
                ],
            )),
            EngineEvent::TestFound {
                worker,
                class,
                cycles,
            } => self.send(event::test(j, worker, class, cycles)),
            EngineEvent::WorkerDone { stats } => self.send(event::worker(j, &stats)),
            EngineEvent::MergeDone { fallbacks, us } => self.send(event::stage(
                j,
                "merge",
                vec![
                    ("fallbacks".to_string(), Json::int(fallbacks)),
                    ("us".to_string(), Json::int(us)),
                ],
            )),
        }
    }
}

fn execute(state: &Arc<State>, job: &QueuedJob) {
    let ckey = fnv64(job.spec.circuit.cache_text().as_bytes());
    {
        // The job root span: every CSSG/engine span opened below runs
        // on this pool thread (or carries an explicit parent), so the
        // whole campaign nests under one `job` slice in the trace.
        let _job_span =
            satpg_trace::span!("job", job = job.id, content_hash = format!("{ckey:016x}"));
        execute_inner(state, job, ckey);
    }
    // Drain *after* the root span closed so its End is in the file.
    // The collector is process-wide: with pool_workers > 1 a drain can
    // carry a concurrent job's events too (see crates/trace/DESIGN.md);
    // slices stay attributable through their `job` root spans.
    if let Some(dir) = &state.cfg.trace_out {
        if let Some(col) = satpg_trace::installed_collector() {
            let events = col.drain();
            let path = dir.join(format!("job-{}-{ckey:016x}.json", job.id));
            if let Err(e) = satpg_trace::chrome::write_file(&path, &events, "satpg-serve") {
                eprintln!("satpg serve: trace write {} failed: {e}", path.display());
            }
        }
    }
}

/// Circuit lookup by content hash: cache hit, or resolve and fill.
fn cached_circuit(
    state: &Arc<State>,
    spec: &CircuitSpec,
    ckey: u64,
) -> Result<(Arc<Circuit>, &'static str), String> {
    let cached = state.cache.lock().expect("cache lock").get_circuit(ckey);
    let out = match cached {
        Some(c) => (c, "hit"),
        None => {
            let c = Arc::new(resolve_circuit(spec)?);
            state.cache.lock().expect("cache lock").put_circuit(
                ckey,
                c.clone(),
                spec.cache_text().len(),
            );
            (c, "miss")
        }
    };
    satpg_trace::metrics()
        .counter(if out.1 == "hit" {
            "serve.cache.circuit_hits"
        } else {
            "serve.cache.circuit_misses"
        })
        .inc();
    Ok(out)
}

/// CSSG lookup: keyed by canonical netlist text + transition bound + a
/// settle-policy signature (POR flag, cap policy, fast path), the same
/// key for sharded and serial builds (identical structure) but distinct
/// keys for POR and naive walks — their graphs agree only where the
/// naive walk completes, so they must not alias.  Concurrent misses on
/// one key single-flight through `cssg_flight`: the first requester
/// builds, later ones block and then hit.
fn cached_cssg(
    state: &Arc<State>,
    ckt: &Circuit,
    ccfg: &CssgConfig,
    skey: CssgKey,
    shards: usize,
) -> Result<(Arc<Cssg>, &'static str, u128), String> {
    let out = loop {
        if let Some(g) = state.cache.lock().expect("cache lock").get_cssg(skey) {
            break (g, "hit", 0u128);
        }
        if state.cssg_flight.begin(skey) {
            // Double-check under the claim: the previous builder may
            // have filled the cache between our miss and the claim.
            if let Some(g) = state.cache.lock().expect("cache lock").peek_cssg(skey) {
                state.cssg_flight.finish(&skey);
                break (g, "hit", 0u128);
            }
            let t0 = Instant::now();
            let built = build_cssg_sharded(ckt, ccfg, shards);
            let outcome = match built {
                Ok(g) => {
                    let g = Arc::new(g);
                    state
                        .cache
                        .lock()
                        .expect("cache lock")
                        .put_cssg(skey, g.clone());
                    state.cssg_builds.fetch_add(1, Ordering::SeqCst);
                    Ok((g, "miss", t0.elapsed().as_micros()))
                }
                Err(e) => Err(e.to_string()),
            };
            // Release the claim on success *and* failure, or waiters
            // would hang on a key that will never be filled.
            state.cssg_flight.finish(&skey);
            match outcome {
                Ok(hit) => break hit,
                Err(msg) => return Err(msg),
            }
        } else {
            state.cssg_waits.fetch_add(1, Ordering::SeqCst);
            state.cssg_flight.wait(&skey);
            // Loop: normally a cache hit now; on a failed or evicted
            // build this requester becomes the next builder.
        }
    };
    satpg_trace::metrics()
        .counter(if out.1 == "hit" {
            "serve.cache.cssg_hits"
        } else {
            "serve.cache.cssg_misses"
        })
        .inc();
    Ok(out)
}

fn execute_inner(state: &Arc<State>, job: &QueuedJob, ckey: u64) {
    let send = |ev: Json| {
        let _ = job.tx.send(ev);
    };
    let fail = |msg: &str| {
        send(event::error(job.id, msg));
        state.jobs_failed.fetch_add(1, Ordering::SeqCst);
    };

    // --- Circuit: content-hash lookup, then parse/synthesize. ---
    let (ckt, ckt_cache) = match cached_circuit(state, &job.spec.circuit, ckey) {
        Ok(hit) => hit,
        Err(msg) => return fail(&msg),
    };
    send(event::stage(
        job.id,
        "circuit",
        vec![
            ("cache".to_string(), Json::str(ckt_cache)),
            ("name".to_string(), Json::str(ckt.name())),
            ("gates".to_string(), Json::int(ckt.num_gates())),
            ("inputs".to_string(), Json::int(ckt.num_inputs())),
        ],
    ));

    // --- Engine configuration (also decides the CSSG build fan-out:
    // the abstraction builds with the job's worker count).  The flow
    // knobs come from `job_atpg_config` — the one spec→config mapping
    // every fleet node shares, which is what keeps a coordinator, its
    // peers and a local run computing identical class verdicts.
    let cfg = EngineConfig {
        atpg: job_atpg_config(&job.spec, &ckt),
        workers: if job.spec.workers == 0 {
            state.cfg.default_job_workers
        } else {
            job.spec.workers
        },
        broadcast: true,
        symbolic_audit: true,
        gc_threshold: job.spec.gc_threshold.or(state.cfg.gc_threshold),
        cssg_shards: 0,
        settle_por: true,
        settle_cap: None,
    };

    let skey: CssgKey = (
        fnv64(to_ckt(&ckt).as_bytes()),
        job.spec.k,
        settle_signature(&cfg.atpg.cssg),
    );
    let shards = cfg.build_shards();
    let (cssg, cssg_cache, us_cssg) = match cached_cssg(state, &ckt, &cfg.atpg.cssg, skey, shards) {
        Ok(hit) => hit,
        Err(msg) => return fail(&msg),
    };
    if cssg.num_edges() == 0 {
        return fail(&satpg_core::CoreError::NoValidVectors.to_string());
    }
    let faults = faults_for(&ckt, cfg.atpg.fault_model);

    // --- Coordinator path: with peers configured, the job fans out
    // across the fleet instead of running the local engine.  The merge
    // inside `run_fleet_built` recomputes whatever the fleet failed to
    // deliver, so this path's report matches the local path byte for
    // byte regardless of peer behavior.
    if !state.cfg.peers.is_empty() {
        send(event::stage(
            job.id,
            "fleet",
            vec![("peers".to_string(), Json::int(state.cfg.peers.len()))],
        ));
        let outcome = run_fleet_built(
            &ckt,
            &cssg,
            &faults,
            &cfg.atpg,
            &job.spec,
            &state.cfg.fleet_config(),
            us_cssg,
        );
        state.fleet_campaigns.fetch_add(1, Ordering::SeqCst);
        state
            .fleet_retries
            .fetch_add(outcome.stats.retries, Ordering::SeqCst);
        state
            .fleet_peer_deaths
            .fetch_add(outcome.stats.peer_deaths, Ordering::SeqCst);
        state
            .fleet_remote_verdicts
            .fetch_add(outcome.stats.remote_verdicts, Ordering::SeqCst);
        state
            .fleet_fallbacks
            .fetch_add(outcome.stats.merge_fallbacks, Ordering::SeqCst);
        let body = Json::Obj(vec![
            ("report".to_string(), outcome.report.to_json_value(true)),
            ("fleet".to_string(), outcome.stats.to_json_value()),
            (
                "cache".to_string(),
                Json::Obj(vec![
                    ("circuit".to_string(), Json::str(ckt_cache)),
                    ("cssg".to_string(), Json::str(cssg_cache)),
                ]),
            ),
        ]);
        send(event::report(job.id, body));
        state.jobs_done.fetch_add(1, Ordering::SeqCst);
        return;
    }

    // --- Engine campaign, telemetry streamed through the sink. ---
    let sink = ChannelSink {
        job: job.id,
        cssg_cache,
        cssg_shards: if cssg_cache == "hit" { 1 } else { shards },
        tx: Mutex::new(job.tx.clone()),
        events_dropped: &state.events_dropped,
    };
    let out = run_engine_on_streaming(&ckt, &cssg, &faults, &cfg, us_cssg, &sink);

    let peak = out
        .workers
        .iter()
        .map(|w| w.bdd_peak_unique)
        .max()
        .unwrap_or(0);
    state.peak_bdd_nodes.fetch_max(peak, Ordering::SeqCst);

    let mut body = out.to_json_value(true);
    if let Json::Obj(m) = &mut body {
        m.push((
            "cache".to_string(),
            Json::Obj(vec![
                ("circuit".to_string(), Json::str(ckt_cache)),
                ("cssg".to_string(), Json::str(cssg_cache)),
            ]),
        ));
    }
    send(event::report(job.id, body));
    state.jobs_done.fetch_add(1, Ordering::SeqCst);
}

fn status_json(state: &State) -> Json {
    let (cache, netlist_bytes, cssg_entries) = {
        let c = state.cache.lock().expect("cache lock");
        (c.to_json_value(), c.circuit_bytes(), c.cssg_entries())
    };
    event::status(vec![
        (
            "jobs".to_string(),
            Json::Obj(vec![
                (
                    "queued".to_string(),
                    Json::int(state.jobs_queued.load(Ordering::SeqCst)),
                ),
                (
                    "running".to_string(),
                    Json::int(state.jobs_running.load(Ordering::SeqCst)),
                ),
                (
                    "done".to_string(),
                    Json::int(state.jobs_done.load(Ordering::SeqCst)),
                ),
                (
                    "failed".to_string(),
                    Json::int(state.jobs_failed.load(Ordering::SeqCst)),
                ),
                (
                    "rejected".to_string(),
                    Json::int(state.jobs_rejected.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        (
            "fleet".to_string(),
            Json::Obj(vec![
                ("peers".to_string(), Json::int(state.cfg.peers.len())),
                (
                    "campaigns".to_string(),
                    Json::int(state.fleet_campaigns.load(Ordering::SeqCst)),
                ),
                (
                    "retries".to_string(),
                    Json::int(state.fleet_retries.load(Ordering::SeqCst)),
                ),
                (
                    "peer_deaths".to_string(),
                    Json::int(state.fleet_peer_deaths.load(Ordering::SeqCst)),
                ),
                (
                    "remote_verdicts".to_string(),
                    Json::int(state.fleet_remote_verdicts.load(Ordering::SeqCst)),
                ),
                (
                    "merge_fallbacks".to_string(),
                    Json::int(state.fleet_fallbacks.load(Ordering::SeqCst)),
                ),
                (
                    "shards_running".to_string(),
                    Json::int(state.shards_running.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        ("cache".to_string(), cache),
        ("netlist_cache_bytes".to_string(), Json::int(netlist_bytes)),
        ("cssg_cache_entries".to_string(), Json::int(cssg_entries)),
        (
            "events_dropped".to_string(),
            Json::int(state.events_dropped.load(Ordering::SeqCst)),
        ),
        (
            "cssg_builds".to_string(),
            Json::int(state.cssg_builds.load(Ordering::SeqCst)),
        ),
        (
            "cssg_singleflight_waits".to_string(),
            Json::int(state.cssg_waits.load(Ordering::SeqCst)),
        ),
        (
            "peak_bdd_nodes".to_string(),
            Json::int(state.peak_bdd_nodes.load(Ordering::SeqCst)),
        ),
        ("queue_depth".to_string(), Json::int(state.cfg.queue_depth)),
        (
            "pool_workers".to_string(),
            Json::int(state.cfg.pool_workers.max(1)),
        ),
        (
            "uptime_us".to_string(),
            Json::int(state.started.elapsed().as_micros()),
        ),
    ])
}

/// Writes one event line under the connection's writer lock.  The lock
/// is what lets a shard executor stream verdicts from its own thread
/// while the request loop answers broadcasts on the same socket.
fn send_event(writer: &Mutex<Conn>, ev: &Json) -> io::Result<()> {
    write_line(&mut *writer.lock().expect("conn write lock"), &ev.render())
}

/// A live shard session on this daemon acting as a fleet peer.
struct ShardSession {
    /// `(class, test)` pairs relayed by the coordinator's `broadcast`
    /// requests: appended by the connection thread, drained by cursor in
    /// [`execute_shard`] between classes.  Append-only, so a cursor is
    /// enough and no relay is ever lost to a race.
    broadcasts: Mutex<Vec<(usize, TestSequence)>>,
}

fn handle_conn(state: &Arc<State>, conn: Conn) -> io::Result<()> {
    let mut reader = BufReader::new(conn.try_clone()?);
    let writer = Arc::new(Mutex::new(conn));
    // Shard sessions on this connection, keyed by the correlation id
    // their `shard_submit` carried.  Connection-scoped on purpose: a
    // coordinator owns its peer link, so broadcasts cannot cross into
    // another coordinator's sessions.
    let sessions: Arc<Mutex<HashMap<u64, Arc<ShardSession>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    loop {
        let line = match read_line_capped(&mut reader, MAX_LINE_BYTES) {
            Ok(Some(l)) => l,
            Ok(None) => return Ok(()),
            Err(e) => {
                // Over-long line: tell the peer why before dropping it.
                let _ = send_event(&writer, &event::rejected(&e.to_string()));
                return Err(e);
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (req, id) = match Request::parse_with_id(&line) {
            Err(msg) => {
                send_event(&writer, &event::rejected(&msg))?;
                continue;
            }
            Ok(parsed) => parsed,
        };
        match req {
            Request::Status => send_event(&writer, &event::with_id(status_json(state), id))?,
            Request::Metrics => send_event(
                &writer,
                &event::with_id(event::metrics(&satpg_trace::metrics().snapshot()), id),
            )?,
            Request::Shutdown => {
                state.shutdown.store(true, Ordering::SeqCst);
                state.queue_cv.notify_all();
                send_event(&writer, &event::with_id(event::shutdown_ok(), id))?;
                return Ok(());
            }
            Request::Enlist => send_event(&writer, &event::with_id(event::enlisted(), id))?,
            Request::Broadcast { shard, class, test } => {
                let session = sessions.lock().expect("sessions lock").get(&shard).cloned();
                // A finished (or never-started) session is not an error:
                // completion races make stale relays routine, and the
                // coordinator's merge recomputes anything a missed relay
                // would have saved.
                let known = match session {
                    Some(s) => {
                        s.broadcasts
                            .lock()
                            .expect("broadcast lock")
                            .push((class, test));
                        true
                    }
                    None => false,
                };
                send_event(
                    &writer,
                    &event::with_id(event::broadcast_ok(shard, known), id),
                )?;
            }
            Request::ShardSubmit(spec) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    send_event(
                        &writer,
                        &event::with_id(event::rejected("shutting down"), id),
                    )?;
                    continue;
                }
                // Admission control mirrors the job queue's backpressure:
                // a rejected shard is requeued by the coordinator.
                if state.shards_running.fetch_add(1, Ordering::SeqCst) >= state.cfg.max_shards {
                    state.shards_running.fetch_sub(1, Ordering::SeqCst);
                    send_event(
                        &writer,
                        &event::with_id(
                            event::rejected(&format!("shard capacity ({})", state.cfg.max_shards)),
                            id,
                        ),
                    )?;
                    continue;
                }
                let shard = id.unwrap_or_else(|| state.next_job.fetch_add(1, Ordering::SeqCst));
                let session = Arc::new(ShardSession {
                    broadcasts: Mutex::new(Vec::new()),
                });
                sessions
                    .lock()
                    .expect("sessions lock")
                    .insert(shard, session.clone());
                send_event(
                    &writer,
                    &event::with_id(event::shard_accepted(shard, spec.classes.len()), id),
                )?;
                let state = state.clone();
                let writer = writer.clone();
                let sessions = sessions.clone();
                // Its own thread, not the job pool: shards must not
                // deadlock behind queued local jobs (or each other) on a
                // daemon that serves both roles.
                std::thread::spawn(move || {
                    execute_shard(&state, &writer, shard, id, &spec, &session);
                    sessions.lock().expect("sessions lock").remove(&shard);
                    state.shards_running.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Request::Submit(spec) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    state.jobs_rejected.fetch_add(1, Ordering::SeqCst);
                    send_event(
                        &writer,
                        &event::with_id(event::rejected("shutting down"), id),
                    )?;
                    continue;
                }
                let (tx, rx) = mpsc::channel::<Json>();
                let accepted = {
                    let mut q = state.queue.lock().expect("queue lock");
                    if q.len() >= state.cfg.queue_depth {
                        None
                    } else {
                        let jid = state.next_job.fetch_add(1, Ordering::SeqCst);
                        q.push_back(QueuedJob {
                            id: jid,
                            spec: *spec,
                            tx,
                        });
                        // Counted while the queue lock is held: an
                        // executor can only pop (and decrement) after
                        // this lock round, so the gauge never wraps.
                        state.jobs_queued.fetch_add(1, Ordering::SeqCst);
                        satpg_trace::metrics()
                            .gauge("serve.queue_depth")
                            .set(q.len() as i64);
                        Some((jid, q.len()))
                    }
                };
                match accepted {
                    None => {
                        state.jobs_rejected.fetch_add(1, Ordering::SeqCst);
                        send_event(
                            &writer,
                            &event::with_id(
                                event::rejected(&format!(
                                    "queue full (depth {})",
                                    state.cfg.queue_depth
                                )),
                                id,
                            ),
                        )?;
                    }
                    Some((jid, depth)) => {
                        state.queue_cv.notify_one();
                        send_event(&writer, &event::with_id(event::accepted(jid, depth), id))?;
                        // Stream until the executor drops the sender
                        // (after the final report/error event).  The
                        // streaming gauge keeps shutdown from exiting
                        // the process before this flush completes.
                        state.streaming.fetch_add(1, Ordering::SeqCst);
                        let mut io_result = Ok(());
                        for ev in rx {
                            if let Err(e) = send_event(&writer, &event::with_id(ev, id)) {
                                io_result = Err(e);
                                break;
                            }
                        }
                        state.streaming.fetch_sub(1, Ordering::SeqCst);
                        io_result?;
                    }
                }
            }
        }
    }
}

/// Runs one fleet shard: the assigned classes in ascending serial order,
/// each three-phase verdict streamed as a `shard_verdict` event.
///
/// Two screening rules keep redundant work down, both the engine
/// worker's exact rule (`cb > ca` and the test fault-simulates to a
/// hit) so the coordinator's serial merge replay re-derives every drop:
/// a test found *here* screens this shard's own remaining classes, and
/// coordinator-relayed broadcasts screen them too.
fn execute_shard(
    state: &Arc<State>,
    writer: &Arc<Mutex<Conn>>,
    shard: u64,
    id: Option<u64>,
    spec: &ShardSpec,
    session: &Arc<ShardSession>,
) {
    let reply = |ev: Json| {
        let _ = send_event(writer, &event::with_id(ev, id));
    };

    let _span = satpg_trace::span!("fleet.shard", shard = shard, classes = spec.classes.len());
    let ckey = fnv64(spec.job.circuit.cache_text().as_bytes());
    let (ckt, _) = match cached_circuit(state, &spec.job.circuit, ckey) {
        Ok(hit) => hit,
        Err(msg) => return reply(event::rejected(&msg)),
    };
    let acfg = job_atpg_config(&spec.job, &ckt);
    let skey: CssgKey = (
        fnv64(to_ckt(&ckt).as_bytes()),
        spec.job.k,
        settle_signature(&acfg.cssg),
    );
    let (cssg, _, _) = match cached_cssg(state, &ckt, &acfg.cssg, skey, 1) {
        Ok(hit) => hit,
        Err(msg) => return reply(event::rejected(&msg)),
    };
    if cssg.num_edges() == 0 {
        return reply(event::rejected(
            &satpg_core::CoreError::NoValidVectors.to_string(),
        ));
    }
    let faults = faults_for(&ckt, acfg.fault_model);
    let plan = FaultPlan::new(&ckt, &faults, acfg.collapse);
    if spec.classes.iter().any(|&c| c >= plan.len()) {
        return reply(event::rejected(&format!(
            "class index out of range (plan has {} classes)",
            plan.len()
        )));
    }

    let m = satpg_trace::metrics();
    m.counter("fleet.shards_executed").inc();
    // Does `test`, found at class `ca`, screen out pending class `cb`?
    let screens = |ca: usize, test: &TestSequence, cb: usize| -> bool {
        cb > ca
            && !fault_simulate(
                &ckt,
                &cssg,
                test,
                std::slice::from_ref(&plan.classes()[cb].representative),
            )
            .is_empty()
    };
    let mut pending: VecDeque<usize> = spec.classes.iter().copied().collect();
    let mut computed = 0usize;
    let mut dropped = 0usize;
    let mut seen = 0usize;
    while let Some(ci) = pending.pop_front() {
        let fresh: Vec<(usize, TestSequence)> = {
            let b = session.broadcasts.lock().expect("broadcast lock");
            b[seen..].to_vec()
        };
        seen += fresh.len();
        let mut ci_screened = false;
        if acfg.fault_sim {
            for (ca, test) in &fresh {
                ci_screened = ci_screened || screens(*ca, test, ci);
                pending.retain(|&cb| {
                    let hit = screens(*ca, test, cb);
                    dropped += usize::from(hit);
                    !hit
                });
            }
        }
        if ci_screened {
            dropped += 1;
            continue;
        }
        let verdict = three_phase(
            &ckt,
            &cssg,
            &plan.classes()[ci].representative,
            &acfg.three_phase,
        );
        if acfg.fault_sim {
            if let FaultStatus::Detected { sequence } = &verdict {
                pending.retain(|&cb| {
                    let hit = screens(ci, sequence, cb);
                    dropped += usize::from(hit);
                    !hit
                });
            }
        }
        reply(event::shard_verdict(shard, ci, &verdict));
        m.counter("fleet.shard_verdicts").inc();
        computed += 1;
    }
    reply(event::shard_result(shard, computed, dropped));
}
