//! Fault-injection fixtures for fleet tests.
//!
//! [`FaultyPeer`] is a TCP proxy placed in front of a *real* daemon.
//! Client→daemon traffic passes through untouched; daemon→client reply
//! traffic is interpreted line-by-line so one [`Mischief`] can strike at
//! a deterministic point in the reply stream — after the Nth reply line,
//! independent of timing.  That turns "the peer died mid-shard" from a
//! flaky race into a reproducible scenario: reply line 1 is the `enlist`
//! handshake, line 2 the `shard_accepted`, and every line after that a
//! verdict, so each failure mode lands at a chosen protocol state.
//!
//! This lives in the library (not a test helper file) so the integration
//! suite, the proptest harness and the CI fault battery all share one
//! proxy implementation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the proxy does to the daemon→client reply stream.  Reply lines
/// are counted from 1 per connection.
#[derive(Clone, Copy, Debug)]
pub enum Mischief {
    /// Forward everything faithfully (control case).
    Faithful,
    /// Forward `n` reply lines, then sever the connection both ways —
    /// the peer "process" dies mid-shard.
    KillAfter(usize),
    /// Forward reply line `n` only up to its midpoint, then sever — the
    /// connection drops mid-line, leaving the coordinator an
    /// unterminated JSON fragment.
    TruncateAt(usize),
    /// Delay every reply line after the `line`-th by `delay` — the peer
    /// stalls past the coordinator's in-flight timeout while the socket
    /// stays open.
    DelayAfter {
        /// Last reply line forwarded promptly.
        line: usize,
        /// Sleep applied before each later line.
        delay: Duration,
    },
    /// Replace reply line `n` with non-JSON garbage — the peer speaks,
    /// but nonsense.
    GarbageAt(usize),
}

/// A fault-injecting TCP proxy in front of a real daemon.
///
/// Listens on an ephemeral `127.0.0.1` port; every accepted connection
/// opens its own upstream connection and applies the configured
/// [`Mischief`] to the reply direction.  Dropping the fixture (or
/// calling [`FaultyPeer::kill`]) severs everything.
pub struct FaultyPeer {
    addr: String,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl FaultyPeer {
    /// Starts the proxy in front of `upstream` (a `host:port` daemon
    /// address).
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn spawn(upstream: &str, mischief: Mischief) -> std::io::Result<FaultyPeer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?.to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let stop = stop.clone();
            let conns = conns.clone();
            let upstream = upstream.to_string();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let _ = client.set_nonblocking(false);
                            let Ok(server) = TcpStream::connect(&upstream) else {
                                let _ = client.shutdown(Shutdown::Both);
                                continue;
                            };
                            {
                                let mut c = conns.lock().expect("conns lock");
                                if let (Ok(a), Ok(b)) = (client.try_clone(), server.try_clone()) {
                                    c.push(a);
                                    c.push(b);
                                }
                            }
                            pipe_pair(client, server, mischief);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        Ok(FaultyPeer { addr, stop, conns })
    }

    /// The address a coordinator should use as this peer.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Hard-kills the proxy: stops accepting and severs every open
    /// connection in both directions, client and upstream side alike.
    /// (The upstream daemon itself stays healthy — it just sees EOF.)
    pub fn kill(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in self.conns.lock().expect("conns lock").drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for FaultyPeer {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Wires one proxied connection: a raw request-direction copier and a
/// line-aware, mischief-applying reply-direction copier, each on its own
/// thread (detached; they exit on EOF or shutdown from either side).
fn pipe_pair(client: TcpStream, server: TcpStream, mischief: Mischief) {
    if let (Ok(mut from), Ok(mut to)) = (client.try_clone(), server.try_clone()) {
        std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = to.shutdown(Shutdown::Write);
        });
    }
    std::thread::spawn(move || {
        let mut reader = BufReader::new(server);
        let mut out = client;
        let mut line_no = 0usize;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            buf.clear();
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            line_no += 1;
            let sent = match mischief {
                Mischief::Faithful => out.write_all(&buf),
                Mischief::KillAfter(n) => {
                    if line_no > n || out.write_all(&buf).is_err() || line_no == n {
                        break;
                    }
                    Ok(())
                }
                Mischief::TruncateAt(n) => {
                    if line_no == n {
                        let _ = out.write_all(&buf[..buf.len() / 2]);
                        let _ = out.flush();
                        break;
                    }
                    out.write_all(&buf)
                }
                Mischief::DelayAfter { line, delay } => {
                    if line_no > line {
                        std::thread::sleep(delay);
                    }
                    out.write_all(&buf)
                }
                Mischief::GarbageAt(n) => {
                    if line_no == n {
                        out.write_all(b"%%% this is not JSON %%%\n")
                    } else {
                        out.write_all(&buf)
                    }
                }
            };
            if sent.is_err() || out.flush().is_err() {
                break;
            }
        }
        let _ = out.shutdown(Shutdown::Both);
        let _ = reader.into_inner().shutdown(Shutdown::Both);
    });
}
