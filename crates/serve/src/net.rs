//! Transport plumbing shared by the daemon and the client: a stream
//! that is either TCP or a Unix-domain socket, plus capped line I/O.

use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;

/// A connected byte stream (TCP or Unix socket).
pub(crate) enum Conn {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-domain transport.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// An independently readable/writable handle to the same socket.
    pub(crate) fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Bounds how long a read blocks (`None` restores blocking reads).
    /// The timeout is a socket property, so it is shared with clones.
    pub(crate) fn set_read_timeout(&self, d: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound listening socket.  `addr` strings starting with `unix:` bind
/// a Unix-domain socket at the given path; anything else is `host:port`.
pub(crate) enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix listener plus its path (unlinked on drop).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    pub(crate) fn bind(addr: &str) -> io::Result<Listener> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                return UnixListener::bind(path).map(|l| Listener::Unix(l, PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        TcpListener::bind(addr).map(Listener::Tcp)
    }

    /// The printable address clients should connect to.
    pub(crate) fn printable_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string()),
            #[cfg(unix)]
            Listener::Unix(_, p) => format!("unix:{}", p.display()),
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, p) = self {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Connects to a daemon address (`host:port` or `unix:/path`).
pub(crate) fn connect(addr: &str) -> io::Result<Conn> {
    if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        return UnixStream::connect(path).map(Conn::Unix);
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
    }
    TcpStream::connect(addr).map(Conn::Tcp)
}

/// Reads one `\n`-terminated line, enforcing a byte cap so an abusive
/// peer cannot balloon memory.  `Ok(None)` on clean EOF.
pub(crate) fn read_line_capped(r: &mut impl BufRead, cap: usize) -> io::Result<Option<String>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                None
            } else {
                Some(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        r.consume(n);
        if buf.len() > cap {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("request line exceeds {cap} bytes"),
            ));
        }
    }
}

/// One poll of a [`TimedLineReader`].
#[derive(Debug)]
pub(crate) enum LineRead {
    /// A complete line (newline stripped).
    Line(String),
    /// The read timed out before a full line arrived; buffered partial
    /// data is kept, so a later poll resumes exactly where this stopped.
    TimedOut,
    /// The peer closed the connection.  A partial unterminated line is
    /// discarded — line protocols treat a mid-line close as a dead peer.
    Eof,
}

/// A line reader over a socket with a read timeout set.  Unlike a
/// `BufRead` loop, a timeout here never corrupts framing: partial bytes
/// stay buffered across [`LineRead::TimedOut`] polls, which is what lets
/// a fleet coordinator watch a slow peer without losing sync with it.
pub(crate) struct TimedLineReader {
    conn: Conn,
    buf: Vec<u8>,
    /// Prefix of `buf` already scanned and known newline-free.
    scanned: usize,
    cap: usize,
}

impl TimedLineReader {
    pub(crate) fn new(conn: Conn, cap: usize) -> Self {
        TimedLineReader {
            conn,
            buf: Vec::new(),
            scanned: 0,
            cap,
        }
    }

    /// Polls for the next line; returns [`LineRead::TimedOut`] when the
    /// socket's read timeout expires first.
    pub(crate) fn next(&mut self) -> io::Result<LineRead> {
        loop {
            if let Some(off) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let pos = self.scanned + off;
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                self.scanned = 0;
                return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.cap {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("reply line exceeds {} bytes", self.cap),
                ));
            }
            let mut chunk = [0u8; 4096];
            match self.conn.read(&mut chunk) {
                Ok(0) => return Ok(LineRead::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineRead::TimedOut)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Writes one message line and flushes it (the stream stays line-buffered
/// from the peer's perspective).
pub(crate) fn write_line(w: &mut impl Write, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn capped_reader_splits_and_caps() {
        let data = b"one\ntwo\nlast-without-newline";
        let mut r = BufReader::new(&data[..]);
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap().as_deref(),
            Some("one")
        );
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap().as_deref(),
            Some("two")
        );
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap().as_deref(),
            Some("last-without-newline")
        );
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), None);

        let long = [b'x'; 100];
        let mut r = BufReader::new(&long[..]);
        assert!(read_line_capped(&mut r, 10).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn timed_reader_survives_timeouts_mid_line() {
        use std::io::Write;
        use std::os::unix::net::UnixStream;
        use std::time::Duration;
        let (a, mut w) = UnixStream::pair().unwrap();
        a.set_read_timeout(Some(Duration::from_millis(30))).unwrap();
        let mut r = TimedLineReader::new(Conn::Unix(a), 64);
        w.write_all(b"hel").unwrap();
        // A timeout mid-line keeps the partial bytes buffered.
        assert!(matches!(r.next().unwrap(), LineRead::TimedOut));
        w.write_all(b"lo\nwor").unwrap();
        match r.next().unwrap() {
            LineRead::Line(l) => assert_eq!(l, "hello"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(r.next().unwrap(), LineRead::TimedOut));
        drop(w);
        assert!(matches!(r.next().unwrap(), LineRead::Eof));
    }
}
