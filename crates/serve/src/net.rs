//! Transport plumbing shared by the daemon and the client: a stream
//! that is either TCP or a Unix-domain socket, plus capped line I/O.

use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;

/// A connected byte stream (TCP or Unix socket).
pub(crate) enum Conn {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-domain transport.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// An independently readable/writable handle to the same socket.
    pub(crate) fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound listening socket.  `addr` strings starting with `unix:` bind
/// a Unix-domain socket at the given path; anything else is `host:port`.
pub(crate) enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix listener plus its path (unlinked on drop).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    pub(crate) fn bind(addr: &str) -> io::Result<Listener> {
        if let Some(path) = addr.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                return UnixListener::bind(path).map(|l| Listener::Unix(l, PathBuf::from(path)));
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
        TcpListener::bind(addr).map(Listener::Tcp)
    }

    /// The printable address clients should connect to.
    pub(crate) fn printable_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string()),
            #[cfg(unix)]
            Listener::Unix(_, p) => format!("unix:{}", p.display()),
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, p) = self {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Connects to a daemon address (`host:port` or `unix:/path`).
pub(crate) fn connect(addr: &str) -> io::Result<Conn> {
    if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        return UnixStream::connect(path).map(Conn::Unix);
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ));
        }
    }
    TcpStream::connect(addr).map(Conn::Tcp)
}

/// Reads one `\n`-terminated line, enforcing a byte cap so an abusive
/// peer cannot balloon memory.  `Ok(None)` on clean EOF.
pub(crate) fn read_line_capped(r: &mut impl BufRead, cap: usize) -> io::Result<Option<String>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                None
            } else {
                Some(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        r.consume(n);
        if buf.len() > cap {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("request line exceeds {cap} bytes"),
            ));
        }
    }
}

/// Writes one message line and flushes it (the stream stays line-buffered
/// from the peer's perspective).
pub(crate) fn write_line(w: &mut impl Write, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn capped_reader_splits_and_caps() {
        let data = b"one\ntwo\nlast-without-newline";
        let mut r = BufReader::new(&data[..]);
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap().as_deref(),
            Some("one")
        );
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap().as_deref(),
            Some("two")
        );
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap().as_deref(),
            Some("last-without-newline")
        );
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), None);

        let long = [b'x'; 100];
        let mut r = BufReader::new(&long[..]);
        assert!(read_line_capped(&mut r, 10).is_err());
    }
}
