//! The JSON-lines wire protocol.
//!
//! Every message is one JSON object on one `\n`-terminated line.
//! Client → server messages carry a `"cmd"` key (`submit`, `status`,
//! `shutdown`); server → client messages carry an `"event"` key.  A
//! `submit` answers with `accepted` (or `rejected` under backpressure),
//! then streams `stage` / `test` / `worker` telemetry events, and
//! terminates the job with exactly one `report` or `error` event.
//!
//! All parsing is defensive: malformed input yields an `Err(String)`
//! suitable for an `error` event, never a panic (the line length and
//! JSON nesting depth are capped upstream).

use satpg_core::json::Json;
use satpg_core::{FaultStatus, TestSequence, UntestableReason};
use satpg_engine::WorkerStats;
use satpg_netlist::Pattern;

/// Hard cap on one request line (bytes), applied while reading.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// Hard cap on a requested transition bound `k`.
pub const MAX_K: usize = 1 << 16;

/// Hard cap on per-job engine workers.
pub const MAX_JOB_WORKERS: usize = 64;

/// Wire protocol version, echoed in the `enlisted` handshake so a fleet
/// coordinator can refuse peers speaking something else.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on classes in one `shard_submit`.
pub const MAX_SHARD_CLASSES: usize = 1 << 20;

/// Hard cap on one serialized pattern's bit length.
pub const MAX_PATTERN_BITS: usize = 1 << 16;

/// What circuit a job targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitSpec {
    /// A bundled benchmark by name, synthesized in `style`
    /// (`si`/`2l`/`2lr`).
    Bench {
        /// Benchmark name from `satpg list`.
        name: String,
        /// Synthesis style.
        style: String,
    },
    /// A generated family (`muller`/`arbiter`/`dme`/`seq`) at `size`.
    Family {
        /// Family name.
        name: String,
        /// Family size parameter.
        size: usize,
    },
    /// Inline `.g` STG text, synthesized in `style`.
    InlineG {
        /// The `.g` source.
        text: String,
        /// Synthesis style.
        style: String,
    },
    /// Inline `.ckt` netlist text.
    InlineCkt {
        /// The `.ckt` source.
        text: String,
    },
}

impl CircuitSpec {
    /// The canonical content string the circuit cache hashes.
    pub fn cache_text(&self) -> String {
        match self {
            CircuitSpec::Bench { name, style } => format!("bench\x1f{style}\x1f{name}"),
            CircuitSpec::Family { name, size } => format!("family\x1f{name}\x1f{size}"),
            CircuitSpec::InlineG { text, style } => format!("g\x1f{style}\x1f{text}"),
            CircuitSpec::InlineCkt { text } => format!("ckt\x1f{text}"),
        }
    }

    fn to_json_value(&self) -> Json {
        match self {
            CircuitSpec::Bench { name, style } => Json::Obj(vec![
                ("bench".to_string(), Json::str(name)),
                ("style".to_string(), Json::str(style)),
            ]),
            CircuitSpec::Family { name, size } => Json::Obj(vec![
                ("family".to_string(), Json::str(name)),
                ("size".to_string(), Json::int(*size)),
            ]),
            CircuitSpec::InlineG { text, style } => Json::Obj(vec![
                ("g".to_string(), Json::str(text)),
                ("style".to_string(), Json::str(style)),
            ]),
            CircuitSpec::InlineCkt { text } => {
                Json::Obj(vec![("ckt".to_string(), Json::str(text))])
            }
        }
    }

    fn from_json(v: &Json) -> Result<CircuitSpec, String> {
        let style = match v.get("style") {
            None => "si".to_string(),
            Some(s) => s
                .as_str()
                .ok_or("circuit.style must be a string")?
                .to_string(),
        };
        if !matches!(style.as_str(), "si" | "2l" | "2lr") {
            return Err(format!("unknown style `{style}` (si|2l|2lr)"));
        }
        if let Some(name) = v.get("bench") {
            let name = name.as_str().ok_or("circuit.bench must be a string")?;
            return Ok(CircuitSpec::Bench {
                name: name.to_string(),
                style,
            });
        }
        if let Some(name) = v.get("family") {
            let name = name.as_str().ok_or("circuit.family must be a string")?;
            let size = v
                .get("size")
                .and_then(Json::as_usize)
                .ok_or("circuit.size must be a non-negative integer")?;
            return Ok(CircuitSpec::Family {
                name: name.to_string(),
                size,
            });
        }
        if let Some(text) = v.get("g") {
            let text = text.as_str().ok_or("circuit.g must be a string")?;
            return Ok(CircuitSpec::InlineG {
                text: text.to_string(),
                style,
            });
        }
        if let Some(text) = v.get("ckt") {
            let text = text.as_str().ok_or("circuit.ckt must be a string")?;
            return Ok(CircuitSpec::InlineCkt {
                text: text.to_string(),
            });
        }
        Err("circuit must carry one of: bench, family, g, ckt".to_string())
    }
}

/// A job request: the circuit plus its flow knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The target circuit.
    pub circuit: CircuitSpec,
    /// Engine workers for this job; `0` uses the server default.
    pub workers: usize,
    /// Per-worker BDD GC threshold; `None` uses the server default.
    pub gc_threshold: Option<usize>,
    /// Target output stuck-at faults instead of input stuck-at.
    pub output_model: bool,
    /// Structurally collapse equivalent faults.
    pub collapse: bool,
    /// Skip the random-TPG stage.
    pub no_random: bool,
    /// Run the random stage pattern-per-bit: 64 patterns per settling
    /// pass against one broadcast fault.
    pub pp_random: bool,
    /// Explicit CSSG transition bound; `None` derives it.
    pub k: Option<usize>,
    /// Per-state CSSG pattern budget.  Required for circuits with more
    /// than 63 primary inputs (exhaustive enumeration stops there);
    /// `None` enumerates exhaustively.
    pub pattern_budget: Option<u64>,
}

impl JobSpec {
    /// A spec with default knobs.
    pub fn new(circuit: CircuitSpec) -> Self {
        JobSpec {
            circuit,
            workers: 0,
            gc_threshold: None,
            output_model: false,
            collapse: false,
            no_random: false,
            pp_random: false,
            k: None,
            pattern_budget: None,
        }
    }
}

/// One slice of a fleet campaign: the job's spec (so the peer resolves
/// the same circuit and flow knobs as the coordinator) plus the serial
/// class indices this peer should search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// The campaign's job spec; the peer derives its fault plan from it
    /// exactly as a local run would, so class indices agree.
    pub job: JobSpec,
    /// Serial class indices to search, in serial order.
    pub classes: Vec<usize>,
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a job.
    Submit(Box<JobSpec>),
    /// Ask for scheduler/cache counters.
    Status,
    /// Ask for a snapshot of the process-wide metrics registry
    /// (counters, gauges, histograms accumulated across every job the
    /// daemon has run — including jobs whose client disconnected).
    Metrics,
    /// Stop accepting work and exit once running jobs finish.
    Shutdown,
    /// Fleet handshake: ask the daemon to identify itself as a peer
    /// (answered with an `enlisted` event carrying the protocol version).
    Enlist,
    /// Run a slice of a fleet campaign, streaming one `shard_verdict`
    /// per computed class and a terminal `shard_result`.
    ShardSubmit(Box<ShardSpec>),
    /// Relay of a test found elsewhere in the fleet: the shard session
    /// `shard` may drop pending classes after `class` (in serial order)
    /// that the test already covers.
    Broadcast {
        /// The target shard session (the `id` its `shard_submit` carried).
        shard: u64,
        /// Serial class index of the broadcasting class.
        class: usize,
        /// The discovered test.
        test: TestSequence,
    },
}

/// Serializes a test sequence for the wire: one bit-0-first `0`/`1`
/// string per pattern.  Bitstrings are self-describing (their length is
/// the input count), so parsing needs no circuit context, and the
/// round-trip is exact for any width.
pub fn test_to_json(seq: &TestSequence) -> Json {
    Json::Arr(
        seq.patterns
            .iter()
            .map(|p| Json::str(p.to_string()))
            .collect(),
    )
}

/// Parses a wire test sequence (see [`test_to_json`]).
///
/// # Errors
///
/// A message on non-arrays, non-bitstring patterns or oversized widths.
pub fn test_from_json(v: &Json) -> Result<TestSequence, String> {
    let arr = match v {
        Json::Arr(a) => a,
        _ => return Err("test must be an array of pattern bitstrings".to_string()),
    };
    let mut patterns = Vec::with_capacity(arr.len());
    for p in arr {
        let s = p
            .as_str()
            .ok_or("test pattern must be a bitstring".to_string())?;
        if s.is_empty() || s.len() > MAX_PATTERN_BITS || !s.bytes().all(|b| b == b'0' || b == b'1')
        {
            return Err(format!("malformed test pattern `{s}`"));
        }
        let bytes = s.as_bytes();
        patterns.push(Pattern::from_fn(s.len(), |i| bytes[i] == b'1'));
    }
    Ok(TestSequence { patterns })
}

/// Serializes a fault verdict as `status` (+ `test` when detected)
/// fields, spliced into an enclosing object's field list.
pub fn verdict_fields(v: &FaultStatus) -> Vec<(String, Json)> {
    match v {
        FaultStatus::Detected { sequence } => vec![
            ("status".to_string(), Json::str("detected")),
            ("test".to_string(), test_to_json(sequence)),
        ],
        FaultStatus::Untestable(_) => vec![("status".to_string(), Json::str("untestable"))],
        FaultStatus::Aborted => vec![("status".to_string(), Json::str("aborted"))],
    }
}

/// Parses a verdict from an object carrying [`verdict_fields`].
///
/// # Errors
///
/// A message on unknown statuses or malformed tests.
pub fn verdict_from_json(v: &Json) -> Result<FaultStatus, String> {
    match v.get("status").and_then(Json::as_str) {
        Some("detected") => Ok(FaultStatus::Detected {
            sequence: test_from_json(v.get("test").ok_or("detected verdict requires `test`")?)?,
        }),
        Some("untestable") => Ok(FaultStatus::Untestable(
            UntestableReason::NoDistinguishingSequence,
        )),
        Some("aborted") => Ok(FaultStatus::Aborted),
        other => Err(format!("unknown verdict status {other:?}")),
    }
}

/// Splices a job spec's knob fields into a request's field list
/// (default-valued knobs are omitted to keep lines short).
fn job_fields(spec: &JobSpec, m: &mut Vec<(String, Json)>) {
    m.push(("circuit".to_string(), spec.circuit.to_json_value()));
    if spec.workers != 0 {
        m.push(("workers".to_string(), Json::int(spec.workers)));
    }
    if let Some(t) = spec.gc_threshold {
        m.push(("gc_threshold".to_string(), Json::int(t)));
    }
    if spec.output_model {
        m.push(("output_model".to_string(), Json::Bool(true)));
    }
    if spec.collapse {
        m.push(("collapse".to_string(), Json::Bool(true)));
    }
    if spec.no_random {
        m.push(("no_random".to_string(), Json::Bool(true)));
    }
    if spec.pp_random {
        m.push(("pp_random".to_string(), Json::Bool(true)));
    }
    if let Some(k) = spec.k {
        m.push(("k".to_string(), Json::int(k)));
    }
    if let Some(b) = spec.pattern_budget {
        m.push(("pattern_budget".to_string(), Json::int(b)));
    }
}

/// Parses the job-spec knob fields of a `submit`/`shard_submit` object.
fn job_from_json(v: &Json) -> Result<JobSpec, String> {
    let circuit = CircuitSpec::from_json(v.get("circuit").ok_or("request requires `circuit`")?)?;
    let usize_knob = |key: &str, max: usize| -> Result<Option<usize>, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(j) => {
                let n = j
                    .as_usize()
                    .ok_or(format!("`{key}` must be a non-negative integer"))?;
                if n > max {
                    return Err(format!("`{key}` {n} exceeds the cap {max}"));
                }
                Ok(Some(n))
            }
        }
    };
    let bool_knob = |key: &str| -> Result<bool, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(false),
            Some(j) => j.as_bool().ok_or(format!("`{key}` must be a boolean")),
        }
    };
    Ok(JobSpec {
        circuit,
        workers: usize_knob("workers", MAX_JOB_WORKERS)?.unwrap_or(0),
        gc_threshold: usize_knob("gc_threshold", usize::MAX / 2)?,
        output_model: bool_knob("output_model")?,
        collapse: bool_knob("collapse")?,
        no_random: bool_knob("no_random")?,
        pp_random: bool_knob("pp_random")?,
        k: usize_knob("k", MAX_K)?,
        pattern_budget: usize_knob("pattern_budget", usize::MAX / 2)?.map(|b| b as u64),
    })
}

impl Request {
    /// Renders the request as one protocol line (without the newline).
    pub fn to_json_value(&self) -> Json {
        self.to_json_with_id(None)
    }

    /// [`Request::to_json_value`] with a correlation id.  The server
    /// echoes the id on every reply line for this request, so multiple
    /// in-flight requests can share one connection — the fleet
    /// coordinator's peer pool depends on this.
    pub fn to_json_with_id(&self, id: Option<u64>) -> Json {
        let mut m: Vec<(String, Json)> = Vec::new();
        match self {
            Request::Status => m.push(("cmd".to_string(), Json::str("status"))),
            Request::Metrics => m.push(("cmd".to_string(), Json::str("metrics"))),
            Request::Shutdown => m.push(("cmd".to_string(), Json::str("shutdown"))),
            Request::Enlist => m.push(("cmd".to_string(), Json::str("enlist"))),
            Request::Submit(spec) => {
                m.push(("cmd".to_string(), Json::str("submit")));
                job_fields(spec, &mut m);
            }
            Request::ShardSubmit(spec) => {
                m.push(("cmd".to_string(), Json::str("shard_submit")));
                job_fields(&spec.job, &mut m);
                m.push((
                    "classes".to_string(),
                    Json::Arr(spec.classes.iter().map(|&c| Json::int(c)).collect()),
                ));
            }
            Request::Broadcast { shard, class, test } => {
                m.push(("cmd".to_string(), Json::str("broadcast")));
                m.push(("shard".to_string(), Json::int(*shard)));
                m.push(("class".to_string(), Json::int(*class)));
                m.push(("test".to_string(), test_to_json(test)));
            }
        }
        if let Some(id) = id {
            m.push(("id".to_string(), Json::int(id)));
        }
        Json::Obj(m)
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON, unknown commands,
    /// missing fields or out-of-range knobs.
    pub fn parse(line: &str) -> Result<Request, String> {
        Request::parse_with_id(line).map(|(req, _)| req)
    }

    /// [`Request::parse`] plus the optional `id` correlation field.
    ///
    /// # Errors
    ///
    /// Same as [`Request::parse`]; a non-integer `id` is also an error.
    pub fn parse_with_id(line: &str) -> Result<(Request, Option<u64>), String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(j) => Some(j.as_usize().ok_or("`id` must be a non-negative integer")? as u64),
        };
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request must carry a string `cmd`")?;
        let req = match cmd {
            "status" => Request::Status,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            "enlist" => Request::Enlist,
            "submit" => Request::Submit(Box::new(job_from_json(&v)?)),
            "shard_submit" => {
                let job = job_from_json(&v)?;
                let arr = match v.get("classes") {
                    Some(Json::Arr(a)) => a,
                    _ => return Err("shard_submit requires a `classes` array".to_string()),
                };
                if arr.len() > MAX_SHARD_CLASSES {
                    return Err(format!(
                        "`classes` count {} exceeds the cap {MAX_SHARD_CLASSES}",
                        arr.len()
                    ));
                }
                let classes = arr
                    .iter()
                    .map(|c| {
                        c.as_usize()
                            .ok_or("`classes` entries must be non-negative integers".to_string())
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
                Request::ShardSubmit(Box::new(ShardSpec { job, classes }))
            }
            "broadcast" => Request::Broadcast {
                shard: v
                    .get("shard")
                    .and_then(Json::as_usize)
                    .ok_or("broadcast requires an integer `shard`")? as u64,
                class: v
                    .get("class")
                    .and_then(Json::as_usize)
                    .ok_or("broadcast requires an integer `class`")?,
                test: test_from_json(v.get("test").ok_or("broadcast requires `test`")?)?,
            },
            other => return Err(format!("unknown command `{other}`")),
        };
        Ok((req, id))
    }
}

/// Builders for the server → client events.  Kept in one place so the
/// round-trip tests and both ends of the protocol agree on field names.
pub mod event {
    use super::*;

    fn base(kind: &str, job: Option<u64>) -> Vec<(String, Json)> {
        let mut m = vec![("event".to_string(), Json::str(kind))];
        if let Some(j) = job {
            m.push(("job".to_string(), Json::int(j)));
        }
        m
    }

    /// The job was queued.
    pub fn accepted(job: u64, queue_depth: usize) -> Json {
        let mut m = base("accepted", Some(job));
        m.push(("queue_depth".to_string(), Json::int(queue_depth)));
        Json::Obj(m)
    }

    /// The job was refused (backpressure or shutdown).
    pub fn rejected(reason: &str) -> Json {
        let mut m = base("rejected", None);
        m.push(("reason".to_string(), Json::str(reason)));
        Json::Obj(m)
    }

    /// The job failed; this is the job's final event.
    pub fn error(job: u64, message: &str) -> Json {
        let mut m = base("error", Some(job));
        m.push(("message".to_string(), Json::str(message)));
        Json::Obj(m)
    }

    /// A stage transition with stage-specific `data` fields.
    pub fn stage(job: u64, name: &str, data: Vec<(String, Json)>) -> Json {
        let mut m = base("stage", Some(job));
        m.push(("stage".to_string(), Json::str(name)));
        m.extend(data);
        Json::Obj(m)
    }

    /// A worker found a test.
    pub fn test(job: u64, worker: usize, class: usize, cycles: usize) -> Json {
        let mut m = base("test", Some(job));
        m.push(("worker".to_string(), Json::int(worker)));
        m.push(("class".to_string(), Json::int(class)));
        m.push(("cycles".to_string(), Json::int(cycles)));
        Json::Obj(m)
    }

    /// A worker finished; full per-worker telemetry.
    pub fn worker(job: u64, stats: &WorkerStats) -> Json {
        let mut m = base("worker", Some(job));
        m.push(("stats".to_string(), stats.to_json_value(true)));
        Json::Obj(m)
    }

    /// The job's final report (engine JSON form plus cache flags).
    pub fn report(job: u64, body: Json) -> Json {
        let mut m = base("report", Some(job));
        if let Json::Obj(fields) = body {
            m.extend(fields);
        }
        Json::Obj(m)
    }

    /// The status snapshot.
    pub fn status(fields: Vec<(String, Json)>) -> Json {
        let mut m = base("status", None);
        m.extend(fields);
        Json::Obj(m)
    }

    /// A frozen metrics-registry snapshot: counters and gauges as
    /// name→value objects, histograms as `{count, sum, buckets}` with
    /// `buckets` the non-empty `[index, count]` pairs of the fixed
    /// log-2 layout (bucket `0` holds value `0`, bucket `i` holds
    /// `[2^(i-1), 2^i)`).  Names stay sorted, so the rendering is
    /// byte-stable for a given registry state.
    pub fn metrics(snap: &satpg_trace::MetricsSnapshot) -> Json {
        let mut m = base("metrics", None);
        m.push((
            "counters".to_string(),
            Json::Obj(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::int(*v)))
                    .collect(),
            ),
        ));
        m.push((
            "gauges".to_string(),
            Json::Obj(
                snap.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::int(*v)))
                    .collect(),
            ),
        ));
        m.push((
            "histograms".to_string(),
            Json::Obj(
                snap.histograms
                    .iter()
                    .map(|h| {
                        (
                            h.name.clone(),
                            Json::Obj(vec![
                                ("count".to_string(), Json::int(h.count)),
                                ("sum".to_string(), Json::int(h.sum)),
                                (
                                    "buckets".to_string(),
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|(b, n)| {
                                                Json::Arr(vec![Json::int(*b), Json::int(*n)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        Json::Obj(m)
    }

    /// Acknowledges a shutdown request.
    pub fn shutdown_ok() -> Json {
        Json::Obj(vec![
            ("event".to_string(), Json::str("ok")),
            ("shutdown".to_string(), Json::Bool(true)),
        ])
    }

    /// Appends the request's correlation `id` to a reply event (no-op
    /// when the request carried none).
    pub fn with_id(ev: Json, id: Option<u64>) -> Json {
        match (ev, id) {
            (Json::Obj(mut m), Some(id)) => {
                m.push(("id".to_string(), Json::int(id)));
                Json::Obj(m)
            }
            (ev, _) => ev,
        }
    }

    /// Answers an `enlist` handshake.
    pub fn enlisted() -> Json {
        Json::Obj(vec![
            ("event".to_string(), Json::str("enlisted")),
            ("protocol".to_string(), Json::int(PROTOCOL_VERSION)),
        ])
    }

    /// A shard session started.
    pub fn shard_accepted(shard: u64, classes: usize) -> Json {
        Json::Obj(vec![
            ("event".to_string(), Json::str("shard_accepted")),
            ("shard".to_string(), Json::int(shard)),
            ("classes".to_string(), Json::int(classes)),
        ])
    }

    /// One computed class verdict of a shard session.
    pub fn shard_verdict(shard: u64, class: usize, verdict: &FaultStatus) -> Json {
        let mut m = vec![
            ("event".to_string(), Json::str("shard_verdict")),
            ("shard".to_string(), Json::int(shard)),
            ("class".to_string(), Json::int(class)),
        ];
        m.extend(verdict_fields(verdict));
        Json::Obj(m)
    }

    /// A shard session's terminal event: every class was either computed
    /// (`shard_verdict` streamed) or dropped against a broadcast test.
    pub fn shard_result(shard: u64, computed: usize, dropped: usize) -> Json {
        Json::Obj(vec![
            ("event".to_string(), Json::str("shard_result")),
            ("shard".to_string(), Json::int(shard)),
            ("computed".to_string(), Json::int(computed)),
            ("dropped".to_string(), Json::int(dropped)),
        ])
    }

    /// Acknowledges a broadcast relay.  `known` is `false` when the
    /// target shard session already finished — stale relays are normal
    /// under completion races and harmless (the merge recomputes).
    pub fn broadcast_ok(shard: u64, known: bool) -> Json {
        Json::Obj(vec![
            ("event".to_string(), Json::str("broadcast_ok")),
            ("shard".to_string(), Json::int(shard)),
            ("known".to_string(), Json::Bool(known)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let line = req.to_json_value().render();
        assert_eq!(Request::parse(&line), Ok(req), "{line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Status);
        round_trip(Request::Metrics);
        round_trip(Request::Shutdown);
        round_trip(Request::Submit(Box::new(JobSpec::new(
            CircuitSpec::Bench {
                name: "converta".into(),
                style: "si".into(),
            },
        ))));
        round_trip(Request::Submit(Box::new(JobSpec {
            circuit: CircuitSpec::Family {
                name: "muller".into(),
                size: 8,
            },
            workers: 4,
            gc_threshold: Some(1024),
            output_model: true,
            collapse: true,
            no_random: true,
            pp_random: true,
            k: Some(40),
            pattern_budget: Some(256),
        })));
        round_trip(Request::Submit(Box::new(JobSpec::new(
            CircuitSpec::InlineCkt {
                text: "circuit inv\ninputs A:a\noutputs y\ngate y = not(a)\n".into(),
            },
        ))));
        round_trip(Request::Submit(Box::new(JobSpec::new(
            CircuitSpec::InlineG {
                text: ".model m\n.inputs r\n.outputs a\n.graph\nr+ a+\na+ r-\nr- a-\na- r+\n.marking { <a-,r+> }\n".into(),
                style: "2l".into(),
            },
        ))));
    }

    #[test]
    fn fleet_requests_round_trip() {
        round_trip(Request::Enlist);
        round_trip(Request::ShardSubmit(Box::new(ShardSpec {
            job: JobSpec::new(CircuitSpec::Bench {
                name: "converta".into(),
                style: "si".into(),
            }),
            classes: vec![0, 3, 7, 8],
        })));
        round_trip(Request::Broadcast {
            shard: 12,
            class: 3,
            test: TestSequence::from_u64(5, &[0b10110, 0, 0b00001]),
        });
        // A >64-bit pattern must survive the bitstring form exactly.
        let wide = TestSequence {
            patterns: vec![Pattern::from_fn(100, |i| i % 3 == 0)],
        };
        round_trip(Request::Broadcast {
            shard: 1,
            class: 0,
            test: wide,
        });
    }

    #[test]
    fn correlation_ids_round_trip_and_echo() {
        for req in [
            Request::Status,
            Request::Enlist,
            Request::Submit(Box::new(JobSpec::new(CircuitSpec::Bench {
                name: "converta".into(),
                style: "si".into(),
            }))),
        ] {
            let line = req.to_json_with_id(Some(41)).render();
            assert_eq!(
                Request::parse_with_id(&line),
                Ok((req.clone(), Some(41))),
                "{line}"
            );
            // Without an id the field is absent and parses as None.
            let bare = req.to_json_value().render();
            assert!(!bare.contains("\"id\""));
            assert_eq!(Request::parse_with_id(&bare), Ok((req, None)));
        }
        // The reply-side tag matches what the request carried.
        let tagged = event::with_id(event::enlisted(), Some(41));
        let v = Json::parse(&tagged.render()).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_usize), Some(41));
        assert_eq!(
            v.get("protocol").and_then(Json::as_usize),
            Some(PROTOCOL_VERSION as usize)
        );
        // No id → no tag.
        assert!(!event::with_id(event::enlisted(), None)
            .render()
            .contains("\"id\""));
        assert!(Request::parse_with_id("{\"cmd\":\"status\",\"id\":\"x\"}").is_err());
    }

    #[test]
    fn verdicts_round_trip() {
        use satpg_core::UntestableReason;
        for v in [
            FaultStatus::Detected {
                sequence: TestSequence::from_u64(3, &[0b101, 0b010]),
            },
            FaultStatus::Untestable(UntestableReason::NoDistinguishingSequence),
            FaultStatus::Aborted,
        ] {
            let ev = event::shard_verdict(9, 4, &v);
            let parsed = Json::parse(&ev.render()).unwrap();
            assert_eq!(parsed.get("shard").and_then(Json::as_usize), Some(9));
            assert_eq!(parsed.get("class").and_then(Json::as_usize), Some(4));
            assert_eq!(verdict_from_json(&parsed), Ok(v));
        }
        assert!(verdict_from_json(&Json::parse("{\"status\":\"odd\"}").unwrap()).is_err());
        assert!(test_from_json(&Json::parse("[\"01x\"]").unwrap()).is_err());
        assert!(test_from_json(&Json::parse("[\"\"]").unwrap()).is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (line, needle) in [
            ("", "JSON error"),
            ("{}", "cmd"),
            ("{\"cmd\":\"frob\"}", "unknown command"),
            ("{\"cmd\":\"submit\"}", "circuit"),
            ("{\"cmd\":\"submit\",\"circuit\":{}}", "one of"),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"bench\":\"x\",\"style\":\"fancy\"}}",
                "unknown style",
            ),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"bench\":\"x\"},\"workers\":-1}",
                "workers",
            ),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"bench\":\"x\"},\"workers\":100000}",
                "cap",
            ),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"bench\":\"x\"},\"k\":9999999}",
                "cap",
            ),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"family\":\"muller\"}}",
                "size",
            ),
            (
                "{\"cmd\":\"shard_submit\",\"circuit\":{\"bench\":\"x\"}}",
                "classes",
            ),
            (
                "{\"cmd\":\"shard_submit\",\"circuit\":{\"bench\":\"x\"},\"classes\":[-1]}",
                "classes",
            ),
            ("{\"cmd\":\"broadcast\",\"shard\":1,\"class\":0}", "test"),
            (
                "{\"cmd\":\"broadcast\",\"shard\":1,\"class\":0,\"test\":[17]}",
                "bitstring",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn events_parse_as_json_with_expected_fields() {
        let ev = event::accepted(3, 1);
        let v = Json::parse(&ev.render()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("accepted"));
        assert_eq!(v.get("job").unwrap().as_usize(), Some(3));
        let ev = event::stage(
            7,
            "cssg",
            vec![
                ("cache".to_string(), Json::str("hit")),
                ("states".to_string(), Json::int(12)),
            ],
        );
        let v = Json::parse(&ev.render()).unwrap();
        assert_eq!(v.get("stage").unwrap().as_str(), Some("cssg"));
        assert_eq!(v.get("cache").unwrap().as_str(), Some("hit"));
        let ev = event::worker(1, &WorkerStats::default());
        let v = Json::parse(&ev.render()).unwrap();
        assert!(v.get("stats").unwrap().get("bdd_peak_unique").is_some());
        assert_eq!(
            event::shutdown_ok().get("shutdown").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn metrics_event_renders_the_snapshot() {
        let snap = satpg_trace::MetricsSnapshot {
            counters: vec![("a.count".to_string(), 3)],
            gauges: vec![("b.level".to_string(), -2)],
            histograms: vec![satpg_trace::HistogramSnapshot {
                name: "c.us".to_string(),
                count: 2,
                sum: 9,
                buckets: vec![(2, 1), (4, 1)],
            }],
        };
        let v = Json::parse(&event::metrics(&snap).render()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("metrics"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("a.count")
                .unwrap()
                .as_usize(),
            Some(3)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("b.level"),
            Some(&Json::Int(-2))
        );
        let h = v.get("histograms").unwrap().get("c.us").unwrap();
        assert_eq!(h.get("count").unwrap().as_usize(), Some(2));
        assert_eq!(h.get("sum").unwrap().as_usize(), Some(9));
    }

    #[test]
    fn cache_text_distinguishes_specs() {
        let a = CircuitSpec::Bench {
            name: "x".into(),
            style: "si".into(),
        };
        let b = CircuitSpec::Bench {
            name: "x".into(),
            style: "2l".into(),
        };
        let c = CircuitSpec::InlineCkt { text: "x".into() };
        assert_ne!(a.cache_text(), b.cache_text());
        assert_ne!(a.cache_text(), c.cache_text());
    }
}
