//! The JSON-lines wire protocol.
//!
//! Every message is one JSON object on one `\n`-terminated line.
//! Client → server messages carry a `"cmd"` key (`submit`, `status`,
//! `shutdown`); server → client messages carry an `"event"` key.  A
//! `submit` answers with `accepted` (or `rejected` under backpressure),
//! then streams `stage` / `test` / `worker` telemetry events, and
//! terminates the job with exactly one `report` or `error` event.
//!
//! All parsing is defensive: malformed input yields an `Err(String)`
//! suitable for an `error` event, never a panic (the line length and
//! JSON nesting depth are capped upstream).

use satpg_core::json::Json;
use satpg_engine::WorkerStats;

/// Hard cap on one request line (bytes), applied while reading.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// Hard cap on a requested transition bound `k`.
pub const MAX_K: usize = 1 << 16;

/// Hard cap on per-job engine workers.
pub const MAX_JOB_WORKERS: usize = 64;

/// What circuit a job targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitSpec {
    /// A bundled benchmark by name, synthesized in `style`
    /// (`si`/`2l`/`2lr`).
    Bench {
        /// Benchmark name from `satpg list`.
        name: String,
        /// Synthesis style.
        style: String,
    },
    /// A generated family (`muller`/`arbiter`/`dme`/`seq`) at `size`.
    Family {
        /// Family name.
        name: String,
        /// Family size parameter.
        size: usize,
    },
    /// Inline `.g` STG text, synthesized in `style`.
    InlineG {
        /// The `.g` source.
        text: String,
        /// Synthesis style.
        style: String,
    },
    /// Inline `.ckt` netlist text.
    InlineCkt {
        /// The `.ckt` source.
        text: String,
    },
}

impl CircuitSpec {
    /// The canonical content string the circuit cache hashes.
    pub fn cache_text(&self) -> String {
        match self {
            CircuitSpec::Bench { name, style } => format!("bench\x1f{style}\x1f{name}"),
            CircuitSpec::Family { name, size } => format!("family\x1f{name}\x1f{size}"),
            CircuitSpec::InlineG { text, style } => format!("g\x1f{style}\x1f{text}"),
            CircuitSpec::InlineCkt { text } => format!("ckt\x1f{text}"),
        }
    }

    fn to_json_value(&self) -> Json {
        match self {
            CircuitSpec::Bench { name, style } => Json::Obj(vec![
                ("bench".to_string(), Json::str(name)),
                ("style".to_string(), Json::str(style)),
            ]),
            CircuitSpec::Family { name, size } => Json::Obj(vec![
                ("family".to_string(), Json::str(name)),
                ("size".to_string(), Json::int(*size)),
            ]),
            CircuitSpec::InlineG { text, style } => Json::Obj(vec![
                ("g".to_string(), Json::str(text)),
                ("style".to_string(), Json::str(style)),
            ]),
            CircuitSpec::InlineCkt { text } => {
                Json::Obj(vec![("ckt".to_string(), Json::str(text))])
            }
        }
    }

    fn from_json(v: &Json) -> Result<CircuitSpec, String> {
        let style = match v.get("style") {
            None => "si".to_string(),
            Some(s) => s
                .as_str()
                .ok_or("circuit.style must be a string")?
                .to_string(),
        };
        if !matches!(style.as_str(), "si" | "2l" | "2lr") {
            return Err(format!("unknown style `{style}` (si|2l|2lr)"));
        }
        if let Some(name) = v.get("bench") {
            let name = name.as_str().ok_or("circuit.bench must be a string")?;
            return Ok(CircuitSpec::Bench {
                name: name.to_string(),
                style,
            });
        }
        if let Some(name) = v.get("family") {
            let name = name.as_str().ok_or("circuit.family must be a string")?;
            let size = v
                .get("size")
                .and_then(Json::as_usize)
                .ok_or("circuit.size must be a non-negative integer")?;
            return Ok(CircuitSpec::Family {
                name: name.to_string(),
                size,
            });
        }
        if let Some(text) = v.get("g") {
            let text = text.as_str().ok_or("circuit.g must be a string")?;
            return Ok(CircuitSpec::InlineG {
                text: text.to_string(),
                style,
            });
        }
        if let Some(text) = v.get("ckt") {
            let text = text.as_str().ok_or("circuit.ckt must be a string")?;
            return Ok(CircuitSpec::InlineCkt {
                text: text.to_string(),
            });
        }
        Err("circuit must carry one of: bench, family, g, ckt".to_string())
    }
}

/// A job request: the circuit plus its flow knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The target circuit.
    pub circuit: CircuitSpec,
    /// Engine workers for this job; `0` uses the server default.
    pub workers: usize,
    /// Per-worker BDD GC threshold; `None` uses the server default.
    pub gc_threshold: Option<usize>,
    /// Target output stuck-at faults instead of input stuck-at.
    pub output_model: bool,
    /// Structurally collapse equivalent faults.
    pub collapse: bool,
    /// Skip the random-TPG stage.
    pub no_random: bool,
    /// Run the random stage pattern-per-bit: 64 patterns per settling
    /// pass against one broadcast fault.
    pub pp_random: bool,
    /// Explicit CSSG transition bound; `None` derives it.
    pub k: Option<usize>,
    /// Per-state CSSG pattern budget.  Required for circuits with more
    /// than 63 primary inputs (exhaustive enumeration stops there);
    /// `None` enumerates exhaustively.
    pub pattern_budget: Option<u64>,
}

impl JobSpec {
    /// A spec with default knobs.
    pub fn new(circuit: CircuitSpec) -> Self {
        JobSpec {
            circuit,
            workers: 0,
            gc_threshold: None,
            output_model: false,
            collapse: false,
            no_random: false,
            pp_random: false,
            k: None,
            pattern_budget: None,
        }
    }
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a job.
    Submit(Box<JobSpec>),
    /// Ask for scheduler/cache counters.
    Status,
    /// Ask for a snapshot of the process-wide metrics registry
    /// (counters, gauges, histograms accumulated across every job the
    /// daemon has run — including jobs whose client disconnected).
    Metrics,
    /// Stop accepting work and exit once running jobs finish.
    Shutdown,
}

impl Request {
    /// Renders the request as one protocol line (without the newline).
    pub fn to_json_value(&self) -> Json {
        match self {
            Request::Status => Json::Obj(vec![("cmd".to_string(), Json::str("status"))]),
            Request::Metrics => Json::Obj(vec![("cmd".to_string(), Json::str("metrics"))]),
            Request::Shutdown => Json::Obj(vec![("cmd".to_string(), Json::str("shutdown"))]),
            Request::Submit(spec) => {
                let mut m = vec![
                    ("cmd".to_string(), Json::str("submit")),
                    ("circuit".to_string(), spec.circuit.to_json_value()),
                ];
                if spec.workers != 0 {
                    m.push(("workers".to_string(), Json::int(spec.workers)));
                }
                if let Some(t) = spec.gc_threshold {
                    m.push(("gc_threshold".to_string(), Json::int(t)));
                }
                if spec.output_model {
                    m.push(("output_model".to_string(), Json::Bool(true)));
                }
                if spec.collapse {
                    m.push(("collapse".to_string(), Json::Bool(true)));
                }
                if spec.no_random {
                    m.push(("no_random".to_string(), Json::Bool(true)));
                }
                if spec.pp_random {
                    m.push(("pp_random".to_string(), Json::Bool(true)));
                }
                if let Some(k) = spec.k {
                    m.push(("k".to_string(), Json::int(k)));
                }
                if let Some(b) = spec.pattern_budget {
                    m.push(("pattern_budget".to_string(), Json::int(b)));
                }
                Json::Obj(m)
            }
        }
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON, unknown commands,
    /// missing fields or out-of-range knobs.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("request must carry a string `cmd`")?;
        match cmd {
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "submit" => {
                let circuit =
                    CircuitSpec::from_json(v.get("circuit").ok_or("submit requires `circuit`")?)?;
                let usize_knob = |key: &str, max: usize| -> Result<Option<usize>, String> {
                    match v.get(key) {
                        None | Some(Json::Null) => Ok(None),
                        Some(j) => {
                            let n = j
                                .as_usize()
                                .ok_or(format!("`{key}` must be a non-negative integer"))?;
                            if n > max {
                                return Err(format!("`{key}` {n} exceeds the cap {max}"));
                            }
                            Ok(Some(n))
                        }
                    }
                };
                let bool_knob = |key: &str| -> Result<bool, String> {
                    match v.get(key) {
                        None | Some(Json::Null) => Ok(false),
                        Some(j) => j.as_bool().ok_or(format!("`{key}` must be a boolean")),
                    }
                };
                Ok(Request::Submit(Box::new(JobSpec {
                    circuit,
                    workers: usize_knob("workers", MAX_JOB_WORKERS)?.unwrap_or(0),
                    gc_threshold: usize_knob("gc_threshold", usize::MAX / 2)?,
                    output_model: bool_knob("output_model")?,
                    collapse: bool_knob("collapse")?,
                    no_random: bool_knob("no_random")?,
                    pp_random: bool_knob("pp_random")?,
                    k: usize_knob("k", MAX_K)?,
                    pattern_budget: usize_knob("pattern_budget", usize::MAX / 2)?.map(|b| b as u64),
                })))
            }
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// Builders for the server → client events.  Kept in one place so the
/// round-trip tests and both ends of the protocol agree on field names.
pub mod event {
    use super::*;

    fn base(kind: &str, job: Option<u64>) -> Vec<(String, Json)> {
        let mut m = vec![("event".to_string(), Json::str(kind))];
        if let Some(j) = job {
            m.push(("job".to_string(), Json::int(j)));
        }
        m
    }

    /// The job was queued.
    pub fn accepted(job: u64, queue_depth: usize) -> Json {
        let mut m = base("accepted", Some(job));
        m.push(("queue_depth".to_string(), Json::int(queue_depth)));
        Json::Obj(m)
    }

    /// The job was refused (backpressure or shutdown).
    pub fn rejected(reason: &str) -> Json {
        let mut m = base("rejected", None);
        m.push(("reason".to_string(), Json::str(reason)));
        Json::Obj(m)
    }

    /// The job failed; this is the job's final event.
    pub fn error(job: u64, message: &str) -> Json {
        let mut m = base("error", Some(job));
        m.push(("message".to_string(), Json::str(message)));
        Json::Obj(m)
    }

    /// A stage transition with stage-specific `data` fields.
    pub fn stage(job: u64, name: &str, data: Vec<(String, Json)>) -> Json {
        let mut m = base("stage", Some(job));
        m.push(("stage".to_string(), Json::str(name)));
        m.extend(data);
        Json::Obj(m)
    }

    /// A worker found a test.
    pub fn test(job: u64, worker: usize, class: usize, cycles: usize) -> Json {
        let mut m = base("test", Some(job));
        m.push(("worker".to_string(), Json::int(worker)));
        m.push(("class".to_string(), Json::int(class)));
        m.push(("cycles".to_string(), Json::int(cycles)));
        Json::Obj(m)
    }

    /// A worker finished; full per-worker telemetry.
    pub fn worker(job: u64, stats: &WorkerStats) -> Json {
        let mut m = base("worker", Some(job));
        m.push(("stats".to_string(), stats.to_json_value(true)));
        Json::Obj(m)
    }

    /// The job's final report (engine JSON form plus cache flags).
    pub fn report(job: u64, body: Json) -> Json {
        let mut m = base("report", Some(job));
        if let Json::Obj(fields) = body {
            m.extend(fields);
        }
        Json::Obj(m)
    }

    /// The status snapshot.
    pub fn status(fields: Vec<(String, Json)>) -> Json {
        let mut m = base("status", None);
        m.extend(fields);
        Json::Obj(m)
    }

    /// A frozen metrics-registry snapshot: counters and gauges as
    /// name→value objects, histograms as `{count, sum, buckets}` with
    /// `buckets` the non-empty `[index, count]` pairs of the fixed
    /// log-2 layout (bucket `0` holds value `0`, bucket `i` holds
    /// `[2^(i-1), 2^i)`).  Names stay sorted, so the rendering is
    /// byte-stable for a given registry state.
    pub fn metrics(snap: &satpg_trace::MetricsSnapshot) -> Json {
        let mut m = base("metrics", None);
        m.push((
            "counters".to_string(),
            Json::Obj(
                snap.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::int(*v)))
                    .collect(),
            ),
        ));
        m.push((
            "gauges".to_string(),
            Json::Obj(
                snap.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::int(*v)))
                    .collect(),
            ),
        ));
        m.push((
            "histograms".to_string(),
            Json::Obj(
                snap.histograms
                    .iter()
                    .map(|h| {
                        (
                            h.name.clone(),
                            Json::Obj(vec![
                                ("count".to_string(), Json::int(h.count)),
                                ("sum".to_string(), Json::int(h.sum)),
                                (
                                    "buckets".to_string(),
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|(b, n)| {
                                                Json::Arr(vec![Json::int(*b), Json::int(*n)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        Json::Obj(m)
    }

    /// Acknowledges a shutdown request.
    pub fn shutdown_ok() -> Json {
        Json::Obj(vec![
            ("event".to_string(), Json::str("ok")),
            ("shutdown".to_string(), Json::Bool(true)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let line = req.to_json_value().render();
        assert_eq!(Request::parse(&line), Ok(req), "{line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Status);
        round_trip(Request::Metrics);
        round_trip(Request::Shutdown);
        round_trip(Request::Submit(Box::new(JobSpec::new(
            CircuitSpec::Bench {
                name: "converta".into(),
                style: "si".into(),
            },
        ))));
        round_trip(Request::Submit(Box::new(JobSpec {
            circuit: CircuitSpec::Family {
                name: "muller".into(),
                size: 8,
            },
            workers: 4,
            gc_threshold: Some(1024),
            output_model: true,
            collapse: true,
            no_random: true,
            pp_random: true,
            k: Some(40),
            pattern_budget: Some(256),
        })));
        round_trip(Request::Submit(Box::new(JobSpec::new(
            CircuitSpec::InlineCkt {
                text: "circuit inv\ninputs A:a\noutputs y\ngate y = not(a)\n".into(),
            },
        ))));
        round_trip(Request::Submit(Box::new(JobSpec::new(
            CircuitSpec::InlineG {
                text: ".model m\n.inputs r\n.outputs a\n.graph\nr+ a+\na+ r-\nr- a-\na- r+\n.marking { <a-,r+> }\n".into(),
                style: "2l".into(),
            },
        ))));
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (line, needle) in [
            ("", "JSON error"),
            ("{}", "cmd"),
            ("{\"cmd\":\"frob\"}", "unknown command"),
            ("{\"cmd\":\"submit\"}", "circuit"),
            ("{\"cmd\":\"submit\",\"circuit\":{}}", "one of"),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"bench\":\"x\",\"style\":\"fancy\"}}",
                "unknown style",
            ),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"bench\":\"x\"},\"workers\":-1}",
                "workers",
            ),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"bench\":\"x\"},\"workers\":100000}",
                "cap",
            ),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"bench\":\"x\"},\"k\":9999999}",
                "cap",
            ),
            (
                "{\"cmd\":\"submit\",\"circuit\":{\"family\":\"muller\"}}",
                "size",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn events_parse_as_json_with_expected_fields() {
        let ev = event::accepted(3, 1);
        let v = Json::parse(&ev.render()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("accepted"));
        assert_eq!(v.get("job").unwrap().as_usize(), Some(3));
        let ev = event::stage(
            7,
            "cssg",
            vec![
                ("cache".to_string(), Json::str("hit")),
                ("states".to_string(), Json::int(12)),
            ],
        );
        let v = Json::parse(&ev.render()).unwrap();
        assert_eq!(v.get("stage").unwrap().as_str(), Some("cssg"));
        assert_eq!(v.get("cache").unwrap().as_str(), Some("hit"));
        let ev = event::worker(1, &WorkerStats::default());
        let v = Json::parse(&ev.render()).unwrap();
        assert!(v.get("stats").unwrap().get("bdd_peak_unique").is_some());
        assert_eq!(
            event::shutdown_ok().get("shutdown").unwrap().as_bool(),
            Some(true)
        );
    }

    #[test]
    fn metrics_event_renders_the_snapshot() {
        let snap = satpg_trace::MetricsSnapshot {
            counters: vec![("a.count".to_string(), 3)],
            gauges: vec![("b.level".to_string(), -2)],
            histograms: vec![satpg_trace::HistogramSnapshot {
                name: "c.us".to_string(),
                count: 2,
                sum: 9,
                buckets: vec![(2, 1), (4, 1)],
            }],
        };
        let v = Json::parse(&event::metrics(&snap).render()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("metrics"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("a.count")
                .unwrap()
                .as_usize(),
            Some(3)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("b.level"),
            Some(&Json::Int(-2))
        );
        let h = v.get("histograms").unwrap().get("c.us").unwrap();
        assert_eq!(h.get("count").unwrap().as_usize(), Some(2));
        assert_eq!(h.get("sum").unwrap().as_usize(), Some(9));
    }

    #[test]
    fn cache_text_distinguishes_specs() {
        let a = CircuitSpec::Bench {
            name: "x".into(),
            style: "si".into(),
        };
        let b = CircuitSpec::Bench {
            name: "x".into(),
            style: "2l".into(),
        };
        let c = CircuitSpec::InlineCkt { text: "x".into() };
        assert_ne!(a.cache_text(), b.cache_text());
        assert_ne!(a.cache_text(), c.cache_text());
    }
}
