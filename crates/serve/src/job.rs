//! Circuit resolution: from a wire-level [`CircuitSpec`] to a parsed,
//! validated [`Circuit`].  Every failure path returns a message (with
//! the parser's line number where one exists) — submissions are
//! untrusted input and must never panic the daemon.

use crate::proto::{CircuitSpec, JobSpec};
use satpg_core::{AtpgConfig, CssgConfig, FaultModel, RandomTpgConfig, ThreePhaseConfig};
use satpg_netlist::{parse_ckt, Circuit};
use satpg_stg::synth::{complex_gate, two_level, Redundancy};
use satpg_stg::{parse_g, suite, StateGraph, Stg};

fn synth(stg: &Stg, style: &str) -> Result<Circuit, String> {
    let sg = StateGraph::build(stg).map_err(|e| e.to_string())?;
    match style {
        "si" => complex_gate(stg, &sg).map_err(|e| e.to_string()),
        "2l" => two_level(stg, &sg, Redundancy::None).map_err(|e| e.to_string()),
        "2lr" => two_level(stg, &sg, Redundancy::AllPrimes).map_err(|e| e.to_string()),
        other => Err(format!("unknown style `{other}` (si|2l|2lr)")),
    }
}

fn size_in(size: usize, lo: usize, hi: usize) -> Result<usize, String> {
    if (lo..=hi).contains(&size) {
        Ok(size)
    } else {
        Err(format!(
            "size {size} out of range for this family ({lo}..={hi})"
        ))
    }
}

/// Builds the circuit a spec names.
///
/// # Errors
///
/// A human-readable message: parse errors (line-numbered), unknown
/// benchmark/family names, out-of-range sizes, synthesis failures.
pub fn resolve_circuit(spec: &CircuitSpec) -> Result<Circuit, String> {
    match spec {
        CircuitSpec::Bench { name, style } => {
            let stg = suite::load(name).map_err(|e| format!("{name}: {e}"))?;
            synth(&stg, style).map_err(|e| format!("{name}: {e}"))
        }
        // Family size caps mirror the CLI's `gen` ranges.  They are
        // resource guards, not representation limits: patterns and
        // states are multi-word, so arbiter widths past 63 are legal —
        // such jobs just need an explicit `pattern_budget`.
        CircuitSpec::Family { name, size } => match name.as_str() {
            "muller" => Ok(satpg_netlist::families::muller_pipeline(size_in(
                *size, 1, 128,
            )?)),
            "arbiter" => Ok(satpg_netlist::families::arbiter_tree(size_in(
                *size, 2, 128,
            )?)),
            "dme" => {
                let stg = satpg_stg::families::dme_ring(size_in(*size, 2, 6)?)
                    .map_err(|e| e.to_string())?;
                synth(&stg, "si")
            }
            "seq" => {
                let stg = satpg_stg::families::sequencer(size_in(*size, 1, 15)?)
                    .map_err(|e| e.to_string())?;
                synth(&stg, "si")
            }
            other => Err(format!("unknown family `{other}` (muller|dme|arbiter|seq)")),
        },
        CircuitSpec::InlineG { text, style } => {
            let stg = parse_g(text).map_err(|e| e.to_string())?;
            synth(&stg, style)
        }
        CircuitSpec::InlineCkt { text } => parse_ckt(text).map_err(|e| e.to_string()),
    }
}

/// The flow configuration a job spec denotes for `ckt` — the single
/// definition shared by the daemon's engine path, a fleet coordinator
/// and its peer shards.  Byte-identical fleet reports depend on every
/// node deriving the *same* `AtpgConfig` from the same spec, so this
/// must stay the only place that mapping lives.
pub fn job_atpg_config(spec: &JobSpec, ckt: &Circuit) -> AtpgConfig {
    AtpgConfig {
        cssg: CssgConfig {
            k: spec.k,
            pattern_budget: spec.pattern_budget,
            ..CssgConfig::default()
        },
        random: if spec.no_random {
            None
        } else {
            Some(RandomTpgConfig {
                pattern_parallel: spec.pp_random,
                ..Default::default()
            })
        },
        fault_model: if spec.output_model {
            FaultModel::OutputStuckAt
        } else {
            FaultModel::InputStuckAt
        },
        collapse: spec.collapse,
        fault_sim: true,
        three_phase: ThreePhaseConfig::scaled(ckt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_all_spec_kinds() {
        let bench = resolve_circuit(&CircuitSpec::Bench {
            name: "converta".into(),
            style: "si".into(),
        })
        .unwrap();
        assert_eq!(bench.name(), "converta");
        let fam = resolve_circuit(&CircuitSpec::Family {
            name: "muller".into(),
            size: 3,
        })
        .unwrap();
        assert!(fam.num_gates() > 0);
        let g = resolve_circuit(&CircuitSpec::InlineG {
            text: suite::source("seq4").unwrap().to_string(),
            style: "si".into(),
        })
        .unwrap();
        assert_eq!(g.name(), "seq4");
        let ckt = resolve_circuit(&CircuitSpec::InlineCkt {
            text: "circuit inv\ninputs A:a\noutputs y\ngate y = not(a)\nsettle\n".into(),
        })
        .unwrap();
        assert_eq!(ckt.name(), "inv");
    }

    #[test]
    fn errors_carry_context_not_panics() {
        let e = resolve_circuit(&CircuitSpec::Bench {
            name: "no-such".into(),
            style: "si".into(),
        })
        .unwrap_err();
        assert!(e.contains("no-such"));
        let e = resolve_circuit(&CircuitSpec::Family {
            name: "muller".into(),
            size: 10_000,
        })
        .unwrap_err();
        assert!(e.contains("out of range"));
        let e = resolve_circuit(&CircuitSpec::InlineG {
            text: ".model m\n.bogus\n".into(),
            style: "si".into(),
        })
        .unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = resolve_circuit(&CircuitSpec::InlineCkt {
            text: "circuit x\nnonsense\n".into(),
        })
        .unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }
}
