//! The fleet coordinator: one ATPG campaign partitioned across N peer
//! daemons over the ordinary JSON-lines protocol.
//!
//! The shape of the campaign mirrors the in-process engine exactly —
//! prepare (fault plan + random stage), distribute the open classes,
//! deterministically merge — with the distribution step swapped from a
//! thread pool to a pool of remote daemons:
//!
//! * each peer gets an `enlist` handshake, then `shard_submit` requests
//!   carrying contiguous runs of serial class indices;
//! * peers stream back one `shard_verdict` per class; a `Detected`
//!   verdict is relayed to every other busy peer as a `broadcast`, so
//!   remote workers drop classes the test already covers (the engine
//!   worker's own screening rule);
//! * a peer that dies, stalls past the timeout, or replies garbage is
//!   declared lost: its unfinished classes requeue for the survivors and
//!   a bounded-backoff reviver tries to reconnect it.
//!
//! Correctness never depends on any of that machinery.  A class verdict
//! is a pure function of `(circuit, CSSG, fault, config)`, and the final
//! [`satpg_engine::merge_partial`] replays the exact serial control flow,
//! recomputing any class the fleet failed to deliver.  Peer loss —
//! including losing *every* peer — therefore moves work, never results:
//! the report stays byte-identical to a serial run.  See
//! `crates/serve/DESIGN.md` for the full argument.

use crate::job::{job_atpg_config, resolve_circuit};
use crate::net::{connect, write_line, Conn, LineRead, TimedLineReader};
use crate::proto::{
    verdict_from_json, JobSpec, Request, ShardSpec, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use satpg_core::json::Json;
use satpg_core::{
    build_cssg_sharded, faults_for, AtpgConfig, AtpgReport, Cssg, Fault, FaultStatus, TestSequence,
};
use satpg_engine::{merge_partial, prepare_campaign};
use satpg_netlist::Circuit;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Coordinator-side fleet tuning.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Peer daemon addresses (`host:port` or `unix:/path`).
    pub peers: Vec<String>,
    /// Classes per shard; `0` sizes shards so each live peer sees about
    /// three of them (enough granularity to rebalance around a loss
    /// without drowning the wire in tiny submissions).
    pub chunk: usize,
    /// Reconnect attempts per lost peer before it is abandoned.
    pub max_retries: usize,
    /// Milliseconds of in-flight silence before a peer is declared lost.
    pub peer_timeout_ms: u64,
    /// Base reconnect backoff in milliseconds, doubled per attempt.
    pub backoff_ms: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            peers: Vec::new(),
            chunk: 0,
            max_retries: 2,
            peer_timeout_ms: 10_000,
            backoff_ms: 50,
        }
    }
}

/// What the distribution phase did — the observability half of the
/// fleet's contract (the report itself never varies with any of this).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Configured peer count.
    pub peers: usize,
    /// Shards dispatched (requeues included).
    pub shards: usize,
    /// Shards requeued because their peer was lost mid-flight.
    pub retries: usize,
    /// Peer-loss events (initial connection failures included).
    pub peer_deaths: usize,
    /// Class verdicts delivered by peers and consumed by the merge.
    pub remote_verdicts: usize,
    /// Cross-peer test broadcasts relayed.
    pub broadcasts_relayed: usize,
    /// Classes the merge re-searched locally (missing or dropped
    /// verdicts); the serial-fallback safety net in action.
    pub merge_fallbacks: usize,
    /// Classes never dispatched because every peer was lost.
    pub unassigned_classes: usize,
}

impl FleetStats {
    /// The machine-readable form, embedded in the daemon's `report`
    /// event and the CLI's `--json` output.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("peers".to_string(), Json::int(self.peers)),
            ("shards".to_string(), Json::int(self.shards)),
            ("retries".to_string(), Json::int(self.retries)),
            ("peer_deaths".to_string(), Json::int(self.peer_deaths)),
            (
                "remote_verdicts".to_string(),
                Json::int(self.remote_verdicts),
            ),
            (
                "broadcasts_relayed".to_string(),
                Json::int(self.broadcasts_relayed),
            ),
            (
                "merge_fallbacks".to_string(),
                Json::int(self.merge_fallbacks),
            ),
            (
                "unassigned_classes".to_string(),
                Json::int(self.unassigned_classes),
            ),
        ])
    }
}

/// A finished fleet campaign.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// The merged report — byte-identical (timing aside) to a serial
    /// [`satpg_core::run_atpg`] with the same spec.
    pub report: AtpgReport,
    /// Distribution telemetry.
    pub stats: FleetStats,
}

/// Runs one job as a fleet campaign from a bare spec: resolves the
/// circuit, builds the CSSG locally (the coordinator needs it for the
/// random stage and the merge anyway), then distributes and merges.
///
/// # Errors
///
/// Circuit resolution and CSSG construction failures, plus the empty
/// abstraction (`NoValidVectors`) — exactly the failures a serial run
/// reports for the same spec.  Peer failures are *not* errors.
pub fn run_fleet(spec: &JobSpec, fc: &FleetConfig) -> Result<FleetOutcome, String> {
    let ckt = resolve_circuit(&spec.circuit)?;
    let acfg = job_atpg_config(spec, &ckt);
    let t0 = Instant::now();
    let cssg = build_cssg_sharded(&ckt, &acfg.cssg, 1).map_err(|e| e.to_string())?;
    let us_cssg = t0.elapsed().as_micros();
    if cssg.num_edges() == 0 {
        return Err(satpg_core::CoreError::NoValidVectors.to_string());
    }
    let faults = faults_for(&ckt, acfg.fault_model);
    Ok(run_fleet_built(
        &ckt, &cssg, &faults, &acfg, spec, fc, us_cssg,
    ))
}

/// [`run_fleet`] over prebuilt artifacts — the entry point the daemon's
/// coordinator path uses, so its circuit/CSSG caches keep working.
pub fn run_fleet_built(
    ckt: &Circuit,
    cssg: &Cssg,
    faults: &[Fault],
    acfg: &AtpgConfig,
    spec: &JobSpec,
    fc: &FleetConfig,
    us_cssg: u128,
) -> FleetOutcome {
    let m = satpg_trace::metrics();
    m.counter("fleet.campaigns").inc();
    let _span = satpg_trace::span!(
        "fleet.run",
        peers = fc.peers.len(),
        circuit = ckt.name().to_string()
    );
    let campaign = prepare_campaign(ckt, cssg, faults, acfg);
    let pending = campaign.state.open_classes();
    let mut verdicts: Vec<Option<FaultStatus>> = vec![None; campaign.plan.len()];
    let mut stats = FleetStats {
        peers: fc.peers.len(),
        ..FleetStats::default()
    };
    let t0 = Instant::now();
    if !pending.is_empty() && !fc.peers.is_empty() {
        distribute(spec, acfg, fc, &pending, &mut verdicts, &mut stats);
    }
    let us_distributed = t0.elapsed().as_micros();
    let merged = merge_partial(
        ckt,
        cssg,
        faults,
        acfg,
        &campaign.plan,
        campaign.state,
        us_cssg,
        campaign.us_random,
        us_distributed,
        &mut |ci| verdicts[ci].take(),
    );
    stats.merge_fallbacks = merged.fallbacks;
    m.counter("fleet.merge_fallbacks")
        .add(merged.fallbacks as u64);
    FleetOutcome {
        report: merged.report,
        stats,
    }
}

/// Messages from peer reader / reviver threads to the coordinator loop.
enum PeerMsg {
    /// A peer delivered one class verdict.
    Verdict {
        peer: usize,
        class: usize,
        status: FaultStatus,
    },
    /// A peer finished its in-flight shard.
    ShardDone { peer: usize, gen: usize },
    /// A peer was lost: EOF, stall past the timeout, or garbage.
    Dead {
        peer: usize,
        gen: usize,
        reason: String,
    },
    /// A reviver reconnected and re-enlisted a lost peer.
    Revived {
        peer: usize,
        writer: Conn,
        reader: TimedLineReader,
    },
    /// A reviver's attempt failed.
    ReviveFailed { peer: usize, reason: String },
}

/// Watchdog state shared between the coordinator and a peer's reader
/// thread (a socket property would not survive reconnects).
struct PeerShared {
    /// When the in-flight shard was dispatched (refreshed on every reply
    /// line); `None` while idle, so silence without work is not a stall.
    inflight_since: Mutex<Option<Instant>>,
    /// Set when the campaign is over so lingering reader threads exit on
    /// their next poll instead of spinning on an idle socket forever.
    closed: AtomicBool,
}

/// Coordinator-side view of one peer.
struct Peer {
    addr: String,
    /// Write half of the live connection; `None` while lost.
    writer: Option<Conn>,
    /// In-flight shard id, if any.
    shard: Option<u64>,
    /// The in-flight shard's classes (for requeue on loss).
    chunk: Vec<usize>,
    /// Revival attempts initiated so far.
    attempts: usize,
    /// Connection generation; messages from older generations are stale
    /// stragglers and ignored.
    gen: usize,
    shared: Arc<PeerShared>,
}

/// Connects to a peer and runs the `enlist` handshake, returning the
/// write half and the (timeout-polling) line reader with any handshake
/// overshoot still buffered.
fn enlist(addr: &str, timeout: Duration) -> Result<(Conn, TimedLineReader), String> {
    let conn = connect(addr).map_err(|e| format!("{addr}: connect: {e}"))?;
    let mut writer = conn
        .try_clone()
        .map_err(|e| format!("{addr}: clone: {e}"))?;
    // Short socket timeout; the reader thread polls and applies the
    // (much longer) in-flight stall timeout itself.
    conn.set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("{addr}: timeout: {e}"))?;
    let mut reader = TimedLineReader::new(conn, MAX_LINE_BYTES);
    write_line(&mut writer, &Request::Enlist.to_json_value().render())
        .map_err(|e| format!("{addr}: enlist write: {e}"))?;
    let deadline = Instant::now() + timeout;
    loop {
        match reader.next() {
            Ok(LineRead::Line(line)) => {
                let v = Json::parse(&line).map_err(|e| format!("{addr}: enlist reply: {e}"))?;
                return match v.get("event").and_then(Json::as_str) {
                    Some("enlisted") => {
                        let proto = v.get("protocol").and_then(Json::as_usize).unwrap_or(0);
                        if proto == PROTOCOL_VERSION as usize {
                            Ok((writer, reader))
                        } else {
                            Err(format!(
                                "{addr}: speaks protocol {proto}, need {PROTOCOL_VERSION}"
                            ))
                        }
                    }
                    other => Err(format!("{addr}: unexpected {other:?} during enlist")),
                };
            }
            Ok(LineRead::TimedOut) => {
                if Instant::now() > deadline {
                    return Err(format!("{addr}: enlist timed out"));
                }
            }
            Ok(LineRead::Eof) => return Err(format!("{addr}: closed during enlist")),
            Err(e) => return Err(format!("{addr}: enlist read: {e}")),
        }
    }
}

/// The per-peer reader thread: parses reply lines into [`PeerMsg`]s and
/// enforces the in-flight stall timeout.  Exits on EOF, on any fatal
/// parse problem (reported as a death — a peer speaking garbage cannot
/// be trusted with work), or once the campaign closes.
fn reader_loop(
    mut reader: TimedLineReader,
    peer: usize,
    gen: usize,
    shared: Arc<PeerShared>,
    timeout: Duration,
    tx: mpsc::Sender<PeerMsg>,
) {
    let dead = |reason: String| {
        let _ = tx.send(PeerMsg::Dead { peer, gen, reason });
    };
    loop {
        match reader.next() {
            Ok(LineRead::Line(line)) => {
                // Any reply line proves liveness; refresh the watchdog.
                if let Some(t) = shared
                    .inflight_since
                    .lock()
                    .expect("peer watchdog lock")
                    .as_mut()
                {
                    *t = Instant::now();
                }
                let v = match Json::parse(&line) {
                    Ok(v) => v,
                    Err(e) => return dead(format!("garbage reply: {e}")),
                };
                match v.get("event").and_then(Json::as_str) {
                    Some("shard_verdict") => {
                        let class = v.get("class").and_then(Json::as_usize);
                        match (class, verdict_from_json(&v)) {
                            (Some(class), Ok(status)) => {
                                let _ = tx.send(PeerMsg::Verdict {
                                    peer,
                                    class,
                                    status,
                                });
                            }
                            (_, Err(e)) => return dead(format!("bad verdict: {e}")),
                            (None, _) => return dead("verdict without class".to_string()),
                        }
                    }
                    Some("shard_result") => {
                        let _ = tx.send(PeerMsg::ShardDone { peer, gen });
                    }
                    // Handshake echoes and acks carry no coordinator
                    // state; `status`/`metrics` could share the socket.
                    Some("enlisted" | "shard_accepted" | "broadcast_ok" | "status" | "metrics") => {
                    }
                    Some("rejected" | "error") => {
                        let why = v
                            .get("reason")
                            .or_else(|| v.get("message"))
                            .and_then(Json::as_str)
                            .unwrap_or("unspecified");
                        return dead(format!("peer refused work: {why}"));
                    }
                    other => return dead(format!("unknown event {other:?}")),
                }
            }
            Ok(LineRead::TimedOut) => {
                if shared.closed.load(Ordering::SeqCst) {
                    return;
                }
                let since = *shared.inflight_since.lock().expect("peer watchdog lock");
                if let Some(t) = since {
                    if t.elapsed() > timeout {
                        return dead(format!(
                            "no reply for {}ms with a shard in flight",
                            t.elapsed().as_millis()
                        ));
                    }
                }
            }
            Ok(LineRead::Eof) => return dead("connection closed".to_string()),
            Err(e) => return dead(format!("read: {e}")),
        }
    }
}

/// Installs a fresh connection on peer `q` and spawns its reader thread
/// under a new generation.
fn attach(
    peers: &mut [Peer],
    q: usize,
    writer: Conn,
    reader: TimedLineReader,
    timeout: Duration,
    tx: &mpsc::Sender<PeerMsg>,
) {
    let p = &mut peers[q];
    p.gen += 1;
    p.writer = Some(writer);
    let gen = p.gen;
    let shared = p.shared.clone();
    let tx = tx.clone();
    std::thread::spawn(move || reader_loop(reader, q, gen, shared, timeout, tx));
}

/// Schedules one revival attempt for peer `q` with exponential backoff.
fn spawn_reviver(
    q: usize,
    addr: String,
    attempt: usize,
    fc: &FleetConfig,
    tx: &mpsc::Sender<PeerMsg>,
) {
    let backoff = Duration::from_millis(fc.backoff_ms << attempt.saturating_sub(1).min(16));
    let timeout = Duration::from_millis(fc.peer_timeout_ms.max(1));
    let tx = tx.clone();
    std::thread::spawn(move || {
        std::thread::sleep(backoff);
        match enlist(&addr, timeout) {
            Ok((writer, reader)) => {
                let _ = tx.send(PeerMsg::Revived {
                    peer: q,
                    writer,
                    reader,
                });
            }
            Err(reason) => {
                let _ = tx.send(PeerMsg::ReviveFailed { peer: q, reason });
            }
        }
    });
}

/// Declares peer `q` lost: requeues whatever of its in-flight shard
/// still lacks verdicts and (within the retry budget) schedules a
/// revival attempt.
#[allow(clippy::too_many_arguments)]
fn kill_peer(
    peers: &mut [Peer],
    q: usize,
    reason: &str,
    queue: &mut VecDeque<Vec<usize>>,
    verdicts: &[Option<FaultStatus>],
    stats: &mut FleetStats,
    fc: &FleetConfig,
    reviving: &mut usize,
    tx: &mpsc::Sender<PeerMsg>,
) {
    let m = satpg_trace::metrics();
    let addr = peers[q].addr.clone();
    eprintln!("satpg fleet: peer {addr} lost: {reason}");
    let p = &mut peers[q];
    p.writer = None;
    // Invalidate straggler messages from the dying connection's reader.
    p.gen += 1;
    *p.shared.inflight_since.lock().expect("peer watchdog lock") = None;
    stats.peer_deaths += 1;
    m.counter("fleet.peer_deaths").inc();
    if p.shard.take().is_some() {
        let chunk = std::mem::take(&mut p.chunk);
        // Verdicts that already arrived are kept — work is requeued,
        // never redone.
        let remaining: Vec<usize> = chunk
            .into_iter()
            .filter(|&c| verdicts[c].is_none())
            .collect();
        if !remaining.is_empty() {
            stats.retries += 1;
            m.counter("fleet.retries").inc();
            queue.push_back(remaining);
        }
    }
    if p.attempts < fc.max_retries {
        p.attempts += 1;
        let attempt = p.attempts;
        *reviving += 1;
        spawn_reviver(q, addr, attempt, fc, tx);
    }
}

/// Fans the open classes out across the peers, collecting verdicts into
/// `verdicts`.  Never fails: every loss path either requeues for the
/// survivors or leaves classes unassigned for the merge to recompute.
fn distribute(
    spec: &JobSpec,
    acfg: &AtpgConfig,
    fc: &FleetConfig,
    pending: &[usize],
    verdicts: &mut [Option<FaultStatus>],
    stats: &mut FleetStats,
) {
    let m = satpg_trace::metrics();
    let _span = satpg_trace::span!(
        "fleet.distribute",
        classes = pending.len(),
        peers = fc.peers.len()
    );
    let timeout = Duration::from_millis(fc.peer_timeout_ms.max(1));
    let chunk = if fc.chunk > 0 {
        fc.chunk
    } else {
        pending.len().div_ceil(fc.peers.len() * 3).max(1)
    };
    // Contiguous ascending runs: each shard self-screens (a found test
    // drops the shard's own later classes) without any cross-chunk
    // bookkeeping, because all of a chunk's classes ascend.
    let mut queue: VecDeque<Vec<usize>> = pending.chunks(chunk).map(<[usize]>::to_vec).collect();
    let (tx, rx) = mpsc::channel::<PeerMsg>();
    let mut peers: Vec<Peer> = fc
        .peers
        .iter()
        .map(|addr| Peer {
            addr: addr.clone(),
            writer: None,
            shard: None,
            chunk: Vec::new(),
            attempts: 0,
            gen: 0,
            shared: Arc::new(PeerShared {
                inflight_since: Mutex::new(None),
                closed: AtomicBool::new(false),
            }),
        })
        .collect();
    let mut reviving = 0usize;
    for q in 0..peers.len() {
        match enlist(&peers[q].addr, timeout) {
            Ok((writer, reader)) => attach(&mut peers, q, writer, reader, timeout, &tx),
            Err(reason) => kill_peer(
                &mut peers,
                q,
                &reason,
                &mut queue,
                verdicts,
                stats,
                fc,
                &mut reviving,
                &tx,
            ),
        }
    }

    let mut next_shard: u64 = 1;
    loop {
        // Hand every idle live peer the next queued shard.
        for q in 0..peers.len() {
            if peers[q].writer.is_none() || peers[q].shard.is_some() {
                continue;
            }
            let Some(classes) = queue.pop_front() else {
                break;
            };
            let shard = next_shard;
            next_shard += 1;
            let req = Request::ShardSubmit(Box::new(ShardSpec {
                job: spec.clone(),
                classes: classes.clone(),
            }));
            let line = req.to_json_with_id(Some(shard)).render();
            match write_line(peers[q].writer.as_mut().expect("live peer"), &line) {
                Ok(()) => {
                    peers[q].shard = Some(shard);
                    peers[q].chunk = classes;
                    *peers[q]
                        .shared
                        .inflight_since
                        .lock()
                        .expect("peer watchdog lock") = Some(Instant::now());
                    stats.shards += 1;
                    m.counter("fleet.shards").inc();
                }
                Err(e) => {
                    queue.push_front(classes);
                    kill_peer(
                        &mut peers,
                        q,
                        &format!("shard write: {e}"),
                        &mut queue,
                        verdicts,
                        stats,
                        fc,
                        &mut reviving,
                        &tx,
                    );
                }
            }
        }

        let inflight = peers.iter().any(|p| p.shard.is_some());
        if queue.is_empty() && !inflight {
            break;
        }
        if reviving == 0 && peers.iter().all(|p| p.writer.is_none()) {
            // The whole fleet is gone and nothing is coming back.  Count
            // what never ran and let the merge recompute it locally.
            stats.unassigned_classes += queue.iter().map(Vec::len).sum::<usize>()
                + peers
                    .iter()
                    .flat_map(|p| p.chunk.iter())
                    .filter(|&&c| verdicts[c].is_none())
                    .count();
            break;
        }

        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(PeerMsg::Verdict {
                peer,
                class,
                status,
            }) => {
                if class < verdicts.len() && verdicts[class].is_none() {
                    // Relay a found test to every other busy peer so its
                    // remaining classes can be screened.  Verdicts are
                    // pure, so a missed or raced relay costs time only.
                    if acfg.fault_sim {
                        if let FaultStatus::Detected { sequence } = &status {
                            relay(
                                &mut peers,
                                peer,
                                class,
                                sequence,
                                &mut queue,
                                verdicts,
                                stats,
                                fc,
                                &mut reviving,
                                &tx,
                            );
                        }
                    }
                    verdicts[class] = Some(status);
                    stats.remote_verdicts += 1;
                    m.counter("fleet.remote_verdicts").inc();
                }
            }
            Ok(PeerMsg::ShardDone { peer, gen }) => {
                if gen == peers[peer].gen {
                    peers[peer].shard = None;
                    peers[peer].chunk.clear();
                    *peers[peer]
                        .shared
                        .inflight_since
                        .lock()
                        .expect("peer watchdog lock") = None;
                }
            }
            Ok(PeerMsg::Dead { peer, gen, reason }) => {
                if gen == peers[peer].gen {
                    kill_peer(
                        &mut peers,
                        peer,
                        &reason,
                        &mut queue,
                        verdicts,
                        stats,
                        fc,
                        &mut reviving,
                        &tx,
                    );
                }
            }
            Ok(PeerMsg::Revived {
                peer,
                writer,
                reader,
            }) => {
                reviving -= 1;
                eprintln!("satpg fleet: peer {} revived", peers[peer].addr);
                attach(&mut peers, peer, writer, reader, timeout, &tx);
            }
            Ok(PeerMsg::ReviveFailed { peer, reason }) => {
                reviving -= 1;
                if peers[peer].attempts < fc.max_retries {
                    peers[peer].attempts += 1;
                    let attempt = peers[peer].attempts;
                    reviving += 1;
                    spawn_reviver(peer, peers[peer].addr.clone(), attempt, fc, &tx);
                } else {
                    eprintln!(
                        "satpg fleet: peer {} abandoned after {} attempts: {reason}",
                        peers[peer].addr, peers[peer].attempts
                    );
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Unreachable while we hold `tx`, but harmless.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Release lingering reader threads (idle pollers exit on the flag;
    // dropping the write halves below does not close their sockets,
    // since each reader owns a clone).
    for p in &peers {
        p.shared.closed.store(true, Ordering::SeqCst);
    }
}

/// Relays a `Detected` test from `from` to every other peer with a
/// shard in flight.  A failed write is a peer death (the socket is
/// broken for shard traffic too).
#[allow(clippy::too_many_arguments)]
fn relay(
    peers: &mut [Peer],
    from: usize,
    class: usize,
    test: &TestSequence,
    queue: &mut VecDeque<Vec<usize>>,
    verdicts: &[Option<FaultStatus>],
    stats: &mut FleetStats,
    fc: &FleetConfig,
    reviving: &mut usize,
    tx: &mpsc::Sender<PeerMsg>,
) {
    for q in 0..peers.len() {
        if q == from || peers[q].writer.is_none() {
            continue;
        }
        let Some(shard) = peers[q].shard else {
            continue;
        };
        let req = Request::Broadcast {
            shard,
            class,
            test: test.clone(),
        };
        match write_line(
            peers[q].writer.as_mut().expect("live peer"),
            &req.to_json_value().render(),
        ) {
            Ok(()) => {
                stats.broadcasts_relayed += 1;
                satpg_trace::metrics().counter("fleet.broadcasts").inc();
            }
            Err(e) => kill_peer(
                peers,
                q,
                &format!("broadcast write: {e}"),
                queue,
                verdicts,
                stats,
                fc,
                reviving,
                tx,
            ),
        }
    }
}
