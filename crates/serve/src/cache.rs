//! Cross-request caching of parsed netlists and constructed CSSGs.
//!
//! Both caches are keyed by **content hash** (FNV-1a over a canonical
//! text), so a benchmark submitted by name and the same circuit pasted
//! inline share one CSSG entry.  Each cache is LRU-bounded and counts
//! hits/misses/evictions; the counters are surfaced in the `status`
//! response and asserted by the service tests.

use satpg_core::json::Json;
use satpg_core::Cssg;
use satpg_netlist::Circuit;
use std::sync::Arc;

/// 64-bit FNV-1a: tiny, deterministic, and good enough for cache keys
/// (collisions only cost a wrong-but-valid cache identity, so the job
/// layer re-checks the circuit name on circuit hits).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hit/miss/eviction counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Entries displaced by the LRU bound.
    pub evictions: usize,
}

impl CacheStats {
    /// The machine-readable form.
    pub fn to_json_value(&self, entries: usize) -> Json {
        Json::Obj(vec![
            ("entries".to_string(), Json::int(entries)),
            ("hits".to_string(), Json::int(self.hits)),
            ("misses".to_string(), Json::int(self.misses)),
            ("evictions".to_string(), Json::int(self.evictions)),
        ])
    }
}

/// A small LRU map: linear scan, counter-stamped recency.  Capacities
/// are tens of entries, so O(n) lookups are irrelevant next to the
/// seconds-scale work an entry saves.
struct Lru<K, V> {
    cap: usize,
    tick: u64,
    entries: Vec<(K, V, u64)>,
    stats: CacheStats,
}

impl<K: Eq, V: Clone> Lru<K, V> {
    fn new(cap: usize) -> Self {
        Lru {
            cap: cap.max(1),
            tick: 0,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.iter_mut().find(|(k, _, _)| k == key) {
            Some((_, v, used)) => {
                *used = self.tick;
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, key: K, value: V) {
        self.tick += 1;
        if let Some(slot) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            slot.1 = value;
            slot.2 = self.tick;
            return;
        }
        if self.entries.len() >= self.cap {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(i, _)| i)
                .expect("cap >= 1 and len >= cap");
            self.entries.swap_remove(lru);
            self.stats.evictions += 1;
        }
        self.entries.push((key, value, self.tick));
    }
}

/// The session cache: parsed netlists keyed by submission-content hash,
/// CSSGs keyed by canonical-netlist hash plus the transition bound `k`.
pub struct SessionCache {
    circuits: Lru<u64, Arc<Circuit>>,
    cssgs: Lru<(u64, Option<usize>), Arc<Cssg>>,
}

impl SessionCache {
    /// A cache bounded at `cap` entries per level.
    pub fn new(cap: usize) -> Self {
        SessionCache {
            circuits: Lru::new(cap),
            cssgs: Lru::new(cap),
        }
    }

    /// Looks up a parsed circuit by submission-content hash.
    pub fn get_circuit(&mut self, key: u64) -> Option<Arc<Circuit>> {
        self.circuits.get(&key)
    }

    /// Stores a parsed circuit.
    pub fn put_circuit(&mut self, key: u64, ckt: Arc<Circuit>) {
        self.circuits.put(key, ckt);
    }

    /// Looks up a CSSG by canonical-netlist hash and transition bound.
    pub fn get_cssg(&mut self, key: (u64, Option<usize>)) -> Option<Arc<Cssg>> {
        self.cssgs.get(&key)
    }

    /// Stores a CSSG.
    pub fn put_cssg(&mut self, key: (u64, Option<usize>), cssg: Arc<Cssg>) {
        self.cssgs.put(key, cssg);
    }

    /// Counters of the circuit-level cache.
    pub fn circuit_stats(&self) -> CacheStats {
        self.circuits.stats
    }

    /// Counters of the CSSG-level cache.
    pub fn cssg_stats(&self) -> CacheStats {
        self.cssgs.stats
    }

    /// The machine-readable form of both levels.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            (
                "circuits".to_string(),
                self.circuits
                    .stats
                    .to_json_value(self.circuits.entries.len()),
            ),
            (
                "cssgs".to_string(),
                self.cssgs.stats.to_json_value(self.cssgs.entries.len()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"circuit a"), fnv64(b"circuit b"));
        assert_eq!(fnv64(b"same"), fnv64(b"same"));
    }

    #[test]
    fn lru_counts_and_evicts() {
        let mut l: Lru<u64, u64> = Lru::new(2);
        assert_eq!(l.get(&1), None);
        l.put(1, 10);
        l.put(2, 20);
        assert_eq!(l.get(&1), Some(10)); // touch 1 → 2 is now LRU
        l.put(3, 30); // evicts 2
        assert_eq!(l.get(&2), None);
        assert_eq!(l.get(&1), Some(10));
        assert_eq!(l.get(&3), Some(30));
        assert_eq!(l.stats.evictions, 1);
        assert_eq!(l.stats.hits, 3);
        assert_eq!(l.stats.misses, 2);
    }

    #[test]
    fn session_cache_levels_are_independent() {
        let mut c = SessionCache::new(4);
        let ckt = Arc::new(satpg_netlist::library::c_element());
        c.put_circuit(7, ckt.clone());
        assert!(c.get_circuit(7).is_some());
        assert!(c.get_cssg((7, None)).is_none());
        assert_eq!(c.circuit_stats().hits, 1);
        assert_eq!(c.cssg_stats().misses, 1);
        let v = c.to_json_value();
        assert_eq!(
            v.get("circuits")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_usize(),
            Some(1)
        );
    }
}
