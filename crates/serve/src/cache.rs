//! Cross-request caching of parsed netlists and constructed CSSGs.
//!
//! Both caches are keyed by **content hash** (FNV-1a over a canonical
//! text), so a benchmark submitted by name and the same circuit pasted
//! inline share one CSSG entry.  Each cache is LRU-bounded and counts
//! hits/misses/evictions; the counters are surfaced in the `status`
//! response and asserted by the service tests.

use satpg_core::json::Json;
use satpg_core::Cssg;
use satpg_netlist::Circuit;
use std::collections::HashSet;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// 64-bit FNV-1a: tiny, deterministic, and good enough for cache keys
/// (collisions only cost a wrong-but-valid cache identity, so the job
/// layer re-checks the circuit name on circuit hits).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hit/miss/eviction counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Entries displaced by the LRU bound.
    pub evictions: usize,
}

impl CacheStats {
    /// The machine-readable form.
    pub fn to_json_value(&self, entries: usize) -> Json {
        Json::Obj(vec![
            ("entries".to_string(), Json::int(entries)),
            ("hits".to_string(), Json::int(self.hits)),
            ("misses".to_string(), Json::int(self.misses)),
            ("evictions".to_string(), Json::int(self.evictions)),
        ])
    }
}

/// A small LRU map: linear scan, counter-stamped recency.  Capacities
/// are tens of entries, so O(n) lookups are irrelevant next to the
/// seconds-scale work an entry saves.  Every entry carries a caller-
/// supplied byte weight so the daemon can report how much memory the
/// cache is actually holding (the `netlist_cache_bytes` gauge).
struct Lru<K, V> {
    cap: usize,
    tick: u64,
    entries: Vec<(K, V, u64, usize)>,
    stats: CacheStats,
}

impl<K: Eq, V: Clone> Lru<K, V> {
    fn new(cap: usize) -> Self {
        Lru {
            cap: cap.max(1),
            tick: 0,
            entries: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.iter_mut().find(|(k, _, _, _)| k == key) {
            Some((_, v, used, _)) => {
                *used = self.tick;
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// [`Lru::get`] without touching the hit/miss counters or recency
    /// (for re-checks that already counted their first probe).
    fn peek(&self, key: &K) -> Option<V> {
        self.entries
            .iter()
            .find(|(k, _, _, _)| k == key)
            .map(|(_, v, _, _)| v.clone())
    }

    fn put(&mut self, key: K, value: V, weight: usize) {
        self.tick += 1;
        if let Some(slot) = self.entries.iter_mut().find(|(k, _, _, _)| *k == key) {
            slot.1 = value;
            slot.2 = self.tick;
            slot.3 = weight;
            return;
        }
        if self.entries.len() >= self.cap {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used, _))| *used)
                .map(|(i, _)| i)
                .expect("cap >= 1 and len >= cap");
            self.entries.swap_remove(lru);
            self.stats.evictions += 1;
        }
        self.entries.push((key, value, self.tick, weight));
    }

    /// Bytes held across live entries (eviction subtracts implicitly;
    /// the sum is O(entries), which is tens).
    fn total_weight(&self) -> usize {
        self.entries.iter().map(|(_, _, _, w)| *w).sum()
    }
}

/// Build coalescing for expensive cache fills: at most one in-flight
/// build per key, with later requesters blocking until the first
/// finishes instead of duplicating the work (the anti-stampede guard in
/// front of the CSSG cache).
///
/// Protocol: call [`SingleFlight::begin`]; on `true` you own the build —
/// store the result in the cache, then call [`SingleFlight::finish`]
/// (also on failure, so waiters can retry).  On `false` someone else is
/// building: call [`SingleFlight::wait`], then re-check the cache (a
/// failed build or an eviction means you may become the builder on the
/// retry).
pub struct SingleFlight<K> {
    inflight: Mutex<HashSet<K>>,
    done: Condvar,
}

impl<K: Eq + Hash + Clone> SingleFlight<K> {
    /// An empty tracker.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashSet::new()),
            done: Condvar::new(),
        }
    }

    /// Claims the build of `key`.  `true` means the caller builds;
    /// `false` means another thread already is.
    pub fn begin(&self, key: K) -> bool {
        self.inflight
            .lock()
            .expect("single-flight lock")
            .insert(key)
    }

    /// Releases the claim on `key` and wakes every waiter.  Call exactly
    /// once per successful [`SingleFlight::begin`], whether the build
    /// succeeded or failed.
    pub fn finish(&self, key: &K) {
        let mut set = self.inflight.lock().expect("single-flight lock");
        set.remove(key);
        self.done.notify_all();
    }

    /// Blocks until no build of `key` is in flight (returns immediately
    /// if none is).
    pub fn wait(&self, key: &K) {
        let mut set = self.inflight.lock().expect("single-flight lock");
        while set.contains(key) {
            set = self.done.wait(set).expect("single-flight lock");
        }
    }
}

impl<K: Eq + Hash + Clone> Default for SingleFlight<K> {
    fn default() -> Self {
        Self::new()
    }
}

/// The session cache: parsed netlists keyed by submission-content hash,
/// CSSGs keyed by canonical-netlist hash plus the transition bound `k`.
pub struct SessionCache {
    circuits: Lru<u64, Arc<Circuit>>,
    cssgs: Lru<(u64, Option<usize>, u64), Arc<Cssg>>,
}

impl SessionCache {
    /// A cache bounded at `cap` entries per level.
    pub fn new(cap: usize) -> Self {
        SessionCache {
            circuits: Lru::new(cap),
            cssgs: Lru::new(cap),
        }
    }

    /// Looks up a parsed circuit by submission-content hash.
    pub fn get_circuit(&mut self, key: u64) -> Option<Arc<Circuit>> {
        self.circuits.get(&key)
    }

    /// Stores a parsed circuit; `bytes` is the size of the canonical
    /// text it was parsed from (the memory gauge's unit of account).
    pub fn put_circuit(&mut self, key: u64, ckt: Arc<Circuit>, bytes: usize) {
        self.circuits.put(key, ckt, bytes);
    }

    /// Looks up a CSSG by canonical-netlist hash and transition bound.
    pub fn get_cssg(&mut self, key: (u64, Option<usize>, u64)) -> Option<Arc<Cssg>> {
        self.cssgs.get(&key)
    }

    /// [`SessionCache::get_cssg`] without counting: the single-flight
    /// double-check already recorded its miss on the first probe.
    pub fn peek_cssg(&self, key: (u64, Option<usize>, u64)) -> Option<Arc<Cssg>> {
        self.cssgs.peek(&key)
    }

    /// Stores a CSSG.
    pub fn put_cssg(&mut self, key: (u64, Option<usize>, u64), cssg: Arc<Cssg>) {
        // Weight a CSSG by its edge table: 16 bytes per (state, pattern,
        // successor) record approximates the dominant allocation.
        let bytes = cssg.num_edges().saturating_mul(16);
        self.cssgs.put(key, cssg, bytes);
    }

    /// Bytes of canonical netlist text held by the circuit level.
    pub fn circuit_bytes(&self) -> usize {
        self.circuits.total_weight()
    }

    /// Live entries in the CSSG level.
    pub fn cssg_entries(&self) -> usize {
        self.cssgs.entries.len()
    }

    /// Counters of the circuit-level cache.
    pub fn circuit_stats(&self) -> CacheStats {
        self.circuits.stats
    }

    /// Counters of the CSSG-level cache.
    pub fn cssg_stats(&self) -> CacheStats {
        self.cssgs.stats
    }

    /// The machine-readable form of both levels.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            (
                "circuits".to_string(),
                self.circuits
                    .stats
                    .to_json_value(self.circuits.entries.len()),
            ),
            (
                "cssgs".to_string(),
                self.cssgs.stats.to_json_value(self.cssgs.entries.len()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"circuit a"), fnv64(b"circuit b"));
        assert_eq!(fnv64(b"same"), fnv64(b"same"));
    }

    #[test]
    fn lru_counts_and_evicts() {
        let mut l: Lru<u64, u64> = Lru::new(2);
        assert_eq!(l.get(&1), None);
        l.put(1, 10, 100);
        l.put(2, 20, 50);
        assert_eq!(l.total_weight(), 150);
        assert_eq!(l.get(&1), Some(10)); // touch 1 → 2 is now LRU
        l.put(3, 30, 7); // evicts 2
        assert_eq!(l.total_weight(), 107, "eviction releases the weight");
        assert_eq!(l.get(&2), None);
        assert_eq!(l.get(&1), Some(10));
        assert_eq!(l.get(&3), Some(30));
        assert_eq!(l.stats.evictions, 1);
        assert_eq!(l.stats.hits, 3);
        assert_eq!(l.stats.misses, 2);
        // peek neither counts nor touches recency.
        assert_eq!(l.peek(&1), Some(10));
        assert_eq!(l.peek(&99), None);
        assert_eq!(l.stats.hits, 3);
        assert_eq!(l.stats.misses, 2);
    }

    #[test]
    fn single_flight_coalesces_concurrent_builds() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let flight: SingleFlight<u64> = SingleFlight::new();
        let builds = AtomicUsize::new(0);
        let store: Mutex<Option<u64>> = Mutex::new(None);
        // The barrier sequences the race deterministically: the builder
        // claims the key *before* the loser is released, so the loser's
        // `begin` must observe the in-flight build and wait.
        let claimed = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(flight.begin(7), "first claimant builds");
                claimed.wait();
                builds.fetch_add(1, Ordering::SeqCst);
                *store.lock().unwrap() = Some(42);
                flight.finish(&7);
            });
            s.spawn(|| {
                claimed.wait();
                if flight.begin(7) {
                    // Only reachable if the builder already finished —
                    // then the store is populated and we must not build.
                    flight.finish(&7);
                } else {
                    flight.wait(&7);
                }
                assert_eq!(*store.lock().unwrap(), Some(42), "waiter sees the result");
            });
        });
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "one build for two requests"
        );
        // Independent keys never block each other.
        assert!(flight.begin(8));
        flight.wait(&7);
        flight.finish(&8);
    }

    #[test]
    fn session_cache_levels_are_independent() {
        let mut c = SessionCache::new(4);
        let ckt = Arc::new(satpg_netlist::library::c_element());
        c.put_circuit(7, ckt.clone(), 123);
        assert!(c.get_circuit(7).is_some());
        assert!(c.get_cssg((7, None, 0)).is_none());
        assert_eq!(c.circuit_stats().hits, 1);
        assert_eq!(c.cssg_stats().misses, 1);
        assert_eq!(c.circuit_bytes(), 123);
        assert_eq!(c.cssg_entries(), 0);
        let v = c.to_json_value();
        assert_eq!(
            v.get("circuits")
                .unwrap()
                .get("entries")
                .unwrap()
                .as_usize(),
            Some(1)
        );
    }
}
