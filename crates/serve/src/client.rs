//! A blocking protocol client, used by `satpg submit`/`status`/
//! `shutdown` and by the service tests.

use crate::net::{connect, read_line_capped, write_line, Conn};
use crate::proto::{JobSpec, Request, MAX_LINE_BYTES};
use satpg_core::json::Json;
use std::fmt;
use std::io::{self, BufReader};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer sent something that is not protocol JSON.
    Protocol(String),
    /// The daemon refused the request (backpressure, malformed, …).
    Rejected(String),
    /// The job ran and failed; the daemon's error message.
    Job(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected(m) => write!(f, "rejected: {m}"),
            ClientError::Job(m) => write!(f, "job failed: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The result of a completed submission.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// The job id the daemon assigned.
    pub job: u64,
    /// Every event received, in arrival order (including the final
    /// `report`).
    pub events: Vec<Json>,
    /// The final `report` event.
    pub report: Json,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Conn>,
    writer: Conn,
    /// Correlation ids: every request carries a fresh one, and every
    /// reply is checked to echo it, so a desynchronized stream is caught
    /// as a protocol error instead of silently misattributed.
    next_id: u64,
}

impl Client {
    /// Connects to `host:port` or `unix:/path`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let conn = connect(addr)?;
        let reader = BufReader::new(conn.try_clone()?);
        Ok(Client {
            reader,
            writer: conn,
            next_id: 1,
        })
    }

    fn send(&mut self, req: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_line(&mut self.writer, &req.to_json_with_id(Some(id)).render())?;
        Ok(id)
    }

    fn next_event(&mut self) -> Result<Option<Json>, ClientError> {
        match read_line_capped(&mut self.reader, MAX_LINE_BYTES)? {
            None => Ok(None),
            Some(line) => Json::parse(&line)
                .map(Some)
                .map_err(|e| ClientError::Protocol(format!("{e} in {line:?}"))),
        }
    }

    /// Checks that a reply carries the expected correlation id echo.
    /// Replies without an `id` pass: only `rejected` events for
    /// unparseable lines lack one, and an older daemon omits them all.
    fn check_echo(ev: &Json, id: u64) -> Result<(), ClientError> {
        match ev.get("id").and_then(Json::as_usize) {
            None => Ok(()),
            Some(got) if got as u64 == id => Ok(()),
            Some(got) => Err(ClientError::Protocol(format!(
                "reply echoes id {got}, expected {id}: {ev}"
            ))),
        }
    }

    /// Submits a job and drives `on_event` with every streamed event
    /// until the final `report`, which is returned.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on backpressure, [`ClientError::Job`]
    /// when the daemon reports a job failure (e.g. a parse error in an
    /// inline circuit), and transport/protocol errors otherwise.
    pub fn submit_streaming(
        &mut self,
        spec: JobSpec,
        on_event: &mut dyn FnMut(&Json),
    ) -> Result<SubmitOutcome, ClientError> {
        let id = self.send(&Request::Submit(Box::new(spec)))?;
        let first = self
            .next_event()?
            .ok_or_else(|| ClientError::Protocol("connection closed before reply".into()))?;
        Self::check_echo(&first, id)?;
        on_event(&first);
        let job = match first.get("event").and_then(Json::as_str) {
            Some("accepted") => first.get("job").and_then(Json::as_usize).unwrap_or(0) as u64,
            Some("rejected") => {
                let reason = first
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified");
                return Err(ClientError::Rejected(reason.to_string()));
            }
            _ => {
                return Err(ClientError::Protocol(format!(
                    "expected accepted/rejected, got {first}"
                )))
            }
        };
        let mut events = vec![first];
        loop {
            let ev = self.next_event()?.ok_or_else(|| {
                ClientError::Protocol("connection closed before the final report".into())
            })?;
            Self::check_echo(&ev, id)?;
            on_event(&ev);
            let kind = ev.get("event").and_then(Json::as_str).map(str::to_string);
            events.push(ev);
            match kind.as_deref() {
                Some("report") => {
                    let report = events.last().expect("just pushed").clone();
                    return Ok(SubmitOutcome {
                        job,
                        events,
                        report,
                    });
                }
                Some("error") => {
                    let msg = events
                        .last()
                        .expect("just pushed")
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified")
                        .to_string();
                    return Err(ClientError::Job(msg));
                }
                _ => {}
            }
        }
    }

    /// [`Client::submit_streaming`] without an event callback.
    ///
    /// # Errors
    ///
    /// Same as [`Client::submit_streaming`].
    pub fn submit(&mut self, spec: JobSpec) -> Result<SubmitOutcome, ClientError> {
        self.submit_streaming(spec, &mut |_| {})
    }

    /// Fetches the daemon's status snapshot.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        let id = self.send(&Request::Status)?;
        let ev = self
            .next_event()?
            .ok_or_else(|| ClientError::Protocol("connection closed before status".into()))?;
        Self::check_echo(&ev, id)?;
        Ok(ev)
    }

    /// Fetches a snapshot of the daemon's process-wide metrics
    /// registry (counters/gauges/histograms across every job it ran).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let id = self.send(&Request::Metrics)?;
        let ev = self
            .next_event()?
            .ok_or_else(|| ClientError::Protocol("connection closed before metrics".into()))?;
        Self::check_echo(&ev, id)?;
        Ok(ev)
    }

    /// Asks the daemon to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a non-acknowledgement reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.send(&Request::Shutdown)?;
        let reply = self
            .next_event()?
            .ok_or_else(|| ClientError::Protocol("connection closed before ack".into()))?;
        Self::check_echo(&reply, id)?;
        if reply.get("shutdown").and_then(Json::as_bool) == Some(true) {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("unexpected reply {reply}")))
        }
    }
}
