//! `satpg-serve` — the persistent ATPG service daemon.
//!
//! The batch flow re-parses the circuit and rebuilds its synchronous
//! abstraction on every invocation.  This crate keeps a `satpg` process
//! resident: a std-only daemon (TCP or Unix-domain socket, JSON-lines
//! wire protocol — see [`proto`]) that
//!
//! * accepts circuit submissions — a bundled **benchmark** by name, a
//!   generated **family** spec, or inline **`.g`/`.ckt` text**;
//! * schedules them as jobs on a bounded queue with **backpressure**
//!   (a full queue answers `rejected` instead of buffering without
//!   limit) and a fixed executor pool, each job running the
//!   fault-parallel engine with its own worker count;
//! * **streams telemetry** while a job runs: stage transitions,
//!   per-worker stats (searches, steals, broadcast drops, BDD
//!   GC sweeps/reclaimed/peak), discovered tests, and the final
//!   machine-readable report;
//! * keeps a **cross-request cache** ([`cache`]) of parsed netlists and
//!   constructed CSSGs keyed by content hash with an LRU bound, so a
//!   repeated or batched submission skips reconstruction — the
//!   dominant cost for large circuits — with hit/miss counters
//!   surfaced in `status` and per-job events.
//!
//! Reports are *identical* to the serial [`satpg_core::run_atpg`] for
//! the same configuration (the engine's deterministic-merge guarantee),
//! so a daemon answer is as trustworthy as a batch run.  Per-job BDD
//! managers die with their job and respect `gc_threshold` while alive,
//! which keeps daemon-lifetime memory bounded.
//!
//! On top of the single-daemon service sits the **fleet** layer
//! ([`fleet`]): a coordinator partitions one campaign's fault classes
//! across peer daemons over the same wire protocol (`enlist` /
//! `shard_submit` / `broadcast`), requeues shards lost to peer failures,
//! and closes with the engine's deterministic merge — so the fleet
//! report stays byte-identical to a serial run under any peer count and
//! any failure pattern.  [`testing`] ships the fault-injection proxy the
//! integration suite uses to prove exactly that.

pub mod cache;
pub mod client;
pub mod fleet;
pub mod job;
mod net;
pub mod proto;
mod server;
pub mod testing;

pub use client::{Client, ClientError, SubmitOutcome};
pub use fleet::{run_fleet, run_fleet_built, FleetConfig, FleetOutcome, FleetStats};
pub use job::{job_atpg_config, resolve_circuit};
pub use proto::{CircuitSpec, JobSpec, Request, ShardSpec};
pub use server::{ServeConfig, Server};
