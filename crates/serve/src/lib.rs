//! `satpg-serve` — the persistent ATPG service daemon.
//!
//! The batch flow re-parses the circuit and rebuilds its synchronous
//! abstraction on every invocation.  This crate keeps a `satpg` process
//! resident: a std-only daemon (TCP or Unix-domain socket, JSON-lines
//! wire protocol — see [`proto`]) that
//!
//! * accepts circuit submissions — a bundled **benchmark** by name, a
//!   generated **family** spec, or inline **`.g`/`.ckt` text**;
//! * schedules them as jobs on a bounded queue with **backpressure**
//!   (a full queue answers `rejected` instead of buffering without
//!   limit) and a fixed executor pool, each job running the
//!   fault-parallel engine with its own worker count;
//! * **streams telemetry** while a job runs: stage transitions,
//!   per-worker stats (searches, steals, broadcast drops, BDD
//!   GC sweeps/reclaimed/peak), discovered tests, and the final
//!   machine-readable report;
//! * keeps a **cross-request cache** ([`cache`]) of parsed netlists and
//!   constructed CSSGs keyed by content hash with an LRU bound, so a
//!   repeated or batched submission skips reconstruction — the
//!   dominant cost for large circuits — with hit/miss counters
//!   surfaced in `status` and per-job events.
//!
//! Reports are *identical* to the serial [`satpg_core::run_atpg`] for
//! the same configuration (the engine's deterministic-merge guarantee),
//! so a daemon answer is as trustworthy as a batch run.  Per-job BDD
//! managers die with their job and respect `gc_threshold` while alive,
//! which keeps daemon-lifetime memory bounded.

pub mod cache;
pub mod client;
pub mod job;
mod net;
pub mod proto;
mod server;

pub use client::{Client, ClientError, SubmitOutcome};
pub use job::resolve_circuit;
pub use proto::{CircuitSpec, JobSpec, Request};
pub use server::{ServeConfig, Server};
