//! Service integration tests: concurrent submissions against a live
//! daemon, result identity with the serial flow, cache hit paths,
//! backpressure, malformed input, and bounded memory across jobs.

use satpg_core::json::Json;
use satpg_core::{run_atpg, AtpgConfig, ThreePhaseConfig};
use satpg_serve::{CircuitSpec, Client, ClientError, JobSpec, ServeConfig, Server};
use std::thread;

fn start(cfg: ServeConfig) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn bench_spec(name: &str) -> JobSpec {
    JobSpec {
        workers: 2,
        ..JobSpec::new(CircuitSpec::Bench {
            name: name.to_string(),
            style: "si".to_string(),
        })
    }
}

/// The serial reference for a bench submission with daemon defaults,
/// serialized without timing.
fn serial_json(name: &str) -> String {
    let ckt = satpg_serve::resolve_circuit(&CircuitSpec::Bench {
        name: name.to_string(),
        style: "si".to_string(),
    })
    .expect("suite synthesizes");
    let cfg = AtpgConfig {
        three_phase: ThreePhaseConfig::scaled(&ckt),
        ..AtpgConfig::paper()
    };
    run_atpg(&ckt, &cfg)
        .expect("serial flow runs")
        .to_json_value(false)
        .render()
}

/// Timing-free rendering of the `report` object inside a report event.
fn daemon_report_json(report_event: &Json) -> String {
    let report = report_event.get("report").expect("report body");
    let Json::Obj(members) = report else {
        panic!("report must be an object")
    };
    let stripped: Vec<(String, Json)> = members
        .iter()
        .filter(|(k, _)| k != "timing_us")
        .cloned()
        .collect();
    Json::Obj(stripped).render()
}

#[test]
fn concurrent_clients_get_serial_identical_reports() {
    let (addr, handle) = start(ServeConfig {
        pool_workers: 3,
        ..ServeConfig::default()
    });
    // Five concurrent clients; two share a benchmark so the duplicate
    // exercises the cache while the others race it.
    let benches = ["converta", "dff", "seq4", "nowick", "converta"];
    let results: Vec<(String, String)> = thread::scope(|s| {
        let handles: Vec<_> = benches
            .iter()
            .map(|&name| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    // Each client submits twice to exercise per-connection
                    // sequencing as well.
                    let first = client.submit(bench_spec(name)).expect("submit 1");
                    let second = client.submit(bench_spec(name)).expect("submit 2");
                    assert_eq!(
                        daemon_report_json(&first.report),
                        daemon_report_json(&second.report),
                        "{name}: resubmission changed the verdicts"
                    );
                    (name.to_string(), daemon_report_json(&second.report))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (name, daemon) in &results {
        assert_eq!(
            daemon,
            &serial_json(name),
            "{name}: daemon report differs from serial run_atpg"
        );
    }
    let mut client = Client::connect(&addr).expect("connect");
    let status = client.status().expect("status");
    assert_eq!(
        status
            .get("jobs")
            .and_then(|j| j.get("done"))
            .and_then(Json::as_usize),
        Some(benches.len() * 2)
    );
    // 5 distinct (bench, k) jobs → ≥ 5 misses; 10 jobs total → 5 hits.
    let cssgs = status.get("cache").and_then(|c| c.get("cssgs")).unwrap();
    assert!(cssgs.get("hits").and_then(Json::as_usize).unwrap() >= 5);
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

#[test]
fn duplicate_submission_hits_the_cssg_cache() {
    let (addr, handle) = start(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    let first = client.submit(bench_spec("converta")).expect("submit");
    let cssg_stage = |events: &[Json]| {
        events
            .iter()
            .find(|e| e.get("stage").and_then(Json::as_str) == Some("cssg"))
            .expect("cssg stage event")
            .get("cache")
            .and_then(Json::as_str)
            .expect("cache flag")
            .to_string()
    };
    assert_eq!(cssg_stage(&first.events), "miss");

    let second = client.submit(bench_spec("converta")).expect("submit");
    assert_eq!(cssg_stage(&second.events), "hit");
    assert_eq!(
        second
            .report
            .get("cache")
            .and_then(|c| c.get("cssg"))
            .and_then(Json::as_str),
        Some("hit")
    );
    // The same circuit pasted inline shares the CSSG entry: the content
    // hash is over the canonical netlist, not the submission form.
    let ckt = satpg_serve::resolve_circuit(&CircuitSpec::Bench {
        name: "converta".to_string(),
        style: "si".to_string(),
    })
    .unwrap();
    let inline = client
        .submit(JobSpec {
            workers: 2,
            ..JobSpec::new(CircuitSpec::InlineCkt {
                text: satpg_netlist::to_ckt(&ckt),
            })
        })
        .expect("inline submit");
    assert_eq!(cssg_stage(&inline.events), "hit");
    assert_eq!(
        daemon_report_json(&inline.report),
        daemon_report_json(&second.report)
    );

    let status = client.status().expect("status");
    let cache = status.get("cache").unwrap();
    let hits = |lvl: &str| {
        cache
            .get(lvl)
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_usize)
            .unwrap()
    };
    assert_eq!(hits("cssgs"), 2, "bench resubmit + inline twin");
    assert_eq!(hits("circuits"), 1, "only the bench resubmit");
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// The anti-stampede satellite: two clients racing the same cold CSSG
/// key must trigger exactly **one** construction.  Whether the second
/// requester lands while the first is mid-build (it then blocks on the
/// single-flight guard and takes a cache hit afterwards) or after it
/// finished (a plain hit), `cssg_builds` stays 1 — so the assertion is
/// deterministic even though the interleaving is not.
#[test]
fn concurrent_misses_single_flight_the_cssg_build() {
    let (addr, handle) = start(ServeConfig {
        pool_workers: 2,
        ..ServeConfig::default()
    });
    // muller-12 is new to the cache and its CSSG build is slow enough
    // that two pool workers usually overlap on it.
    let spec = || JobSpec {
        workers: 1,
        ..JobSpec::new(CircuitSpec::Family {
            name: "muller".to_string(),
            size: 12,
        })
    };
    let reports: Vec<String> = thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let out = client.submit(spec()).expect("submit");
                    daemon_report_json(&out.report)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(reports[0], reports[1], "both clients get the same report");

    let mut client = Client::connect(&addr).expect("connect");
    let status = client.status().expect("status");
    let top = |k: &str| status.get(k).and_then(Json::as_usize).unwrap();
    assert_eq!(top("cssg_builds"), 1, "the stampede built once: {status}");
    let jobs = status.get("jobs").unwrap();
    assert_eq!(jobs.get("done").and_then(Json::as_usize), Some(2));
    let cssg_cache = status
        .get("cache")
        .and_then(|c| c.get("cssgs"))
        .expect("cssg cache stats");
    let hits = cssg_cache.get("hits").and_then(Json::as_usize).unwrap();
    let misses = cssg_cache.get("misses").and_then(Json::as_usize).unwrap();
    // One requester built (≥1 miss); the other either waited out the
    // build or arrived late — both paths end in a hit.
    assert!(misses >= 1, "{status}");
    assert!(hits >= 1, "{status}");
    // Waits only happen on true overlap; the counter must exist and
    // never exceed the loser count.
    assert!(top("cssg_singleflight_waits") <= 1, "{status}");
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

#[test]
fn zero_depth_queue_rejects_with_backpressure() {
    let (addr, handle) = start(ServeConfig {
        queue_depth: 0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    match client.submit(bench_spec("dff")) {
        Err(ClientError::Rejected(reason)) => assert!(reason.contains("queue full"), "{reason}"),
        other => panic!("expected backpressure rejection, got {other:?}"),
    }
    let status = client.status().expect("status");
    assert_eq!(
        status
            .get("jobs")
            .and_then(|j| j.get("rejected"))
            .and_then(Json::as_usize),
        Some(1)
    );
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

#[test]
fn malformed_submissions_fail_with_line_numbers_not_panics() {
    let (addr, handle) = start(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    // Truncated .g text: the daemon answers with the parser's located
    // error and stays alive.
    match client.submit(JobSpec::new(CircuitSpec::InlineG {
        text: ".model broken\n.inputs a\n.graph\nq+ r+\n".to_string(),
        style: "si".to_string(),
    })) {
        Err(ClientError::Job(msg)) => assert!(msg.contains("unknown signal"), "{msg}"),
        other => panic!("expected job error, got {other:?}"),
    }
    match client.submit(JobSpec::new(CircuitSpec::InlineCkt {
        text: "circuit x\ninputs A:a\ngarbage here\n".to_string(),
    })) {
        Err(ClientError::Job(msg)) => assert!(msg.contains("line 3"), "{msg}"),
        other => panic!("expected job error, got {other:?}"),
    }
    // Unknown bench and a bad family size.
    assert!(matches!(
        client.submit(bench_spec("no-such-bench")),
        Err(ClientError::Job(_))
    ));
    assert!(matches!(
        client.submit(JobSpec::new(CircuitSpec::Family {
            name: "muller".into(),
            size: 4096,
        })),
        Err(ClientError::Job(_))
    ));
    // The daemon is still healthy after four failed jobs.
    let out = client.submit(bench_spec("dff")).expect("daemon survived");
    assert_eq!(daemon_report_json(&out.report), serial_json("dff"));
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// The ==64-input boundary through the daemon: a 64-request arbiter
/// without a pattern budget fails with the same diagnostic the serial
/// core raises (no panic, no silent one-pattern truncation); with a
/// budget the job completes and the report ledger counts the skipped
/// patterns.
#[test]
fn sixty_four_input_jobs_need_a_budget_and_then_run() {
    let (addr, handle) = start(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let arbiter64 = || {
        JobSpec::new(CircuitSpec::Family {
            name: "arbiter".to_string(),
            size: 64,
        })
    };
    // Without a budget: the daemon reports the core's own diagnostic.
    let expected = satpg_core::CoreError::PatternBudgetRequired(64).to_string();
    match client.submit(arbiter64()) {
        Err(ClientError::Job(msg)) => assert_eq!(msg, expected),
        other => panic!("expected the budget diagnostic, got {other:?}"),
    }
    // With a budget: the flow completes and the shortfall is counted.
    let out = client
        .submit(JobSpec {
            pattern_budget: Some(4),
            no_random: true,
            ..arbiter64()
        })
        .expect("budgeted 64-input job runs");
    let report = out.report.get("report").expect("report body");
    let skipped = report
        .get("cssg")
        .and_then(|c| c.get("patterns_skipped"))
        .and_then(Json::as_usize)
        .expect("skip ledger present");
    assert!(skipped > 0, "2^64 under budget 4 must record skips");
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

#[test]
fn raw_garbage_lines_get_rejected_events() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, handle) = start(ServeConfig::default());
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for bad in ["not json", "{\"cmd\":\"frob\"}", "[1,2,3]"] {
        stream.write_all(bad.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = Json::parse(line.trim()).expect("reply is protocol JSON");
        assert_eq!(v.get("event").and_then(Json::as_str), Some("rejected"));
    }
    drop(stream);
    let mut client = Client::connect(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// Correlation ids round-trip at the service level: a tagged request
/// gets its id echoed on every reply (including every streamed job
/// event), an untagged request gets untagged replies, and distinct ids
/// on one connection never cross.
#[test]
fn correlation_ids_echo_on_every_reply() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, handle) = start(ServeConfig::default());
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = |req: &str| -> Json {
        stream.write_all(req.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim()).expect("reply is protocol JSON")
    };
    // Tagged status/metrics echo their ids back, in order.
    for id in [7usize, 99, 1] {
        let v = reply(&format!("{{\"cmd\":\"status\",\"id\":{id}}}"));
        assert_eq!(v.get("id").and_then(Json::as_usize), Some(id), "{v}");
    }
    let v = reply("{\"cmd\":\"metrics\",\"id\":42}");
    assert_eq!(v.get("id").and_then(Json::as_usize), Some(42), "{v}");
    // An untagged request gets an untagged reply (old-client compat).
    let v = reply("{\"cmd\":\"status\"}");
    assert!(
        v.get("id").is_none(),
        "untagged request must not grow an id: {v}"
    );
    // A tagged submit tags the whole event stream through the report.
    stream
        .write_all(
            b"{\"cmd\":\"submit\",\"id\":5,\"circuit\":{\"bench\":\"dff\",\"style\":\"si\"},\"workers\":1}\n",
        )
        .unwrap();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = Json::parse(line.trim()).expect("event is protocol JSON");
        assert_eq!(
            v.get("id").and_then(Json::as_usize),
            Some(5),
            "every streamed event must echo the submit id: {v}"
        );
        if v.get("event").and_then(Json::as_str) == Some("report") {
            break;
        }
    }
    drop(stream);
    let mut client = Client::connect(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

#[test]
fn twenty_sequential_jobs_keep_bdd_memory_bounded() {
    let (addr, handle) = start(ServeConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let spec = || JobSpec {
        workers: 1, // deterministic audit partition → comparable peaks
        gc_threshold: Some(1024),
        no_random: true, // keep every class for the workers' managers
        ..JobSpec::new(CircuitSpec::Bench {
            name: "converta".to_string(),
            style: "si".to_string(),
        })
    };
    let mut peaks = Vec::new();
    for i in 0..20 {
        let out = client
            .submit(spec())
            .unwrap_or_else(|e| panic!("job {i}: {e}"));
        let engine = out.report.get("engine").expect("engine telemetry");
        let peak = engine
            .get("workers")
            .and_then(Json::as_arr)
            .expect("worker stats")
            .iter()
            .map(|w| w.get("bdd_peak_unique").and_then(Json::as_usize).unwrap())
            .max()
            .unwrap();
        peaks.push(peak);
    }
    // Per-job managers die with the job and GC bounds them while alive:
    // the peak must not grow across jobs (the RSS proxy of the daemon).
    let first = peaks[0];
    assert!(first > 0);
    for (i, &p) in peaks.iter().enumerate() {
        assert_eq!(p, first, "job {i}: peak drifted across identical jobs");
    }
    let status = client.status().expect("status");
    let reported = status
        .get("peak_bdd_nodes")
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(reported, first);
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_works() {
    let path = format!("/tmp/satpg-serve-test-{}.sock", std::process::id());
    let (addr, handle) = start(ServeConfig {
        addr: format!("unix:{path}"),
        ..ServeConfig::default()
    });
    assert_eq!(addr, format!("unix:{path}"));
    let mut client = Client::connect(&addr).expect("connect over unix socket");
    let out = client.submit(bench_spec("dff")).expect("submit");
    assert_eq!(daemon_report_json(&out.report), serial_json("dff"));
    client.shutdown().expect("shutdown");
    handle.join().unwrap().unwrap();
    assert!(!std::path::Path::new(&path).exists(), "socket file cleaned");
}
