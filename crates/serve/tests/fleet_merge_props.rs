//! Merge determinism under arbitrary distribution: for any partition of
//! the fault list into shards, any interleaved completion order, any
//! broadcast-screening drops and any subset of lost verdicts, feeding
//! the surviving verdicts to [`satpg_engine::merge_partial`] must
//! reproduce the serial report byte-for-byte.
//!
//! This is the property the fleet coordinator leans on (see
//! `crates/serve/DESIGN.md`): a class verdict is a pure function of
//! `(circuit, CSSG, fault, config)`, so the merge can recompute
//! anything the fleet lost without changing a single record.  The
//! simulation below mirrors the coordinator faithfully — shards hold
//! contiguous-by-index class runs, a `Detected` verdict is broadcast
//! and later classes it screens are dropped (never computed), and an
//! adversarial subset of computed verdicts simply vanishes, as if the
//! peers carrying them had died.

use proptest::prelude::*;
use satpg_core::{
    build_cssg_sharded, fault_simulate, faults_for, run_atpg_on, three_phase, AtpgConfig, Cssg,
    Fault, FaultStatus, ThreePhaseConfig,
};
use satpg_engine::{merge_partial, prepare_campaign};
use satpg_netlist::{families as nf, library, Circuit};
use std::sync::OnceLock;

struct Fixture {
    ckt: Circuit,
    cssg: Cssg,
    faults: Vec<Fault>,
    cfg: AtpgConfig,
    open: Vec<usize>,
    /// Per-class representative faults, indexed like the plan.
    reps: Vec<Fault>,
    /// The true verdict of every open class, computed once up front.
    truth: Vec<Option<FaultStatus>>,
    /// The serial report's timing-free JSON — the identity target.
    serial: String,
}

fn fixture(ckt: Circuit) -> Fixture {
    // No random stage: every class stays open, so the property covers
    // the whole fault list instead of the random stage's leftovers.
    let cfg = AtpgConfig {
        random: None,
        three_phase: ThreePhaseConfig::scaled(&ckt),
        ..AtpgConfig::paper()
    };
    let cssg = build_cssg_sharded(&ckt, &cfg.cssg, 1).expect("CSSG builds");
    let faults = faults_for(&ckt, cfg.fault_model);
    let serial = run_atpg_on(&ckt, &cssg, &faults, &cfg, 0)
        .expect("serial ATPG runs")
        .to_json_value(false)
        .render();
    let campaign = prepare_campaign(&ckt, &cssg, &faults, &cfg);
    let open = campaign.state.open_classes();
    let reps: Vec<Fault> = campaign
        .plan
        .classes()
        .iter()
        .map(|c| c.representative)
        .collect();
    let mut truth: Vec<Option<FaultStatus>> = vec![None; campaign.plan.len()];
    for &ci in &open {
        truth[ci] = Some(three_phase(&ckt, &cssg, &reps[ci], &cfg.three_phase));
    }
    Fixture {
        ckt,
        cssg,
        faults,
        cfg,
        open,
        reps,
        truth,
        serial,
    }
}

fn c_element() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| fixture(library::c_element()))
}

fn muller3() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| fixture(nf::muller_pipeline(3)))
}

/// A tiny deterministic generator so shard assignment and interleaving
/// derive reproducibly from the proptest-supplied seeds.
fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// Simulates a fleet execution: partition `fx.open` into `1..=4`
/// shards, complete classes in an arbitrary interleaving, apply the
/// coordinator's broadcast-screening drop rule, then lose a seeded
/// subset of the computed verdicts.  Returns the surviving verdict map.
fn simulate(
    fx: &Fixture,
    partition_seed: u64,
    order_seed: u64,
    loss_seed: u64,
) -> Vec<Option<FaultStatus>> {
    let mut ps = partition_seed;
    let nshards = 1 + (lcg(&mut ps) as usize) % 4;
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); nshards];
    // Contiguous runs of ascending class indices, like the coordinator's
    // chunker, but with seeded run lengths.
    let mut i = 0;
    let mut s = 0;
    while i < fx.open.len() {
        let run = 1 + (lcg(&mut ps) as usize) % 3;
        for &ci in fx.open.iter().skip(i).take(run) {
            shards[s % nshards].push(ci);
        }
        i += run;
        s += 1;
    }
    let mut queues: Vec<std::collections::VecDeque<usize>> =
        shards.into_iter().map(Into::into).collect();
    let mut os = order_seed;
    let mut computed: Vec<usize> = Vec::new();
    let mut avail: Vec<Option<FaultStatus>> = vec![None; fx.truth.len()];
    while queues.iter().any(|q| !q.is_empty()) {
        let live: Vec<usize> = (0..queues.len())
            .filter(|&q| !queues[q].is_empty())
            .collect();
        let q = live[(lcg(&mut os) as usize) % live.len()];
        let ci = queues[q].pop_front().expect("non-empty");
        let status = fx.truth[ci]
            .clone()
            .expect("open class has a truth verdict");
        if let FaultStatus::Detected { sequence } = &status {
            // Broadcast: drop every still-pending later class the test
            // screens — exactly the coordinator's (and the engine
            // worker's) rule.  Dropped classes are never computed.
            for queue in queues.iter_mut() {
                queue.retain(|&cb| {
                    cb <= ci
                        || fault_simulate(
                            &fx.ckt,
                            &fx.cssg,
                            sequence,
                            std::slice::from_ref(&fx.reps[cb]),
                        )
                        .is_empty()
                });
            }
        }
        avail[ci] = Some(status);
        computed.push(ci);
    }
    // Adversarial loss: any subset of delivered verdicts may vanish.
    let mut ls = loss_seed;
    for ci in computed {
        if lcg(&mut ls).is_multiple_of(3) {
            avail[ci] = None;
        }
    }
    avail
}

fn check(fx: &Fixture, partition_seed: u64, order_seed: u64, loss_seed: u64) {
    let mut avail = simulate(fx, partition_seed, order_seed, loss_seed);
    let campaign = prepare_campaign(&fx.ckt, &fx.cssg, &fx.faults, &fx.cfg);
    let merged = merge_partial(
        &fx.ckt,
        &fx.cssg,
        &fx.faults,
        &fx.cfg,
        &campaign.plan,
        campaign.state,
        0,
        campaign.us_random,
        0,
        &mut |ci| avail[ci].take(),
    );
    assert_eq!(
        fx.serial,
        merged.report.to_json_value(false).render(),
        "partition {partition_seed} / order {order_seed} / loss {loss_seed}: \
         the merged report must be byte-identical to serial"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn c_element_merge_is_partition_invariant(
        partition_seed in any::<u64>(),
        order_seed in any::<u64>(),
        loss_seed in any::<u64>(),
    ) {
        check(c_element(), partition_seed, order_seed, loss_seed);
    }

    #[test]
    fn muller_merge_is_partition_invariant(
        partition_seed in any::<u64>(),
        order_seed in any::<u64>(),
        loss_seed in any::<u64>(),
    ) {
        check(muller3(), partition_seed, order_seed, loss_seed);
    }
}

/// Degenerate corners the seeds may miss: everything lost (the fleet
/// delivered nothing) and nothing lost (a perfect fleet).
#[test]
fn all_lost_and_none_lost_both_merge_to_serial() {
    for fx in [c_element(), muller3()] {
        // Nothing delivered: the merge recomputes every class.
        let campaign = prepare_campaign(&fx.ckt, &fx.cssg, &fx.faults, &fx.cfg);
        let merged = merge_partial(
            &fx.ckt,
            &fx.cssg,
            &fx.faults,
            &fx.cfg,
            &campaign.plan,
            campaign.state,
            0,
            campaign.us_random,
            0,
            &mut |_| None,
        );
        assert_eq!(fx.serial, merged.report.to_json_value(false).render());
        // Not every open class becomes a fallback — the replay's own
        // screening drops some before the oracle is consulted — but the
        // first queried class always misses.
        assert!(
            fx.open.is_empty() || merged.fallbacks >= 1,
            "with nothing delivered the merge must recompute something"
        );
        // Everything delivered: the merge recomputes nothing.
        let mut avail = fx.truth.clone();
        let campaign = prepare_campaign(&fx.ckt, &fx.cssg, &fx.faults, &fx.cfg);
        let merged = merge_partial(
            &fx.ckt,
            &fx.cssg,
            &fx.faults,
            &fx.cfg,
            &campaign.plan,
            campaign.state,
            0,
            campaign.us_random,
            0,
            &mut |ci| avail[ci].take(),
        );
        assert_eq!(fx.serial, merged.report.to_json_value(false).render());
        assert_eq!(
            merged.fallbacks, 0,
            "a complete verdict map needs no fallbacks"
        );
    }
}
