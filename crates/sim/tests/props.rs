//! Property tests on random asynchronous circuits:
//!
//! * ternary-definite ⇒ explicit-confluent with the same state
//!   (conservativeness, the soundness anchor of the whole ATPG flow);
//! * the 64-lane parallel engine agrees lane-by-lane with the scalar
//!   engine, including under fault injection;
//! * settled states are stable.

use proptest::prelude::*;
use satpg_netlist::{Bits, Circuit, CircuitBuilder, GateId, GateKind, Pattern, SignalId};
use satpg_sim::{
    parallel_settle, settle_explicit, ternary_settle, ExplicitConfig, Injection, ParallelInjection,
    PlaneState, Settle, Site, TernaryOutcome, Trit, TritVec,
};

/// Blueprint for a random circuit (kept simple so shrinking works).
#[derive(Debug, Clone)]
struct Blueprint {
    num_inputs: usize,
    gates: Vec<(u8, Vec<usize>)>, // (kind selector, fanin signal indices)
}

fn kind_of(sel: u8, arity: usize) -> GateKind {
    match sel % 7 {
        0 => GateKind::And,
        1 => GateKind::Or,
        2 => GateKind::Nand,
        3 => GateKind::Nor,
        4 if arity >= 2 => GateKind::C,
        5 => GateKind::Xor,
        _ => GateKind::Not,
    }
}

fn build(bp: &Blueprint) -> Option<Circuit> {
    build_padded(bp, 0)
}

/// Builds the blueprint's circuit with `extra` additional buffered
/// inputs appended after the real ones.  No gate reads them (fanin
/// names are resolved against the unpadded name list), so the padded
/// circuit computes the same function — but with `extra >= 64` every
/// pattern and state spills past the single-word fast path.
fn build_padded(bp: &Blueprint, extra: usize) -> Option<Circuit> {
    let mut b = CircuitBuilder::new("random");
    let mut names: Vec<String> = Vec::new();
    for i in 0..bp.num_inputs {
        b.input(format!("I{i}"), format!("i{i}"));
        names.push(format!("i{i}"));
    }
    for z in 0..extra {
        b.input(format!("Z{z}"), format!("z{z}"));
    }
    for (gi, _) in bp.gates.iter().enumerate() {
        names.push(format!("g{gi}"));
    }
    for (gi, (sel, fanin)) in bp.gates.iter().enumerate() {
        let mut kind = kind_of(*sel, fanin.len());
        if kind == GateKind::Not || fanin.len() == 1 {
            kind = GateKind::Not;
        }
        let ins: Vec<_> = fanin
            .iter()
            .map(|&f| b.signal(names[f % names.len()].clone()))
            .collect();
        let take = if kind == GateKind::Not { 1 } else { ins.len() };
        b.gate(format!("g{gi}"), kind, ins.into_iter().take(take).collect());
    }
    let last = format!("g{}", bp.gates.len() - 1);
    let sig = b.signal(last);
    b.output(sig);
    b.settle_initial();
    b.finish().ok()
}

fn arb_blueprint() -> impl Strategy<Value = Blueprint> {
    (1usize..=3, 1usize..=6).prop_flat_map(|(ni, ng)| {
        let gate = (
            any::<u8>(),
            proptest::collection::vec(0usize..(ni + ng), 1..=3),
        );
        proptest::collection::vec(gate, ng).prop_map(move |gates| Blueprint {
            num_inputs: ni,
            gates,
        })
    })
}

fn exact_cfg(c: &Circuit) -> ExplicitConfig {
    ExplicitConfig {
        k: 6 * c.num_gates() + 6,
        max_states: 1 << 14,
        ternary_fast_path: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ternary-definite means every *fair* schedule (each excited gate
    /// eventually fires — guaranteed by finite inertial delays) settles to
    /// that state.  When the exhaustive analysis also converges within k,
    /// the states must match; when it reports Unstable, only *unfair*
    /// interleavings (indefinitely postponing some gate) can still be
    /// switching, and a fair round-robin run must reach the ternary state.
    #[test]
    fn ternary_conservative(bp in arb_blueprint(), pattern in any::<u64>()) {
        let Some(c) = build(&bp) else { return Ok(()) };
        let pattern = pattern & ((1 << c.num_inputs()) - 1);
        if let TernaryOutcome::Definite(tb) =
            ternary_settle(&c, c.initial_state(), pattern, &Injection::none())
        {
            prop_assert!(c.is_stable(&tb), "ternary-definite state must be stable");
            match settle_explicit(&c, c.initial_state(), pattern, &Injection::none(), &exact_cfg(&c)) {
                Settle::Confluent(eb) => prop_assert_eq!(tb, eb),
                Settle::Truncated => {} // cap hit; no verdict
                Settle::NonConfluent(_) => {
                    return Err(TestCaseError::fail(
                        "ternary definite but explicit says non-confluent".to_string(),
                    ))
                }
                Settle::Unstable(_) => {
                    // Fair (round-robin) schedule must settle to tb.
                    let mut s = c.with_inputs(c.initial_state(), pattern);
                    'outer: for _ in 0..(8 * c.num_gates() * c.num_gates() + 8) {
                        for gi in 0..c.num_gates() {
                            let g = GateId(gi as u32);
                            if c.is_excited(g, &s) {
                                s = c.step_gate(g, &s);
                                continue 'outer;
                            }
                        }
                        break;
                    }
                    prop_assert_eq!(s, tb, "fair schedule disagrees with ternary");
                }
            }
        }
    }

    /// Explicit confluence: the unique settled state must also be what any
    /// greedy interleaving reaches.
    #[test]
    fn confluent_state_reached_by_greedy_run(bp in arb_blueprint(), pattern in any::<u64>()) {
        let Some(c) = build(&bp) else { return Ok(()) };
        let pattern = pattern & ((1 << c.num_inputs()) - 1);
        let cfg = exact_cfg(&c);
        if let Settle::Confluent(target) =
            settle_explicit(&c, c.initial_state(), pattern, &Injection::none(), &cfg)
        {
            let mut s = c.with_inputs(c.initial_state(), pattern);
            for _ in 0..cfg.k {
                match c.excited_gates(&s).first() {
                    Some(&g) => s = c.step_gate(g, &s),
                    None => break,
                }
            }
            prop_assert_eq!(s, target);
        }
    }

    /// Parallel lanes agree with scalar ternary runs, with and without
    /// injected faults.
    #[test]
    fn parallel_agrees_with_scalar(bp in arb_blueprint(), pattern in any::<u64>(), pin in any::<u8>(), val in any::<bool>()) {
        let Some(c) = build(&bp) else { return Ok(()) };
        let pattern = pattern & ((1 << c.num_inputs()) - 1);
        // Lane 0: good machine.  Lane 1: some single fault.
        let gate = GateId((pin as u32) % c.num_gates() as u32);
        let npins = c.gate(gate).inputs.len();
        let site = if (pin as usize).is_multiple_of(2) && npins > 0 {
            Site::Pin(pin as usize % npins)
        } else {
            Site::Output
        };
        let faulty = Injection::single(gate, site, val);
        let lanes = vec![Injection::none(), faulty.clone()];
        let pinj = ParallelInjection::new(&lanes);
        let par = parallel_settle(&c, &PlaneState::broadcast(c.initial_state()), pattern, &pinj);
        for (lane, inj) in [(0usize, Injection::none()), (1, faulty)] {
            let scalar = ternary_settle(&c, c.initial_state(), pattern, &inj);
            let tv = match scalar {
                TernaryOutcome::Definite(b) => TritVec::from_bits(&b),
                TernaryOutcome::Uncertain(tv) => tv,
            };
            for i in 0..c.num_state_bits() {
                prop_assert_eq!(par.trit(i, lane), tv.0[i], "lane {} signal {}", lane, i);
            }
        }
    }

    /// Every state reported stable by a settle is genuinely stable.
    #[test]
    fn settle_outputs_are_stable(bp in arb_blueprint(), pattern in any::<u64>()) {
        let Some(c) = build(&bp) else { return Ok(()) };
        let pattern = pattern & ((1 << c.num_inputs()) - 1);
        match settle_explicit(&c, c.initial_state(), pattern, &Injection::none(), &exact_cfg(&c)) {
            Settle::Confluent(s) => prop_assert!(c.is_stable(&s)),
            Settle::NonConfluent(ss) => {
                prop_assert!(ss.len() >= 2);
                for s in ss {
                    prop_assert!(c.is_stable(&s));
                }
            }
            _ => {}
        }
    }

    /// Input pattern bits survive settling (the environment holds them).
    #[test]
    fn pattern_is_held(bp in arb_blueprint(), pattern in any::<u64>()) {
        let Some(c) = build(&bp) else { return Ok(()) };
        let pattern = pattern & ((1 << c.num_inputs()) - 1);
        if let TernaryOutcome::Definite(b) =
            ternary_settle(&c, c.initial_state(), pattern, &Injection::none())
        {
            prop_assert_eq!(c.input_pattern(&b), pattern);
        }
    }

    /// Multi-word identity: the same circuit padded past 64 signals
    /// (spilled patterns and states) settles exactly like the narrow
    /// single-word original, signal for signal — under the ternary,
    /// exhaustive and 64-lane parallel engines alike.
    #[test]
    fn padded_multiword_matches_u64_fast_path(bp in arb_blueprint(), pattern in any::<u64>(), high in any::<u64>()) {
        let Some(narrow) = build(&bp) else { return Ok(()) };
        let Some(wide) = build_padded(&bp, 64) else { return Ok(()) };
        prop_assert!(wide.num_state_bits() > 64, "padding must force the spill repr");
        let ni = narrow.num_inputs();
        let pattern = pattern & ((1 << ni) - 1);

        // Shared-signal correspondence, narrow index -> padded index.
        let map: Vec<(usize, usize)> = (0..narrow.num_state_bits())
            .map(|i| {
                let name = narrow.signal_name(SignalId(i as u32));
                (i, wide.signal_by_name(name).unwrap().index())
            })
            .collect();

        // Ternary fixpoint: arbitrary junk in the high word must not
        // leak into the embedded circuit.
        let wp = Pattern::from_fn(ni + 64, |i| {
            if i < ni {
                (pattern >> i) & 1 == 1
            } else {
                (high >> (i - ni)) & 1 == 1
            }
        });
        let as_trits = |o: TernaryOutcome| match o {
            TernaryOutcome::Definite(b) => TritVec::from_bits(&b),
            TernaryOutcome::Uncertain(tv) => tv,
        };
        let tn = as_trits(ternary_settle(&narrow, narrow.initial_state(), pattern, &Injection::none()));
        let tw = as_trits(ternary_settle(&wide, wide.initial_state(), &wp, &Injection::none()));
        for &(i, j) in &map {
            prop_assert_eq!(tn.0[i], tw.0[j], "ternary signal {}", i);
        }

        // The 64-lane plane engine on the padded circuit agrees with its
        // own scalar run (multi-word plane state).
        let pinj = ParallelInjection::new(&[Injection::none()]);
        let par = parallel_settle(&wide, &PlaneState::broadcast(wide.initial_state()), &wp, &pinj);
        for i in 0..wide.num_state_bits() {
            prop_assert_eq!(par.trit(i, 0), tw.0[i], "parallel signal {}", i);
        }

        // Exhaustive interleavings: quiescent padding (the extra pins
        // hold their reset value, so their buffers never fire) keeps the
        // interleaving space identical.  Same k for both runs so the
        // classification is compared like for like.
        let cfg = exact_cfg(&narrow);
        let wq = Pattern::from_fn(ni + 64, |i| i < ni && (pattern >> i) & 1 == 1);
        let en = settle_explicit(&narrow, narrow.initial_state(), pattern, &Injection::none(), &cfg);
        let ew = settle_explicit(&wide, wide.initial_state(), &wq, &Injection::none(), &cfg);
        let shadow_n = |states: &[Bits]| {
            let mut v: Vec<Vec<bool>> = states
                .iter()
                .map(|s| map.iter().map(|&(i, _)| s.get(i)).collect())
                .collect();
            v.sort();
            v
        };
        let shadow_w = |states: &[Bits]| {
            let mut v: Vec<Vec<bool>> = states
                .iter()
                .map(|s| map.iter().map(|&(_, j)| s.get(j)).collect())
                .collect();
            v.sort();
            v
        };
        match (en, ew) {
            (Settle::Confluent(a), Settle::Confluent(b)) => {
                for &(i, j) in &map {
                    prop_assert_eq!(a.get(i), b.get(j), "confluent signal {}", i);
                }
            }
            (Settle::NonConfluent(a), Settle::NonConfluent(b))
            | (Settle::Unstable(a), Settle::Unstable(b)) => {
                prop_assert_eq!(shadow_n(&a), shadow_w(&b));
            }
            (Settle::Truncated, Settle::Truncated) => {}
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "classification diverged: narrow {a:?} vs padded {b:?}"
                )));
            }
        }
    }
}

/// Deterministic regression: a full-width 64-lane run with all-distinct
/// injections stays self-consistent.
#[test]
fn sixty_four_distinct_lanes() {
    let c = satpg_netlist::library::muller_pipeline2();
    let mut lanes = vec![Injection::none()];
    'outer: for gi in 0..c.num_gates() {
        let g = GateId(gi as u32);
        for p in 0..c.gate(g).inputs.len() {
            for v in [false, true] {
                if lanes.len() == 64 {
                    break 'outer;
                }
                lanes.push(Injection::single(g, Site::Pin(p), v));
            }
        }
    }
    let pinj = ParallelInjection::new(&lanes);
    let st = parallel_settle(&c, &PlaneState::broadcast(c.initial_state()), 0b01, &pinj);
    for (lane, inj) in lanes.iter().enumerate() {
        let scalar = ternary_settle(&c, c.initial_state(), 0b01, inj);
        let tv = match scalar {
            TernaryOutcome::Definite(b) => TritVec::from_bits(&b),
            TernaryOutcome::Uncertain(tv) => tv,
        };
        for i in 0..c.num_state_bits() {
            assert_eq!(st.trit(i, lane), tv.0[i], "lane {lane} signal {i}");
        }
    }
}

/// Regression: ternary simulation of a Bits state that is already stable
/// under the same pattern is the identity.
#[test]
fn identity_pattern_is_noop() {
    for c in satpg_netlist::library::all() {
        let s0 = c.initial_state();
        let pat = c.input_pattern(s0);
        match ternary_settle(&c, s0, pat, &Injection::none()) {
            TernaryOutcome::Definite(b) => assert_eq!(&b, s0, "{}", c.name()),
            TernaryOutcome::Uncertain(_) => panic!("{}: stable state became uncertain", c.name()),
        }
    }
}

/// Regression: Bits helper sanity used by the harnesses.
#[test]
fn bits_roundtrip_via_planes() {
    let c = satpg_netlist::library::sr_latch();
    let ps = PlaneState::broadcast(c.initial_state());
    for lane in [0usize, 13, 63] {
        assert_eq!(ps.lane_bits(lane).as_ref(), Some(c.initial_state()));
        assert_eq!(ps.trit(0, lane), Trit::Zero);
    }
    let b = Bits::from_str01("0101").unwrap();
    assert_eq!(b.to_string(), "0101");
}
