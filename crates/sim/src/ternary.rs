//! Scalar ternary (three-valued) simulation: Eichelberger's algorithms
//! A and B.
//!
//! Values are `0`, `1` and `Φ` (unknown).  Algorithm A repeatedly raises
//! every gate to the least upper bound of its current value and its
//! evaluation, spreading `Φ` through every signal that *could* switch.
//! Algorithm B then re-evaluates every gate, resolving signals whose final
//! value does not depend on the order of transitions.  If the resulting
//! state is fully definite, the applied input vector is free of critical
//! races and oscillation, and all interleavings settle to that state
//! (Brzozowski & Seger, *Asynchronous Circuits*, 1995).

use crate::inject::Injection;
use satpg_netlist::{Bits, Circuit, GateId, GateKind, IntoPattern};

/// A three-valued signal level.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Trit {
    /// Definite 0.
    Zero,
    /// Definite 1.
    One,
    /// Unknown / could be either (`Φ` in the paper).
    X,
}

impl Trit {
    /// From a Boolean.
    pub fn from_bool(b: bool) -> Trit {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// To a Boolean if definite.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Trit {
        match self {
            Trit::Zero => Trit::One,
            Trit::One => Trit::Zero,
            Trit::X => Trit::X,
        }
    }

    /// Kleene conjunction.
    pub fn and(self, o: Trit) -> Trit {
        match (self, o) {
            (Trit::Zero, _) | (_, Trit::Zero) => Trit::Zero,
            (Trit::One, Trit::One) => Trit::One,
            _ => Trit::X,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, o: Trit) -> Trit {
        match (self, o) {
            (Trit::One, _) | (_, Trit::One) => Trit::One,
            (Trit::Zero, Trit::Zero) => Trit::Zero,
            _ => Trit::X,
        }
    }

    /// Kleene exclusive-or.
    pub fn xor(self, o: Trit) -> Trit {
        match (self.to_bool(), o.to_bool()) {
            (Some(a), Some(b)) => Trit::from_bool(a != b),
            _ => Trit::X,
        }
    }

    /// Least upper bound in the information order (`x ⊔ y = x` if equal,
    /// else `Φ`).
    pub fn lub(self, o: Trit) -> Trit {
        if self == o {
            self
        } else {
            Trit::X
        }
    }
}

/// A ternary circuit state: one [`Trit`] per state bit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TritVec(pub Vec<Trit>);

impl TritVec {
    /// Broadcast of a definite binary state.
    pub fn from_bits(b: &Bits) -> Self {
        TritVec(b.iter().map(Trit::from_bool).collect())
    }

    /// Converts back to a binary state if fully definite.
    pub fn to_bits(&self) -> Option<Bits> {
        self.0
            .iter()
            .map(|t| t.to_bool())
            .collect::<Option<Vec<bool>>>()
            .map(|v| Bits::from_fn(v.len(), |i| v[i]))
    }

    /// Number of unknown positions.
    pub fn num_unknown(&self) -> usize {
        self.0.iter().filter(|&&t| t == Trit::X).count()
    }
}

/// Result of a ternary settling run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TernaryOutcome {
    /// Every signal settled to a definite value: the vector is valid and
    /// this is the unique settled state.
    Definite(Bits),
    /// Some signal remained `Φ`: possible critical race or oscillation
    /// (conservative).
    Uncertain(TritVec),
}

impl TernaryOutcome {
    /// The settled state if definite.
    pub fn definite(&self) -> Option<&Bits> {
        match self {
            TernaryOutcome::Definite(b) => Some(b),
            TernaryOutcome::Uncertain(_) => None,
        }
    }
}

/// Evaluates gate `g`'s function in ternary `state` under `inj`.
pub fn eval_gate_ternary(ckt: &Circuit, g: GateId, state: &TritVec, inj: &Injection) -> Trit {
    if let Some(v) = inj.output_force(g) {
        return Trit::from_bool(v);
    }
    let gate = ckt.gate(g);
    let pin = |p: usize| -> Trit {
        if let Some(v) = inj.pin_force(g, p) {
            return Trit::from_bool(v);
        }
        state.0[gate.inputs[p].index()]
    };
    let n = gate.inputs.len();
    match &gate.kind {
        GateKind::Input | GateKind::Buf => pin(0),
        GateKind::Not => pin(0).not(),
        GateKind::And => (0..n).fold(Trit::One, |a, p| a.and(pin(p))),
        GateKind::Or => (0..n).fold(Trit::Zero, |a, p| a.or(pin(p))),
        GateKind::Nand => (0..n).fold(Trit::One, |a, p| a.and(pin(p))).not(),
        GateKind::Nor => (0..n).fold(Trit::Zero, |a, p| a.or(pin(p))).not(),
        GateKind::Xor => (0..n).fold(Trit::Zero, |a, p| a.xor(pin(p))),
        GateKind::Xnor => (0..n).fold(Trit::Zero, |a, p| a.xor(pin(p))).not(),
        GateKind::C => {
            let all = (0..n).fold(Trit::One, |a, p| a.and(pin(p)));
            let any = (0..n).fold(Trit::Zero, |a, p| a.or(pin(p)));
            let out = state.0[ckt.gate_output(g).index()];
            all.or(out.and(any))
        }
        GateKind::Sop(s) => s.cubes.iter().fold(Trit::Zero, |acc, c| {
            acc.or(c.0.iter().fold(Trit::One, |a, l| {
                let v = pin(l.pin);
                a.and(if l.positive { v } else { v.not() })
            }))
        }),
        GateKind::Const(v) => Trit::from_bool(*v),
    }
}

fn fixpoint(
    ckt: &Circuit,
    state: &mut TritVec,
    inj: &Injection,
    mut update: impl FnMut(Trit, Trit) -> Trit,
) {
    // Both algorithms are monotone in their respective orders, so the
    // number of sweeps is bounded by the number of state bits + 1.
    let bound = 2 * ckt.num_state_bits() + 2;
    for _ in 0..bound {
        let mut changed = false;
        for i in 0..ckt.num_gates() {
            let g = GateId(i as u32);
            let out_idx = ckt.gate_output(g).index();
            let cur = state.0[out_idx];
            let eval = eval_gate_ternary(ckt, g, state, inj);
            let next = update(cur, eval);
            if next != cur {
                state.0[out_idx] = next;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
    unreachable!("ternary fixpoint did not converge within bound");
}

/// Algorithm A: raise each gate to `lub(current, eval)` until fixpoint.
pub fn algorithm_a(ckt: &Circuit, state: &mut TritVec, inj: &Injection) {
    fixpoint(ckt, state, inj, |cur, eval| cur.lub(eval));
}

/// Algorithm B: set each gate to its evaluation until fixpoint.
pub fn algorithm_b(ckt: &Circuit, state: &mut TritVec, inj: &Injection) {
    fixpoint(ckt, state, inj, |_cur, eval| eval);
}

/// Applies input pattern `pattern` to the (binary) stable state `from`
/// and runs algorithms A and B.
pub fn ternary_settle(
    ckt: &Circuit,
    from: &Bits,
    pattern: impl IntoPattern,
    inj: &Injection,
) -> TernaryOutcome {
    ternary_settle_from(ckt, &TritVec::from_bits(from), pattern, inj)
}

/// Like [`ternary_settle`], but from a possibly-uncertain ternary state
/// (used when chaining test cycles on a faulty machine).
pub fn ternary_settle_from(
    ckt: &Circuit,
    from: &TritVec,
    pattern: impl IntoPattern,
    inj: &Injection,
) -> TernaryOutcome {
    let pattern = pattern.into_pattern(ckt.num_inputs());
    let mut s = from.clone();
    for i in 0..ckt.num_inputs() {
        s.0[i] = Trit::from_bool(pattern.get(i));
    }
    algorithm_a(ckt, &mut s, inj);
    algorithm_b(ckt, &mut s, inj);
    match s.to_bits() {
        Some(b) => TernaryOutcome::Definite(b),
        None => TernaryOutcome::Uncertain(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satpg_netlist::library;

    #[test]
    fn trit_kleene_tables() {
        use Trit::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(One.xor(X), X);
        assert_eq!(Zero.lub(One), X);
        assert_eq!(One.lub(One), One);
    }

    #[test]
    fn c_element_settles_definite() {
        let c = library::c_element();
        let out = ternary_settle(&c, c.initial_state(), 0b11, &Injection::none());
        let settled = out.definite().expect("C-element raise is race-free");
        let y = c.signal_by_name("y").unwrap();
        assert!(settled.get(y.index()));
        assert!(c.is_stable(settled));
    }

    #[test]
    fn figure1a_race_detected_as_uncertain() {
        let c = library::figure1a();
        // AB = 10 from the paper's initial state: non-confluent.
        let out = ternary_settle(&c, c.initial_state(), 0b01, &Injection::none());
        match out {
            TernaryOutcome::Uncertain(tv) => {
                let y = c.signal_by_name("y").unwrap();
                assert_eq!(tv.0[y.index()], Trit::X, "racing output is Φ");
            }
            TernaryOutcome::Definite(_) => panic!("race missed by ternary simulation"),
        }
    }

    #[test]
    fn figure1b_oscillation_detected_as_uncertain() {
        let c = library::figure1b();
        let out = ternary_settle(&c, c.initial_state(), 0b01, &Injection::none());
        assert!(out.definite().is_none(), "oscillation must yield Φ");
    }

    #[test]
    fn benign_vector_stays_definite() {
        let c = library::figure1b();
        // Raising B only (A stays 0) is race-free.
        let out = ternary_settle(&c, c.initial_state(), 0b10, &Injection::none());
        assert!(out.definite().is_some());
    }

    #[test]
    fn sr_latch_both_phases() {
        let c = library::sr_latch();
        let set = ternary_settle(&c, c.initial_state(), 0b01, &Injection::none());
        let s1 = set.definite().expect("set is race-free").clone();
        let hold = ternary_settle(&c, &s1, 0b00, &Injection::none());
        let s2 = hold.definite().unwrap().clone();
        let q = c.signal_by_name("q").unwrap();
        assert!(s2.get(q.index()), "latch holds");
    }

    #[test]
    fn stuck_output_forces_value() {
        let c = library::c_element();
        let y = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        let inj = Injection::single(y, crate::Site::Output, false);
        let out = ternary_settle(&c, c.initial_state(), 0b11, &inj);
        let settled = out.definite().unwrap();
        assert!(!settled.get(c.signal_by_name("y").unwrap().index()));
    }

    #[test]
    fn uncertain_state_can_be_chained() {
        let c = library::figure1a();
        let out = ternary_settle(&c, c.initial_state(), 0b01, &Injection::none());
        let tv = match out {
            TernaryOutcome::Uncertain(tv) => tv,
            _ => unreachable!(),
        };
        // Returning to AB=01 resets the race; y may remain unknown (it
        // latched nondeterministically) but a and b are definite again.
        let out2 = ternary_settle_from(&c, &tv, 0b10, &Injection::none());
        if let TernaryOutcome::Uncertain(tv2) = out2 {
            let a = c.signal_by_name("a").unwrap();
            assert_ne!(tv2.0[a.index()], Trit::X);
        }
    }
}
