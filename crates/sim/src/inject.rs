//! Fault injection: forcing pins or outputs to constants at simulation
//! time, without editing the netlist.

use satpg_netlist::{Bits, Circuit, GateId};

/// Where a force applies within a gate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Site {
    /// The gate's `i`-th input pin (an *input stuck-at* fault site).
    Pin(usize),
    /// The gate's output (an *output stuck-at* fault site).
    Output,
}

/// A single forced constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Force {
    /// The affected gate.
    pub gate: GateId,
    /// Pin or output.
    pub site: Site,
    /// The stuck value.
    pub value: bool,
}

/// A set of forces applied to one simulated machine.
///
/// The empty injection is the good machine.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Injection {
    /// The forces; usually zero (good machine) or one (single fault).
    pub forces: Vec<Force>,
}

impl Injection {
    /// The good machine: nothing forced.
    pub fn none() -> Self {
        Injection::default()
    }

    /// A single-fault injection.
    pub fn single(gate: GateId, site: Site, value: bool) -> Self {
        Injection {
            forces: vec![Force { gate, site, value }],
        }
    }

    /// The forced output value of `gate`, if any.
    #[inline]
    pub fn output_force(&self, gate: GateId) -> Option<bool> {
        self.forces
            .iter()
            .find(|f| f.gate == gate && f.site == Site::Output)
            .map(|f| f.value)
    }

    /// The forced value of pin `pin` of `gate`, if any.
    #[inline]
    pub fn pin_force(&self, gate: GateId, pin: usize) -> Option<bool> {
        self.forces
            .iter()
            .find(|f| f.gate == gate && f.site == Site::Pin(pin))
            .map(|f| f.value)
    }

    /// Whether this injection touches `gate` at all (fast path check).
    #[inline]
    pub fn touches(&self, gate: GateId) -> bool {
        self.forces.iter().any(|f| f.gate == gate)
    }
}

/// Evaluates gate `g` in binary `state` under an injection.
pub fn eval_gate_inj(ckt: &Circuit, g: GateId, state: &Bits, inj: &Injection) -> bool {
    if let Some(v) = inj.output_force(g) {
        return v;
    }
    let gate = ckt.gate(g);
    let out = state.get(ckt.gate_output(g).index());
    if inj.touches(g) {
        gate.kind.eval(out, gate.inputs.len(), |p| {
            inj.pin_force(g, p)
                .unwrap_or_else(|| state.get(gate.inputs[p].index()))
        })
    } else {
        gate.kind.eval(out, gate.inputs.len(), |p| {
            state.get(gate.inputs[p].index())
        })
    }
}

/// Whether gate `g` is excited in `state` under an injection.
#[inline]
pub fn is_excited_inj(ckt: &Circuit, g: GateId, state: &Bits, inj: &Injection) -> bool {
    eval_gate_inj(ckt, g, state, inj) != state.get(ckt.gate_output(g).index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use satpg_netlist::library;

    #[test]
    fn empty_injection_matches_plain_eval() {
        let c = library::figure1a();
        let inj = Injection::none();
        let s = c.with_inputs(c.initial_state(), 0b01);
        for i in 0..c.num_gates() {
            let g = GateId(i as u32);
            assert_eq!(eval_gate_inj(&c, g, &s, &inj), c.eval_gate(g, &s));
        }
    }

    #[test]
    fn output_force_overrides_function() {
        let c = library::c_element();
        let y = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        let inj = Injection::single(y, Site::Output, true);
        let s = c.initial_state();
        assert!(eval_gate_inj(&c, y, s, &inj));
        assert!(
            is_excited_inj(&c, y, s, &inj),
            "stuck-1 output excites at reset"
        );
    }

    #[test]
    fn pin_force_overrides_single_pin() {
        let c = library::c_element();
        let y = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        // Force pin 0 (signal a) to 1; with b still 0 the C-element holds 0.
        let inj = Injection::single(y, Site::Pin(0), true);
        let s = c.initial_state();
        assert!(!eval_gate_inj(&c, y, s, &inj));
        // Now also raise b: a(forced)·b = 1 → function rises.
        let mut s2 = s.clone();
        let b = c.signal_by_name("b").unwrap();
        s2.set(b.index(), true);
        assert!(eval_gate_inj(&c, y, &s2, &inj));
    }
}
