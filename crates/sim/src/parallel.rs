//! Bit-parallel ternary simulation: 64 machines per pass.
//!
//! Each signal holds two 64-bit planes, `lo` and `hi`; lane `l` encodes a
//! ternary value as `(lo, hi)` bits: `(1,0)` = 0, `(0,1)` = 1, `(1,1)` =
//! `Φ`.  Kleene operators become plain word operations, so algorithms A
//! and B run over the good machine and 63 faulty machines simultaneously —
//! the combination of *parallel* and *ternary* simulation the paper uses
//! for random TPG and fault simulation.

use crate::inject::{Injection, Site};
use crate::ternary::Trit;
use satpg_netlist::{Bits, Circuit, GateId, GateKind, IntoPattern, Pattern};

/// Number of machines simulated per pass.
pub const LANES: usize = 64;

/// Plane pair for one signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Planes {
    lo: u64,
    hi: u64,
}

impl Planes {
    const ZERO: Planes = Planes { lo: !0, hi: 0 };
    const ONE: Planes = Planes { lo: 0, hi: !0 };

    #[inline]
    fn from_bool(b: bool) -> Planes {
        if b {
            Planes::ONE
        } else {
            Planes::ZERO
        }
    }

    #[inline]
    fn not(self) -> Planes {
        Planes {
            lo: self.hi,
            hi: self.lo,
        }
    }

    #[inline]
    fn and(self, o: Planes) -> Planes {
        Planes {
            lo: self.lo | o.lo,
            hi: self.hi & o.hi,
        }
    }

    #[inline]
    fn or(self, o: Planes) -> Planes {
        Planes {
            lo: self.lo & o.lo,
            hi: self.hi | o.hi,
        }
    }

    #[inline]
    fn xor(self, o: Planes) -> Planes {
        let known = !(self.lo & self.hi) & !(o.lo & o.hi);
        let v = self.hi ^ o.hi;
        Planes {
            lo: (known & !v) | !known,
            hi: (known & v) | !known,
        }
    }

    /// Least upper bound in the information order, lane-wise.
    #[inline]
    fn lub(self, o: Planes) -> Planes {
        Planes {
            lo: self.lo | o.lo,
            hi: self.hi | o.hi,
        }
    }

    /// Forces lanes in `mask` to `value`.
    #[inline]
    fn force(self, mask: u64, value: bool) -> Planes {
        if value {
            Planes {
                lo: self.lo & !mask,
                hi: self.hi | mask,
            }
        } else {
            Planes {
                lo: self.lo | mask,
                hi: self.hi & !mask,
            }
        }
    }

    #[inline]
    fn trit(self, lane: usize) -> Trit {
        let m = 1u64 << lane;
        match ((self.lo & m) != 0, (self.hi & m) != 0) {
            (true, false) => Trit::Zero,
            (false, true) => Trit::One,
            _ => Trit::X,
        }
    }
}

/// A 64-lane ternary circuit state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlaneState {
    planes: Vec<Planes>,
}

impl PlaneState {
    /// Broadcasts one binary state to all lanes.
    pub fn broadcast(state: &Bits) -> Self {
        PlaneState {
            planes: state.iter().map(Planes::from_bool).collect(),
        }
    }

    /// Sets the ternary value of `signal` on `lane`.
    pub fn set_trit(&mut self, signal: usize, lane: usize, t: Trit) {
        let m = 1u64 << lane;
        let p = &mut self.planes[signal];
        let (lo, hi) = match t {
            Trit::Zero => (true, false),
            Trit::One => (false, true),
            Trit::X => (true, true),
        };
        p.lo = if lo { p.lo | m } else { p.lo & !m };
        p.hi = if hi { p.hi | m } else { p.hi & !m };
    }

    /// Reads the ternary value of `signal` on `lane`.
    pub fn trit(&self, signal: usize, lane: usize) -> Trit {
        self.planes[signal].trit(lane)
    }

    /// Reads `signal` on `lane` as a Boolean if definite.
    pub fn definite(&self, signal: usize, lane: usize) -> Option<bool> {
        self.trit(signal, lane).to_bool()
    }

    /// Whether every signal on `lane` is definite.
    pub fn lane_definite(&self, lane: usize) -> bool {
        let m = 1u64 << lane;
        self.planes.iter().all(|p| (p.lo & p.hi & m) == 0)
    }

    /// Extracts `lane` as a binary state if fully definite.
    pub fn lane_bits(&self, lane: usize) -> Option<Bits> {
        if !self.lane_definite(lane) {
            return None;
        }
        Some(Bits::from_fn(self.planes.len(), |i| {
            self.trit(i, lane) == Trit::One
        }))
    }

    /// Overwrites `lane` of `self` with `lane` of `from` on every signal.
    ///
    /// Used by the pattern-parallel random stage to restart a single
    /// lane's machine from a stored checkpoint (e.g. the post-reset
    /// state) without touching the other 63 lanes.
    pub fn copy_lane_from(&mut self, from: &PlaneState, lane: usize) {
        assert_eq!(self.planes.len(), from.planes.len(), "same circuit");
        let m = 1u64 << lane;
        for (p, q) in self.planes.iter_mut().zip(&from.planes) {
            p.lo = (p.lo & !m) | (q.lo & m);
            p.hi = (p.hi & !m) | (q.hi & m);
        }
    }
}

/// Per-lane fault forces, pre-compiled to masks.
///
/// Lane 0 is conventionally the good machine; [`ParallelInjection::new`]
/// takes one [`Injection`] per lane.
#[derive(Clone, Debug, Default)]
pub struct ParallelInjection {
    /// `(gate, pin, force-1 mask, force-0 mask)` for pins.
    pins: Vec<(GateId, usize, u64, u64)>,
    /// `(gate, force-1 mask, force-0 mask)` for outputs.
    outputs: Vec<(GateId, u64, u64)>,
}

impl ParallelInjection {
    /// Compiles per-lane injections (at most [`LANES`]) into masks.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] injections are given.
    pub fn new(lanes: &[Injection]) -> Self {
        assert!(lanes.len() <= LANES, "at most {LANES} lanes");
        let mut pins: std::collections::HashMap<(GateId, usize), (u64, u64)> =
            std::collections::HashMap::new();
        let mut outputs: std::collections::HashMap<GateId, (u64, u64)> =
            std::collections::HashMap::new();
        for (lane, inj) in lanes.iter().enumerate() {
            let m = 1u64 << lane;
            for f in &inj.forces {
                match f.site {
                    Site::Pin(p) => {
                        let e = pins.entry((f.gate, p)).or_default();
                        if f.value {
                            e.0 |= m;
                        } else {
                            e.1 |= m;
                        }
                    }
                    Site::Output => {
                        let e = outputs.entry(f.gate).or_default();
                        if f.value {
                            e.0 |= m;
                        } else {
                            e.1 |= m;
                        }
                    }
                }
            }
        }
        ParallelInjection {
            pins: pins
                .into_iter()
                .map(|((g, p), (m1, m0))| (g, p, m1, m0))
                .collect(),
            outputs: outputs
                .into_iter()
                .map(|(g, (m1, m0))| (g, m1, m0))
                .collect(),
        }
    }

    #[inline]
    fn pin_masks(&self, g: GateId, p: usize) -> (u64, u64) {
        for &(gg, pp, m1, m0) in &self.pins {
            if gg == g && pp == p {
                return (m1, m0);
            }
        }
        (0, 0)
    }

    #[inline]
    fn output_masks(&self, g: GateId) -> (u64, u64) {
        for &(gg, m1, m0) in &self.outputs {
            if gg == g {
                return (m1, m0);
            }
        }
        (0, 0)
    }
}

fn eval_gate_planes(ckt: &Circuit, g: GateId, st: &PlaneState, inj: &ParallelInjection) -> Planes {
    let gate = ckt.gate(g);
    let pin = |p: usize| -> Planes {
        let raw = st.planes[gate.inputs[p].index()];
        let (m1, m0) = inj.pin_masks(g, p);
        raw.force(m1, true).force(m0, false)
    };
    let n = gate.inputs.len();
    let f = match &gate.kind {
        GateKind::Input | GateKind::Buf => pin(0),
        GateKind::Not => pin(0).not(),
        GateKind::And => (0..n).fold(Planes::ONE, |a, p| a.and(pin(p))),
        GateKind::Or => (0..n).fold(Planes::ZERO, |a, p| a.or(pin(p))),
        GateKind::Nand => (0..n).fold(Planes::ONE, |a, p| a.and(pin(p))).not(),
        GateKind::Nor => (0..n).fold(Planes::ZERO, |a, p| a.or(pin(p))).not(),
        GateKind::Xor => (0..n).fold(Planes::ZERO, |a, p| a.xor(pin(p))),
        GateKind::Xnor => (0..n).fold(Planes::ZERO, |a, p| a.xor(pin(p))).not(),
        GateKind::C => {
            let all = (0..n).fold(Planes::ONE, |a, p| a.and(pin(p)));
            let any = (0..n).fold(Planes::ZERO, |a, p| a.or(pin(p)));
            let out = st.planes[ckt.gate_output(g).index()];
            all.or(out.and(any))
        }
        GateKind::Sop(s) => s.cubes.iter().fold(Planes::ZERO, |acc, c| {
            acc.or(c.0.iter().fold(Planes::ONE, |a, l| {
                let v = pin(l.pin);
                a.and(if l.positive { v } else { v.not() })
            }))
        }),
        GateKind::Const(v) => Planes::from_bool(*v),
    };
    let (m1, m0) = inj.output_masks(g);
    f.force(m1, true).force(m0, false)
}

fn fixpoint_planes(ckt: &Circuit, st: &mut PlaneState, inj: &ParallelInjection, lub: bool) {
    let bound = 2 * LANES * 2 + 2 * ckt.num_state_bits() + 2;
    for _ in 0..bound {
        let mut changed = false;
        for i in 0..ckt.num_gates() {
            let g = GateId(i as u32);
            let out = ckt.gate_output(g).index();
            let cur = st.planes[out];
            let eval = eval_gate_planes(ckt, g, st, inj);
            let next = if lub { cur.lub(eval) } else { eval };
            if next != cur {
                st.planes[out] = next;
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
    unreachable!("parallel ternary fixpoint did not converge");
}

/// Applies `pattern` to every lane's environment pins and runs algorithms
/// A and B across all 64 lanes simultaneously.
pub fn parallel_settle(
    ckt: &Circuit,
    from: &PlaneState,
    pattern: impl IntoPattern,
    inj: &ParallelInjection,
) -> PlaneState {
    let pattern = pattern.into_pattern(ckt.num_inputs());
    let mut st = from.clone();
    for i in 0..ckt.num_inputs() {
        st.planes[i] = Planes::from_bool(pattern.get(i));
    }
    fixpoint_planes(ckt, &mut st, inj, true);
    fixpoint_planes(ckt, &mut st, inj, false);
    st
}

/// Applies a *distinct* pattern to each lane — the pattern-per-bit mode
/// (PPSFP): one fault injection broadcast across all lanes, up to
/// [`LANES`] input vectors evaluated in a single fixpoint pass.
///
/// Lanes beyond `patterns.len()` repeat the last pattern (so their
/// results are redundant, never garbage).
///
/// # Panics
///
/// Panics if `patterns` is empty or longer than [`LANES`].
pub fn parallel_settle_patterns(
    ckt: &Circuit,
    from: &PlaneState,
    patterns: &[Pattern],
    inj: &ParallelInjection,
) -> PlaneState {
    assert!(!patterns.is_empty(), "at least one pattern");
    assert!(patterns.len() <= LANES, "at most {LANES} patterns");
    let mut st = from.clone();
    for i in 0..ckt.num_inputs() {
        let mut ones = 0u64;
        for l in 0..LANES {
            let p = patterns.get(l).unwrap_or_else(|| patterns.last().unwrap());
            if p.get(i) {
                ones |= 1u64 << l;
            }
        }
        st.planes[i] = Planes {
            lo: !ones,
            hi: ones,
        };
    }
    fixpoint_planes(ckt, &mut st, inj, true);
    fixpoint_planes(ckt, &mut st, inj, false);
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ternary::{ternary_settle, TernaryOutcome, TritVec};
    use satpg_netlist::library;

    /// Lane-0 of the parallel engine must agree with the scalar engine.
    fn check_lane0_agrees(ckt: &satpg_netlist::Circuit, pattern: u64) {
        let scalar = ternary_settle(ckt, ckt.initial_state(), pattern, &Injection::none());
        let pinj = ParallelInjection::new(&[Injection::none()]);
        let par = parallel_settle(
            ckt,
            &PlaneState::broadcast(ckt.initial_state()),
            pattern,
            &pinj,
        );
        let scalar_tv = match scalar {
            TernaryOutcome::Definite(b) => TritVec::from_bits(&b),
            TernaryOutcome::Uncertain(tv) => tv,
        };
        for i in 0..ckt.num_state_bits() {
            assert_eq!(
                par.trit(i, 0),
                scalar_tv.0[i],
                "signal {i} pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn parallel_matches_scalar_on_library() {
        for ckt in library::all() {
            for pattern in Pattern::all(ckt.num_inputs()) {
                check_lane0_agrees(&ckt, pattern.as_u64().unwrap());
            }
        }
    }

    #[test]
    fn pattern_per_lane_matches_broadcast() {
        // Every pattern of the C-element applied per-lane in one pass must
        // agree lane-by-lane with a broadcast pass of that same pattern.
        let c = library::c_element();
        let pinj = ParallelInjection::new(&[Injection::none()]);
        let patterns: Vec<Pattern> = Pattern::all(c.num_inputs()).collect();
        let from = PlaneState::broadcast(c.initial_state());
        let multi = parallel_settle_patterns(&c, &from, &patterns, &pinj);
        for (l, p) in patterns.iter().enumerate() {
            let single = parallel_settle(&c, &from, p, &pinj);
            for i in 0..c.num_state_bits() {
                assert_eq!(multi.trit(i, l), single.trit(i, 0), "signal {i} lane {l}");
            }
        }
        // Lanes past the pattern list repeat the last pattern.
        for i in 0..c.num_state_bits() {
            assert_eq!(multi.trit(i, LANES - 1), multi.trit(i, patterns.len() - 1));
        }
    }

    #[test]
    fn copy_lane_restores_checkpoint() {
        let c = library::c_element();
        let pinj = ParallelInjection::new(&[Injection::none()]);
        let reset = PlaneState::broadcast(c.initial_state());
        let mut st = parallel_settle(&c, &reset, 0b11, &pinj);
        assert_ne!(st, reset);
        let settled = st.clone();
        st.copy_lane_from(&reset, 5);
        for i in 0..c.num_state_bits() {
            assert_eq!(st.trit(i, 5), reset.trit(i, 5), "lane 5 restored");
            assert_eq!(st.trit(i, 0), settled.trit(i, 0), "lane 0 untouched");
            assert_eq!(st.trit(i, 6), settled.trit(i, 6), "lane 6 untouched");
        }
    }

    #[test]
    fn faulty_lane_diverges_from_good_lane() {
        let c = library::c_element();
        let y = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        let lanes = vec![
            Injection::none(),
            Injection::single(y, Site::Output, false), // y stuck-at-0
        ];
        let pinj = ParallelInjection::new(&lanes);
        let st = parallel_settle(&c, &PlaneState::broadcast(c.initial_state()), 0b11, &pinj);
        let ysig = c.signal_by_name("y").unwrap().index();
        assert_eq!(st.definite(ysig, 0), Some(true), "good machine raises y");
        assert_eq!(
            st.definite(ysig, 1),
            Some(false),
            "stuck-at-0 lane stays low"
        );
    }

    #[test]
    fn pin_fault_masks_only_its_lane() {
        let c = library::c_element();
        let y = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        let lanes = vec![Injection::none(), Injection::single(y, Site::Pin(1), true)];
        let pinj = ParallelInjection::new(&lanes);
        // Raise only A: good machine holds y=0, faulty (b pin stuck-1) sees
        // both inputs high and raises y.
        let st = parallel_settle(&c, &PlaneState::broadcast(c.initial_state()), 0b01, &pinj);
        let ysig = c.signal_by_name("y").unwrap().index();
        assert_eq!(st.definite(ysig, 0), Some(false));
        assert_eq!(st.definite(ysig, 1), Some(true));
    }

    #[test]
    fn race_shows_as_phi_on_every_lane() {
        let c = library::figure1a();
        let pinj = ParallelInjection::new(&vec![Injection::none(); 3]);
        let st = parallel_settle(&c, &PlaneState::broadcast(c.initial_state()), 0b01, &pinj);
        let ysig = c.signal_by_name("y").unwrap().index();
        for lane in 0..3 {
            assert_eq!(st.trit(ysig, lane), Trit::X);
            assert!(!st.lane_definite(lane));
        }
    }

    #[test]
    fn lane_bits_roundtrip() {
        let c = library::sr_latch();
        let pinj = ParallelInjection::new(&[Injection::none()]);
        let st = parallel_settle(&c, &PlaneState::broadcast(c.initial_state()), 0b01, &pinj);
        let bits = st.lane_bits(0).expect("set is race-free");
        assert!(c.is_stable(&bits));
    }

    #[test]
    fn set_trit_and_read_back() {
        let c = library::c_element();
        let mut st = PlaneState::broadcast(c.initial_state());
        st.set_trit(4, 7, Trit::X);
        assert_eq!(st.trit(4, 7), Trit::X);
        assert_eq!(st.trit(4, 6), Trit::Zero);
        st.set_trit(4, 7, Trit::One);
        assert_eq!(st.trit(4, 7), Trit::One);
    }
}
