//! The unified settling engine: one frontier walker under every
//! interleaving analysis.
//!
//! Historically the k-bounded settling semantics was implemented three
//! times (`settle_explicit`, `settle_set`, and ad-hoc closures at the
//! call sites), each with its own cap accounting and truncation
//! behavior.  [`Settler`] consolidates them behind one engine that owns:
//!
//! * **frontier expansion with hashed dedup** — the per-depth state set
//!   of every interleaving, stable states self-looping;
//! * **partial-order reduction** (POR) — a persistent-singleton rule:
//!   when an excited gate provably commutes with everything that could
//!   fire before it, only *its* interleaving is explored, collapsing the
//!   binomial diamond frontier of a wave of independent switchings to a
//!   single path (see `crates/sim/DESIGN.md` for the soundness
//!   argument);
//! * **adaptive caps** ([`CapPolicy`]) — the tracked-set bound derived
//!   from circuit size instead of a fixed constant, with a distinct
//!   [`Settle::Truncated`] verdict (and [`SetSettle::Truncated`]) in
//!   place of the old ambiguous `None`;
//! * **optional intra-settle parallelism** — wide frontiers split across
//!   scoped threads with a deterministic merge.
//!
//! The legacy [`crate::settle_explicit`] / [`crate::settle_set`] entry
//! points remain as thin adapters over this engine (POR off, fixed cap),
//! preserving their exact historical semantics.

use crate::inject::{is_excited_inj, Injection};
use crate::ternary::{eval_gate_ternary, ternary_settle, TernaryOutcome, Trit, TritVec};
use satpg_netlist::{Bits, Circuit, GateId, GateKind, IntoPattern};
use std::collections::BTreeSet;

/// How the cap on the tracked interleaving set is chosen.
///
/// The old `max_states`/`max_settle_states`/`max_set` knobs were raw
/// constants tuned to the paper's circuits; the muller ≥ 19 coverage
/// study (PR 4) showed a fixed 2^15 truncates the token-insertion
/// settles of larger generated families.  `Scaled` grows the cap with
/// circuit size so the budget follows the worst-case interleaving width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CapPolicy {
    /// A fixed cap, the legacy behavior.
    Fixed(usize),
    /// `min(ceil, floor << (gates / gates_per_doubling))`: the cap
    /// doubles every `gates_per_doubling` gates, floored and ceiled.
    Scaled {
        /// The cap for small circuits (`gates < gates_per_doubling`).
        floor: usize,
        /// Gates per doubling of the cap.
        gates_per_doubling: usize,
        /// Hard upper bound (memory guard).
        ceil: usize,
    },
    /// No cap at all.  The walk may consume unbounded memory; reserve
    /// for property tests and offline studies.
    Unbounded,
}

impl CapPolicy {
    /// The default scaled policy for settling analyses: 2^15 for
    /// paper-sized circuits (the historical constant), doubling every 8
    /// gates, capped at 2^22.
    pub const fn default_scaled() -> CapPolicy {
        CapPolicy::Scaled {
            floor: 1 << 15,
            gates_per_doubling: 8,
            ceil: 1 << 22,
        }
    }

    /// The concrete cap for a circuit with `num_gates` gates.
    pub fn resolve(&self, num_gates: usize) -> usize {
        match *self {
            CapPolicy::Fixed(n) => n,
            CapPolicy::Unbounded => usize::MAX,
            CapPolicy::Scaled {
                floor,
                gates_per_doubling,
                ceil,
            } => {
                let doublings = (num_gates / gates_per_doubling.max(1)) as u32;
                floor
                    .checked_shl(doublings)
                    .unwrap_or(usize::MAX)
                    .min(ceil)
                    .max(floor)
            }
        }
    }
}

/// Outcome of a k-bounded settling analysis of a single start state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Settle {
    /// Exactly one stable state is reachable at depth `k`: the vector is
    /// valid and this is where the circuit settles.
    Confluent(Bits),
    /// All interleavings have stabilized by depth `k`, but to different
    /// states (a critical race / non-confluence).
    NonConfluent(Vec<Bits>),
    /// Some interleaving is still switching at depth `k`: oscillation or
    /// a settling time longer than the test cycle.  The payload is the
    /// depth-`k` frontier; with POR on it is a sound subset of the naive
    /// frontier (the verdict itself is exact either way).
    Unstable(Vec<Bits>),
    /// The explored state set exceeded the cap: the analysis was cut by
    /// a *resource* limit, not a semantic verdict.  (Previously named
    /// `Overflow`.)
    Truncated,
}

impl Settle {
    /// The settled state for valid vectors.
    pub fn confluent(&self) -> Option<&Bits> {
        match self {
            Settle::Confluent(b) => Some(b),
            _ => None,
        }
    }

    /// Whether the vector may be used for testing.
    pub fn is_valid(&self) -> bool {
        matches!(self, Settle::Confluent(_))
    }
}

/// Outcome of a set-tracking settle ([`Settler::settle_set`]): either
/// the set of states the machine may occupy when sampled, or a distinct
/// truncation verdict (the old API folded truncation into `None`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SetSettle {
    /// The tracked state set (closed over oscillation phases when the
    /// machine does not settle within `k`).
    Set(BTreeSet<Bits>),
    /// The tracked set exceeded the cap before a verdict.
    Truncated,
}

impl SetSettle {
    /// The set, or `None` on truncation (the legacy `Option` shape).
    pub fn ok(self) -> Option<BTreeSet<Bits>> {
        match self {
            SetSettle::Set(s) => Some(s),
            SetSettle::Truncated => None,
        }
    }
}

/// Configuration of a [`Settler`].
#[derive(Clone, Copy, Debug)]
pub struct SettlerConfig {
    /// Maximum number of transitions `k` (the test-cycle bound of §4.1).
    pub k: usize,
    /// Cap policy for every tracked state set.
    pub cap: CapPolicy,
    /// Partial-order reduction on commuting gate switchings.
    pub por: bool,
    /// Skip the exhaustive exploration when scalar ternary simulation
    /// already proves confluence.
    pub ternary_fast_path: bool,
    /// Intra-settle parallelism: frontiers wider than an internal
    /// threshold are expanded across this many scoped threads.  `0` or
    /// `1` keeps the walk serial.  The result is identical for any
    /// thread count (the merge is a set union), and so are the
    /// [`SettleStats`] — except on a step that truncates, where the
    /// serial walk stops counting at the first over-cap insert while
    /// the chunked walk finishes counting every chunk.
    pub threads: usize,
}

impl SettlerConfig {
    /// Defaults for a circuit: `k = 4·gates + 4`, the scaled cap policy,
    /// POR on, fast path on, serial.
    pub fn for_circuit(ckt: &Circuit) -> Self {
        SettlerConfig {
            k: 4 * ckt.num_gates() + 4,
            cap: CapPolicy::default_scaled(),
            por: true,
            ternary_fast_path: true,
            threads: 1,
        }
    }
}

/// Counters of one [`Settler`]'s work, deterministic for a fixed
/// sequence of calls (POR decisions are pure functions of the state).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SettleStats {
    /// Settling analyses run (fast-path hits included).
    pub settles: u64,
    /// State expansions across all analyses (one per frontier member per
    /// depth).
    pub states_explored: u64,
    /// Expansions where a persistent singleton reduced the branching.
    pub por_states: u64,
    /// Successor branches the reduction skipped (states the naive walk
    /// would have enqueued from reduced expansions).
    pub por_pruned: u64,
    /// Analyses abandoned at the cap.
    pub truncated: u64,
    /// Set-walks re-run naively because the reduced walk did not settle
    /// within `k` (the oscillation-closure semantics needs the full
    /// frontier).
    pub fallbacks: u64,
}

impl SettleStats {
    /// Adds another stats block into this one.
    pub fn absorb(&mut self, o: &SettleStats) {
        self.settles += o.settles;
        self.states_explored += o.states_explored;
        self.por_states += o.por_states;
        self.por_pruned += o.por_pruned;
        self.truncated += o.truncated;
        self.fallbacks += o.fallbacks;
    }

    /// Adds these counters into the process-wide metrics registry
    /// (`settler.*`).  Called at integration boundaries — a CSSG build
    /// completing, an engine worker retiring — never per settle, so the
    /// settling hot path carries no registry traffic.
    pub fn flush_metrics(&self) {
        let m = satpg_trace::metrics();
        m.counter("settler.settles").add(self.settles);
        m.counter("settler.states_explored")
            .add(self.states_explored);
        m.counter("settler.por_states").add(self.por_states);
        m.counter("settler.por_pruned").add(self.por_pruned);
        m.counter("settler.truncated").add(self.truncated);
        m.counter("settler.fallbacks").add(self.fallbacks);
    }
}

/// Frontiers narrower than this are expanded serially even when
/// [`SettlerConfig::threads`] asks for parallelism (thread spawn costs
/// more than the expansion).
const PAR_MIN_FRONTIER: usize = 64;

/// Result of one frontier step.
enum Step {
    /// The next frontier and whether any expanded state was unstable.
    Next(BTreeSet<Bits>, bool),
    /// The frontier blew the cap.
    Truncated,
}

/// Result of the bounded (depth-`k`) phase.
enum Bounded {
    /// Every interleaving stabilized: the frontier is the settled set.
    Settled(BTreeSet<Bits>),
    /// Depth `k` was reached with switching still in flight.
    Unsettled(BTreeSet<Bits>),
    /// A tracked set blew the cap.
    Truncated,
}

/// The unified settling engine.  One instance per (circuit, injection,
/// config) triple; reuse it across calls to amortize the dependency
/// precomputation and to accumulate [`SettleStats`].
pub struct Settler<'c> {
    ckt: &'c Circuit,
    inj: Injection,
    k: usize,
    cap: usize,
    por: bool,
    fast_path: bool,
    threads: usize,
    /// Per gate: the signals its evaluation reads under the injection
    /// (forced pins removed; the gate's own output added for state-holding
    /// kinds).  The commutation support of the POR rule.
    deps: Vec<Vec<usize>>,
    /// Per signal: the gates whose evaluation reads it (inverse of
    /// `deps`).
    readers: Vec<Vec<GateId>>,
    stats: SettleStats,
}

impl<'c> Settler<'c> {
    /// Builds a settler for `ckt` under `inj`.
    pub fn new(ckt: &'c Circuit, inj: &Injection, cfg: &SettlerConfig) -> Self {
        let ng = ckt.num_gates();
        // The dependency tables only feed the ample-singleton check, so
        // naive-mode settlers (including every legacy adapter call)
        // skip building them.
        let (deps, readers) = if cfg.por {
            let mut deps: Vec<Vec<usize>> = Vec::with_capacity(ng);
            for i in 0..ng {
                let g = GateId(i as u32);
                deps.push(Self::deps_of(ckt, g, inj));
            }
            let mut readers: Vec<Vec<GateId>> = vec![Vec::new(); ckt.num_state_bits()];
            for (i, d) in deps.iter().enumerate() {
                for &s in d {
                    readers[s].push(GateId(i as u32));
                }
            }
            (deps, readers)
        } else {
            (Vec::new(), Vec::new())
        };
        Settler {
            ckt,
            inj: inj.clone(),
            k: cfg.k,
            cap: cfg.cap.resolve(ng),
            por: cfg.por,
            fast_path: cfg.ternary_fast_path,
            threads: cfg.threads.max(1),
            deps,
            readers,
            stats: SettleStats::default(),
        }
    }

    /// The signals gate `g`'s evaluation depends on, under the injection:
    /// unforced input pins, plus the gate's own output when the function
    /// reads it (C-elements hold state).  A forced output empties the
    /// set (the evaluation is constant).
    fn deps_of(ckt: &Circuit, g: GateId, inj: &Injection) -> Vec<usize> {
        if inj.output_force(g).is_some() {
            return Vec::new();
        }
        let gate = ckt.gate(g);
        let mut d: Vec<usize> = gate
            .inputs
            .iter()
            .enumerate()
            .filter(|(p, _)| inj.pin_force(g, *p).is_none())
            .map(|(_, s)| s.index())
            .collect();
        if matches!(gate.kind, GateKind::C) {
            d.push(ckt.gate_output(g).index());
        }
        d.sort_unstable();
        d.dedup();
        d
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &SettleStats {
        &self.stats
    }

    /// Takes the counters, resetting them.
    pub fn take_stats(&mut self) -> SettleStats {
        std::mem::take(&mut self.stats)
    }

    /// The resolved cap this settler runs under.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Runs the k-bounded settling analysis for input `pattern` applied
    /// to the stable state `from` (which must be stable under the
    /// injection; the input application counts as the first of the `k`
    /// steps, as in the paper's `TCR_k` definition).
    ///
    /// With POR on, the verdict kind and the `Confluent` /
    /// `NonConfluent` payloads are exactly those of the naive walk
    /// whenever the naive walk completes; only the `Unstable` payload
    /// may be a (sound) subset.
    pub fn settle(&mut self, from: &Bits, pattern: impl IntoPattern) -> Settle {
        let pattern = pattern.into_pattern(self.ckt.num_inputs());
        self.stats.settles += 1;
        if self.fast_path {
            if let TernaryOutcome::Definite(b) = ternary_settle(self.ckt, from, &pattern, &self.inj)
            {
                return Settle::Confluent(b);
            }
        }
        let start = self.ckt.with_inputs(from, &pattern);
        let por = self.por;
        // Only the exhaustive analyses get spans: fast-path hits are
        // cheap ternary sims that would drown a trace in noise.
        let _span = satpg_trace::span!("settle", k = self.k, por = self.por as u8);
        match self.bounded_walk(BTreeSet::from([start]), por) {
            Bounded::Truncated => {
                self.stats.truncated += 1;
                Settle::Truncated
            }
            Bounded::Settled(frontier) | Bounded::Unsettled(frontier) => {
                let (stable, unstable): (Vec<Bits>, Vec<Bits>) =
                    frontier.into_iter().partition(|s| {
                        (0..self.ckt.num_gates())
                            .all(|i| !is_excited_inj(self.ckt, GateId(i as u32), s, &self.inj))
                    });
                if !unstable.is_empty() {
                    let mut all = stable;
                    all.extend(unstable);
                    return Settle::Unstable(all);
                }
                match stable.len() {
                    1 => Settle::Confluent(stable.into_iter().next().expect("len checked")),
                    _ => Settle::NonConfluent(stable),
                }
            }
        }
    }

    /// The set of states the (possibly faulty) circuit may occupy when
    /// the tester samples, given it may occupy any state of `from` when
    /// `pattern` is applied: the k-bounded frontier of every
    /// interleaving, closed under further transitions while any member
    /// is still unstable.
    ///
    /// POR applies only while the walk can still settle within `k`
    /// (where the reduced settled set equals the naive one); a reduced
    /// walk that reaches depth `k` unsettled falls back to the naive
    /// walk, because the oscillation closure must see *every* transient
    /// the machine could be sampled in.
    pub fn settle_set(&mut self, from: &BTreeSet<Bits>, pattern: impl IntoPattern) -> SetSettle {
        let pattern = pattern.into_pattern(self.ckt.num_inputs());
        self.stats.settles += 1;
        // Fast path: a singleton, ternary-definite settle is exact (also
        // under injection: definite means every interleaving agrees).
        if self.fast_path && from.len() == 1 {
            let only = from.iter().next().expect("len checked");
            if let TernaryOutcome::Definite(b) = ternary_settle(self.ckt, only, &pattern, &self.inj)
            {
                return SetSettle::Set(BTreeSet::from([b]));
            }
        }
        let start: BTreeSet<Bits> = from
            .iter()
            .map(|s| self.ckt.with_inputs(s, &pattern))
            .collect();
        if self.por {
            match self.bounded_walk(start.clone(), true) {
                Bounded::Settled(set) => return SetSettle::Set(set),
                // The reduced frontier is a subset of the naive one at
                // every depth, so a reduced truncation implies a naive
                // truncation: no fallback can rescue it.
                Bounded::Truncated => {
                    self.stats.truncated += 1;
                    return SetSettle::Truncated;
                }
                Bounded::Unsettled(_) => self.stats.fallbacks += 1,
            }
        }
        match self.bounded_walk(start, false) {
            Bounded::Settled(set) => SetSettle::Set(set),
            Bounded::Truncated => {
                self.stats.truncated += 1;
                SetSettle::Truncated
            }
            Bounded::Unsettled(frontier) => self.closure(frontier),
        }
    }

    /// The depth-`k` frontier walk shared by both analyses.
    fn bounded_walk(&mut self, start: BTreeSet<Bits>, por: bool) -> Bounded {
        let mut frontier = start;
        // Input application was step 1; k-1 gate steps remain.
        for _ in 1..self.k.max(1) {
            match self.step(&frontier, por) {
                Step::Truncated => return Bounded::Truncated,
                Step::Next(next, any_unstable) => {
                    frontier = next;
                    if !any_unstable {
                        return Bounded::Settled(frontier);
                    }
                }
            }
        }
        Bounded::Unsettled(frontier)
    }

    /// Oscillation closure (naive only): union further frontiers until
    /// nothing new appears — once a step adds no states, no later step
    /// can (the step image of a subset of the union stays inside it).
    fn closure(&mut self, mut frontier: BTreeSet<Bits>) -> SetSettle {
        let mut union = frontier.clone();
        for _ in 0..4 * self.k + 4 {
            let (next, any_unstable) = match self.step(&frontier, false) {
                Step::Truncated => {
                    self.stats.truncated += 1;
                    return SetSettle::Truncated;
                }
                Step::Next(n, u) => (n, u),
            };
            let before = union.len();
            for s in next.iter() {
                if !self.capped_insert(&mut union, s.clone()) {
                    self.stats.truncated += 1;
                    return SetSettle::Truncated;
                }
            }
            frontier = next;
            if !any_unstable || union.len() == before {
                return SetSettle::Set(union);
            }
        }
        // Still growing: the closure is incomplete, so claiming any
        // verdict from it would be unsound.
        self.stats.truncated += 1;
        SetSettle::Truncated
    }

    /// The single checked-insert path every tracked set goes through:
    /// a set may hold exactly `cap` states; the insert that would make
    /// it `cap + 1` reports truncation.  Returns `false` on truncation.
    fn capped_insert(&self, set: &mut BTreeSet<Bits>, s: Bits) -> bool {
        set.insert(s);
        set.len() <= self.cap
    }

    /// One synchronous frontier step: every stable state self-loops,
    /// every unstable state is replaced by its one-step successors
    /// (POR-reduced to the ample gate's successor where the rule fires).
    fn step(&mut self, frontier: &BTreeSet<Bits>, por: bool) -> Step {
        if self.threads > 1 && frontier.len() >= PAR_MIN_FRONTIER {
            return self.step_parallel(frontier, por);
        }
        let mut next = BTreeSet::new();
        let mut any_unstable = false;
        for s in frontier {
            let (succs, unstable, stats) = self.expand(s, por);
            self.stats.states_explored += 1;
            self.stats.por_states += stats.0;
            self.stats.por_pruned += stats.1;
            any_unstable |= unstable;
            for t in succs {
                if !self.capped_insert(&mut next, t) {
                    return Step::Truncated;
                }
            }
        }
        Step::Next(next, any_unstable)
    }

    /// [`Settler::step`] with the frontier split across scoped threads.
    /// Each chunk expands privately (its partial successor set bounded
    /// by the same cap — a chunk's successors are a subset of the full
    /// step's, so a chunk overflow is a step overflow); the merge is a
    /// set union, so the result is independent of the chunking.
    fn step_parallel(&mut self, frontier: &BTreeSet<Bits>, por: bool) -> Step {
        /// One chunk's harvest: its successor set (`None` on chunk
        /// truncation), unstable flag and stat deltas.
        type ChunkResult = (Option<BTreeSet<Bits>>, bool, u64, u64, u64);
        let states: Vec<&Bits> = frontier.iter().collect();
        let chunk = states.len().div_ceil(self.threads);
        let results: Vec<ChunkResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .chunks(chunk)
                .map(|part| {
                    let me: &Settler = &*self;
                    scope.spawn(move || {
                        let mut set = BTreeSet::new();
                        let mut any_unstable = false;
                        let (mut explored, mut por_states, mut por_pruned) = (0u64, 0u64, 0u64);
                        for s in part {
                            let (succs, unstable, stats) = me.expand(s, por);
                            explored += 1;
                            por_states += stats.0;
                            por_pruned += stats.1;
                            any_unstable |= unstable;
                            for t in succs {
                                if !me.capped_insert(&mut set, t) {
                                    return (None, any_unstable, explored, por_states, por_pruned);
                                }
                            }
                        }
                        (Some(set), any_unstable, explored, por_states, por_pruned)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("settle worker panicked"))
                .collect()
        });
        let mut next = BTreeSet::new();
        let mut any_unstable = false;
        let mut truncated = false;
        for (set, unstable, explored, por_states, por_pruned) in results {
            self.stats.states_explored += explored;
            self.stats.por_states += por_states;
            self.stats.por_pruned += por_pruned;
            any_unstable |= unstable;
            match set {
                None => truncated = true,
                Some(part) => {
                    if !truncated {
                        for t in part {
                            if !self.capped_insert(&mut next, t) {
                                truncated = true;
                                break;
                            }
                        }
                    }
                }
            }
        }
        if truncated {
            Step::Truncated
        } else {
            Step::Next(next, any_unstable)
        }
    }

    /// Expands one state: its successor list, whether it was unstable,
    /// and `(por_states, por_pruned)` deltas.
    fn expand(&self, s: &Bits, por: bool) -> (Vec<Bits>, bool, (u64, u64)) {
        let excited: Vec<GateId> = (0..self.ckt.num_gates())
            .map(|i| GateId(i as u32))
            .filter(|&g| is_excited_inj(self.ckt, g, s, &self.inj))
            .collect();
        if excited.is_empty() {
            return (vec![s.clone()], false, (0, 0));
        }
        let fire = |g: GateId| -> Bits {
            let mut t = s.clone();
            t.toggle(self.ckt.gate_output(g).index());
            t
        };
        if por && excited.len() >= 2 {
            if let Some(g) = self.ample(s, &excited) {
                return (vec![fire(g)], true, (1, (excited.len() - 1) as u64));
            }
        }
        (excited.into_iter().map(fire).collect(), true, (0, 0))
    }

    /// Persistent-singleton selection: the first excited gate (in id
    /// order, for determinism) whose firing provably commutes with every
    /// transition that could precede it.
    ///
    /// Candidate `g` qualifies when a ternary reachability fixpoint from
    /// `s` **with `g` frozen** (an over-approximation of every run that
    /// does not fire `g`) shows that
    ///
    /// 1. no signal in `g`'s support can change — `g` stays excited with
    ///    the same target value until it fires, and everything fireable
    ///    before it leaves `g` alone; and
    /// 2. no gate reading `g`'s output can fire — firing `g` first does
    ///    not change what any of those runs do.
    ///
    /// Together these make `{g}` a persistent set in `s`: every maximal
    /// interleaving permutes to one firing `g` first, preserving run
    /// lengths and the reachable settled states exactly
    /// (`crates/sim/DESIGN.md`).
    fn ample(&self, s: &Bits, excited: &[GateId]) -> Option<GateId> {
        'candidate: for &g in excited {
            let mut tv = TritVec::from_bits(s);
            self.frozen_reach(&mut tv, g);
            // (1) The support of g stays definite (lub only moves values
            // to X, so definite means unchanged in every avoided run).
            for &d in &self.deps[g.index()] {
                if tv.0[d] == Trit::X {
                    continue 'candidate;
                }
            }
            // (2) Nothing that reads out(g) can fire before g does.
            for &h in &self.readers[self.ckt.gate_output(g).index()] {
                if h != g && tv.0[self.ckt.gate_output(h).index()] == Trit::X {
                    continue 'candidate;
                }
            }
            return Some(g);
        }
        None
    }

    /// Algorithm A (monotone lub fixpoint) with `frozen`'s output pinned
    /// at its current value: the X positions over-approximate every
    /// signal that can differ from `s` in any run that never fires
    /// `frozen`.
    fn frozen_reach(&self, state: &mut TritVec, frozen: GateId) {
        let bound = 2 * self.ckt.num_state_bits() + 2;
        for _ in 0..bound {
            let mut changed = false;
            for i in 0..self.ckt.num_gates() {
                let g = GateId(i as u32);
                if g == frozen {
                    continue;
                }
                let out_idx = self.ckt.gate_output(g).index();
                let cur = state.0[out_idx];
                let next = cur.lub(eval_gate_ternary(self.ckt, g, state, &self.inj));
                if next != cur {
                    state.0[out_idx] = next;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
        unreachable!("frozen ternary fixpoint did not converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::Site;
    use satpg_netlist::{library, Pattern};

    fn naive_cfg(ckt: &Circuit) -> SettlerConfig {
        SettlerConfig {
            por: false,
            ternary_fast_path: false,
            ..SettlerConfig::for_circuit(ckt)
        }
    }

    fn por_cfg(ckt: &Circuit) -> SettlerConfig {
        SettlerConfig {
            por: true,
            ternary_fast_path: false,
            ..SettlerConfig::for_circuit(ckt)
        }
    }

    #[test]
    fn cap_policy_resolution() {
        assert_eq!(CapPolicy::Fixed(7).resolve(1000), 7);
        assert_eq!(CapPolicy::Unbounded.resolve(3), usize::MAX);
        let s = CapPolicy::default_scaled();
        // Paper-sized circuits see the historical 2^15.
        assert_eq!(s.resolve(7), 1 << 15);
        // muller-19 has 38 gates: 4 doublings.
        assert_eq!(s.resolve(38), 1 << 19);
        // The ceiling holds for huge circuits.
        assert_eq!(s.resolve(10_000), 1 << 22);
        // Degenerate divisor clamps to one gate per doubling.
        assert_eq!(
            CapPolicy::Scaled {
                floor: 8,
                gates_per_doubling: 0,
                ceil: 1 << 20
            }
            .resolve(4),
            8 << 4
        );
    }

    /// The consolidated checked-insert path: a set may hold exactly
    /// `cap` states, and the insert making it `cap + 1` truncates —
    /// pinning the boundary the old duplicated checks disagreed about.
    #[test]
    fn exact_cap_boundary() {
        let c = library::figure1a();
        // figure1a's racy pattern peaks at a 4-state frontier: a cap of
        // exactly 4 completes, 3 truncates.
        let mk = |cap: usize| SettlerConfig {
            cap: CapPolicy::Fixed(cap),
            ..naive_cfg(&c)
        };
        let mut tight = Settler::new(&c, &Injection::none(), &mk(3));
        assert_eq!(
            tight.settle(c.initial_state(), 0b01),
            Settle::Truncated,
            "cap 3 must truncate the race"
        );
        assert_eq!(tight.stats().truncated, 1);
        let mut exact = Settler::new(&c, &Injection::none(), &mk(4));
        assert!(
            matches!(
                exact.settle(c.initial_state(), 0b01),
                Settle::NonConfluent(_)
            ),
            "a frontier of exactly cap states is not a truncation"
        );
        assert_eq!(exact.stats().truncated, 0);
        // The same boundary governs the set walk.
        let from = BTreeSet::from([c.initial_state().clone()]);
        let mut tight = Settler::new(&c, &Injection::none(), &mk(3));
        assert_eq!(tight.settle_set(&from, 0b01), SetSettle::Truncated);
        let mut exact = Settler::new(&c, &Injection::none(), &mk(4));
        assert!(matches!(exact.settle_set(&from, 0b01), SetSettle::Set(_)));
    }

    /// POR and the naive walk agree on every verdict over the whole
    /// bundled library: same kind, identical `Confluent` and
    /// `NonConfluent` payloads, and `Unstable` exactly where the naive
    /// walk is unstable.
    #[test]
    fn por_matches_naive_on_library() {
        for ckt in library::all() {
            let inj = Injection::none();
            let mut naive = Settler::new(&ckt, &inj, &naive_cfg(&ckt));
            let mut por = Settler::new(&ckt, &inj, &por_cfg(&ckt));
            for pattern in Pattern::all(ckt.num_inputs()) {
                let n = naive.settle(ckt.initial_state(), &pattern);
                let p = por.settle(ckt.initial_state(), &pattern);
                match (&n, &p) {
                    (Settle::Confluent(a), Settle::Confluent(b)) => assert_eq!(a, b),
                    (Settle::NonConfluent(a), Settle::NonConfluent(b)) => assert_eq!(a, b),
                    (Settle::Unstable(_), Settle::Unstable(_)) => {}
                    (Settle::Truncated, Settle::Truncated) => {}
                    other => panic!("{} pattern {pattern}: {other:?}", ckt.name()),
                }
            }
        }
    }

    /// Same agreement for the set walk, chaining each settled set into
    /// the next pattern so multi-state from-sets are exercised.
    #[test]
    fn por_set_walk_matches_naive_on_library() {
        for ckt in library::all() {
            let inj = Injection::none();
            let mut naive = Settler::new(&ckt, &inj, &naive_cfg(&ckt));
            let mut por = Settler::new(&ckt, &inj, &por_cfg(&ckt));
            let mut from = BTreeSet::from([ckt.initial_state().clone()]);
            for pattern in Pattern::all(ckt.num_inputs()) {
                let n = naive.settle_set(&from, &pattern).ok();
                let p = por.settle_set(&from, &pattern).ok();
                assert_eq!(n, p, "{} pattern {pattern}", ckt.name());
                if let Some(set) = n {
                    if !set.is_empty() {
                        from = set;
                    }
                }
            }
        }
    }

    /// POR under fault injection: the reduced set walk still matches.
    #[test]
    fn por_matches_naive_under_injection() {
        let c = library::c_element();
        let y = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        for (site, value) in [
            (Site::Output, false),
            (Site::Output, true),
            (Site::Pin(0), true),
            (Site::Pin(1), false),
        ] {
            let inj = Injection::single(y, site, value);
            let mut naive = Settler::new(&c, &inj, &naive_cfg(&c));
            let mut por = Settler::new(&c, &inj, &por_cfg(&c));
            let from = BTreeSet::from([c.initial_state().clone()]);
            for pattern in 0..4u64 {
                assert_eq!(
                    naive.settle_set(&from, pattern).ok(),
                    por.settle_set(&from, pattern).ok(),
                    "{site:?}={value} pattern {pattern:b}"
                );
            }
        }
    }

    /// On a deep Muller pipeline the reduction actually fires: the wave
    /// of commuting switchings collapses to near-linear exploration.
    #[test]
    fn por_prunes_muller_wave() {
        let c = satpg_netlist::families::muller_pipeline(8);
        let inj = Injection::none();
        let mut naive = Settler::new(&c, &inj, &naive_cfg(&c));
        let mut por = Settler::new(&c, &inj, &por_cfg(&c));
        // Drive a few cycles of the handshake; the interesting settles
        // are the multi-gate waves after R toggles with tokens in flight.
        let mut from = BTreeSet::from([c.initial_state().clone()]);
        for &pattern in &[0b01u64, 0b11, 0b10, 0b00, 0b01] {
            let n = naive.settle_set(&from, pattern).ok();
            let p = por.settle_set(&from, pattern).ok();
            assert_eq!(n, p, "pattern {pattern:b}");
            if let Some(set) = n {
                from = set;
            }
        }
        assert!(
            por.stats().por_pruned > 0,
            "the pipeline wave must trigger the reduction: {:?}",
            por.stats()
        );
        assert!(
            por.stats().states_explored < naive.stats().states_explored,
            "reduction must shrink the walk: por {:?} vs naive {:?}",
            por.stats(),
            naive.stats()
        );
    }

    /// Intra-settle parallelism is invisible in the result.
    #[test]
    fn parallel_step_is_deterministic() {
        for ckt in [
            satpg_netlist::families::muller_pipeline(6),
            library::figure1a(),
            library::c_element(),
        ] {
            let inj = Injection::none();
            let serial_cfg = naive_cfg(&ckt);
            let par_cfg = SettlerConfig {
                threads: 3,
                ..serial_cfg
            };
            let mut serial = Settler::new(&ckt, &inj, &serial_cfg);
            let mut par = Settler::new(&ckt, &inj, &par_cfg);
            for pattern in Pattern::all(ckt.num_inputs()) {
                assert_eq!(
                    serial.settle(ckt.initial_state(), &pattern),
                    par.settle(ckt.initial_state(), &pattern),
                    "{} pattern {pattern}",
                    ckt.name()
                );
            }
            // Counter identity holds because none of these walks
            // truncate; a truncating parallel step may legitimately
            // count more expansions than the serial early-exit (see
            // `SettlerConfig::threads`).
            assert_eq!(
                serial.stats(),
                par.stats(),
                "{}: chunking must not change the counters",
                ckt.name()
            );
        }
    }

    #[test]
    fn stats_accumulate_and_take() {
        let c = library::c_element();
        let mut s = Settler::new(&c, &Injection::none(), &naive_cfg(&c));
        let _ = s.settle(c.initial_state(), 0b11);
        let _ = s.settle(c.initial_state(), 0b01);
        assert_eq!(s.stats().settles, 2);
        assert!(s.stats().states_explored > 0);
        let taken = s.take_stats();
        assert_eq!(taken.settles, 2);
        assert_eq!(s.stats().settles, 0);
        let mut sum = SettleStats::default();
        sum.absorb(&taken);
        sum.absorb(&taken);
        assert_eq!(sum.settles, 4);
    }
}
