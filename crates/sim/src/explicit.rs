//! Exhaustive interleaving exploration: the k-bounded settling analysis.
//!
//! From a stable state with a new input pattern applied, the set of states
//! reachable after exactly `i` transitions (stable states self-looping) is
//! iterated to depth `k`.  The (state, pattern) pair is *valid* — an edge
//! of the CSSG — iff that set at depth `k` is a single stable state, i.e.
//! every interleaving of gate switchings settles to the same place within
//! the test cycle.
//!
//! This module is the legacy surface: [`settle_explicit`] and
//! [`settle_set`] are thin adapters over the unified
//! [`Settler`](crate::Settler) engine, pinned to its naive (no
//! partial-order reduction, fixed-cap) mode so their historical
//! semantics — including the exact truncation boundary — are preserved
//! bit for bit.  New code should drive [`Settler`](crate::Settler)
//! directly and pick a [`CapPolicy`](crate::CapPolicy).

use crate::inject::Injection;
use crate::settler::{CapPolicy, Settle, Settler, SettlerConfig};
use satpg_netlist::{Bits, Circuit, IntoPattern};
use std::collections::BTreeSet;

/// Configuration for [`settle_explicit`] (the legacy fixed-cap shape).
#[derive(Clone, Copy, Debug)]
pub struct ExplicitConfig {
    /// Maximum number of transitions `k` (the test-cycle bound of §4.1).
    pub k: usize,
    /// Cap on the simultaneously tracked state set.
    pub max_states: usize,
    /// Skip the exhaustive exploration when scalar ternary simulation
    /// already proves confluence.  A definite ternary outcome means every
    /// *fair* schedule (each excited gate eventually fires — guaranteed by
    /// finite inertial delays) settles to that state; the literal
    /// k-bounded frontier additionally contains physically impossible
    /// unfair interleavings that postpone a gate forever, so the fast
    /// path may accept a vector the raw `TCR_k` definition rejects.
    /// Disable to exercise the exact k-bounded definition.
    pub ternary_fast_path: bool,
}

impl ExplicitConfig {
    /// Defaults for a circuit: `k = 4·gates + 4`, 1<<16 tracked states,
    /// fast path on.
    pub fn for_circuit(ckt: &Circuit) -> Self {
        ExplicitConfig {
            k: 4 * ckt.num_gates() + 4,
            max_states: 1 << 16,
            ternary_fast_path: true,
        }
    }

    /// Same but with an explicit `k`.
    pub fn with_k(ckt: &Circuit, k: usize) -> Self {
        ExplicitConfig {
            k,
            ..Self::for_circuit(ckt)
        }
    }

    /// The equivalent [`SettlerConfig`]: fixed cap, POR off, serial —
    /// the exact legacy walk.
    pub fn settler(&self) -> SettlerConfig {
        SettlerConfig {
            k: self.k,
            cap: CapPolicy::Fixed(self.max_states),
            por: false,
            ternary_fast_path: self.ternary_fast_path,
            threads: 1,
        }
    }
}

/// Runs the k-bounded settling analysis for input `pattern` applied to the
/// stable state `from` (under an optional fault injection).
///
/// `from` must be stable *under the injection*; the input application
/// itself counts as the first of the `k` steps, as in the paper's
/// `TCR_k` definition.
pub fn settle_explicit(
    ckt: &Circuit,
    from: &Bits,
    pattern: impl IntoPattern,
    inj: &Injection,
    cfg: &ExplicitConfig,
) -> Settle {
    Settler::new(ckt, inj, &cfg.settler()).settle(from, pattern)
}

/// The set of states the (possibly faulty) circuit may occupy when the
/// tester samples, given it may occupy any state of `from` when `pattern`
/// is applied.
///
/// This is the k-bounded frontier of every interleaving, *closed* under
/// further transitions while any member is still unstable: an oscillating
/// machine is sampled at an unknown phase, so every state of its attractor
/// is possible.  For settling machines the closure is free (stable states
/// absorb) and the result equals the unique/raced settle set.
///
/// Returns `None` when the tracked set exceeds `cfg.max_states`
/// (conservative: the caller must not claim detection).  The underlying
/// [`Settler::settle_set`] reports the same condition as a distinct
/// [`crate::SetSettle::Truncated`] verdict.
pub fn settle_set(
    ckt: &Circuit,
    from: &BTreeSet<Bits>,
    pattern: impl IntoPattern,
    inj: &Injection,
    cfg: &ExplicitConfig,
) -> Option<BTreeSet<Bits>> {
    Settler::new(ckt, inj, &cfg.settler())
        .settle_set(from, pattern)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::Site;
    use crate::ternary::{ternary_settle, TernaryOutcome};
    use satpg_netlist::{library, Pattern};

    fn cfg_exact(ckt: &Circuit) -> ExplicitConfig {
        ExplicitConfig {
            ternary_fast_path: false,
            ..ExplicitConfig::for_circuit(ckt)
        }
    }

    #[test]
    fn c_element_confluent() {
        let c = library::c_element();
        let r = settle_explicit(
            &c,
            c.initial_state(),
            0b11,
            &Injection::none(),
            &cfg_exact(&c),
        );
        let s = r.confluent().expect("C-element raise is confluent");
        assert!(c.is_stable(s));
        assert!(s.get(c.signal_by_name("y").unwrap().index()));
    }

    #[test]
    fn figure1a_non_confluent() {
        let c = library::figure1a();
        let r = settle_explicit(
            &c,
            c.initial_state(),
            0b01,
            &Injection::none(),
            &cfg_exact(&c),
        );
        match r {
            Settle::NonConfluent(states) => {
                assert!(states.len() >= 2);
                let y = c.signal_by_name("y").unwrap().index();
                let ys: std::collections::HashSet<bool> = states.iter().map(|s| s.get(y)).collect();
                assert_eq!(ys.len(), 2, "y differs between outcomes");
            }
            other => panic!("expected non-confluence, got {other:?}"),
        }
    }

    #[test]
    fn figure1b_unstable() {
        let c = library::figure1b();
        let r = settle_explicit(
            &c,
            c.initial_state(),
            0b01,
            &Injection::none(),
            &cfg_exact(&c),
        );
        assert!(matches!(r, Settle::Unstable(_)), "oscillation detected");
    }

    #[test]
    fn fast_path_agrees_with_exact_on_definite_cases() {
        for ckt in library::all() {
            for pattern in Pattern::all(ckt.num_inputs()) {
                let fast = settle_explicit(
                    &ckt,
                    ckt.initial_state(),
                    &pattern,
                    &Injection::none(),
                    &ExplicitConfig::for_circuit(&ckt),
                );
                let exact = settle_explicit(
                    &ckt,
                    ckt.initial_state(),
                    &pattern,
                    &Injection::none(),
                    &cfg_exact(&ckt),
                );
                if let (Settle::Confluent(a), Settle::Confluent(b)) = (&fast, &exact) {
                    assert_eq!(a, b, "{} pattern {pattern}", ckt.name());
                }
                // The fast path may *only* add confluent answers where the
                // exact analysis ran out of k, never contradict it.
                if let Settle::NonConfluent(_) = exact {
                    assert!(
                        !fast.is_valid(),
                        "{} pattern {pattern}: ternary accepted a race",
                        ckt.name()
                    );
                }
            }
        }
    }

    #[test]
    fn small_k_reports_unstable() {
        let c = library::c_element();
        let cfg = ExplicitConfig {
            k: 2, // input application + one gate step: cannot finish
            max_states: 1024,
            ternary_fast_path: false,
        };
        let r = settle_explicit(&c, c.initial_state(), 0b11, &Injection::none(), &cfg);
        assert!(matches!(r, Settle::Unstable(_)));
    }

    #[test]
    fn injection_changes_settling() {
        let c = library::c_element();
        let y = c.driver(c.signal_by_name("y").unwrap()).unwrap();
        let inj = Injection::single(y, Site::Output, false);
        let r = settle_explicit(&c, c.initial_state(), 0b11, &inj, &cfg_exact(&c));
        let s = r
            .confluent()
            .expect("stuck-at keeps circuit confluent here");
        assert!(!s.get(c.signal_by_name("y").unwrap().index()));
    }

    #[test]
    fn truncation_is_reported() {
        let c = library::figure1a();
        let cfg = ExplicitConfig {
            k: 64,
            max_states: 1,
            ternary_fast_path: false,
        };
        let r = settle_explicit(&c, c.initial_state(), 0b01, &Injection::none(), &cfg);
        assert_eq!(r, Settle::Truncated);
    }

    #[test]
    fn ternary_definite_implies_explicit_confluent() {
        // The conservativeness direction the ATPG soundness rests on.
        for ckt in library::all() {
            for pattern in Pattern::all(ckt.num_inputs()) {
                if let TernaryOutcome::Definite(tb) =
                    ternary_settle(&ckt, ckt.initial_state(), &pattern, &Injection::none())
                {
                    let exact = settle_explicit(
                        &ckt,
                        ckt.initial_state(),
                        &pattern,
                        &Injection::none(),
                        &cfg_exact(&ckt),
                    );
                    match exact {
                        Settle::Confluent(eb) => assert_eq!(tb, eb, "{}", ckt.name()),
                        other => panic!(
                            "{} pattern {pattern}: ternary definite but explicit {other:?}",
                            ckt.name()
                        ),
                    }
                }
            }
        }
    }
}
