//! Simulation engines for asynchronous circuits under the unbounded
//! inertial gate-delay model.
//!
//! Three engines, mirroring §2/§5.4 of Roig et al. (DAC 1997):
//!
//! * [`ternary_settle`] — Eichelberger's three-valued simulation
//!   (algorithms A and B).  Conservative but polynomial: if the settled
//!   state is fully definite, the applied input vector is race-free and
//!   oscillation-free and *every* interleaving reaches that state.
//! * [`PlaneState`] — the same ternary analysis, bit-parallel over 64
//!   machines at once (the good circuit plus 63 faulty ones), the engine
//!   behind random TPG and fault simulation.
//! * [`Settler`] — the unified settling engine: exhaustive interleaving
//!   exploration (the k-bounded settling analysis that *defines* the
//!   CSSG) with partial-order reduction over commuting gate switchings,
//!   adaptive caps ([`CapPolicy`]) and optional intra-settle
//!   parallelism.  [`settle_explicit`] / [`settle_set`] are its legacy
//!   naive-mode adapters, also usable as a nondeterministic oracle to
//!   validate emitted tests against any gate delays.
//!
//! Faults never modify a netlist: every engine accepts an [`Injection`]
//! that forces gate input pins or gate outputs to constants, so the same
//! [`satpg_netlist::Circuit`] serves the good machine and all faulty ones.

mod explicit;
mod inject;
mod parallel;
mod settler;
mod ternary;

pub use explicit::{settle_explicit, settle_set, ExplicitConfig};
pub use inject::{eval_gate_inj, is_excited_inj, Force, Injection, Site};
pub use parallel::{
    parallel_settle, parallel_settle_patterns, ParallelInjection, PlaneState, LANES,
};
pub use settler::{CapPolicy, SetSettle, Settle, SettleStats, Settler, SettlerConfig};
pub use ternary::{ternary_settle, ternary_settle_from, TernaryOutcome, Trit, TritVec};
