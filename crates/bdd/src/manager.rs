//! The BDD manager: node storage, unique table and core operations.

use crate::hash::FxMap;
use std::fmt;

/// A handle to a BDD node owned by a [`Manager`].
///
/// Handles are plain indices; they are only meaningful together with the
/// manager that created them.  The constants [`Bdd::FALSE`] and
/// [`Bdd::TRUE`] are the terminals and are valid for every manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false terminal.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true terminal.
    pub const TRUE: Bdd = Bdd(1);

    /// Whether this is one of the two terminals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Whether this is the true terminal.
    #[inline]
    pub fn is_true(self) -> bool {
        self.0 == 1
    }

    /// Whether this is the false terminal.
    #[inline]
    pub fn is_false(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "Bdd(FALSE)"),
            Bdd::TRUE => write!(f, "Bdd(TRUE)"),
            Bdd(i) => write!(f, "Bdd({i})"),
        }
    }
}

#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

/// Variable index used by terminal nodes (below every real variable).
const TERM_VAR: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
    Not,
    Ite,
}

/// A hash-consed ROBDD store with an operation cache.
///
/// All operations take `&mut self` because they may create nodes.  Nodes
/// are never garbage-collected; for the circuit sizes targeted by this
/// workspace the table stays small, and [`Manager::clear_cache`] can be
/// used between unrelated computations to bound cache growth.
pub struct Manager {
    nodes: Vec<Node>,
    unique: FxMap<(u32, u32, u32), u32>,
    cache: FxMap<(Op, u32, u32, u32), u32>,
    num_vars: u32,
    node_limit: usize,
}

impl fmt::Debug for Manager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Manager({} vars, {} nodes)",
            self.num_vars,
            self.nodes.len()
        )
    }
}

impl Manager {
    /// Creates a manager with `num_vars` variables (indices `0..num_vars`).
    pub fn new(num_vars: u32) -> Self {
        let mut nodes = Vec::with_capacity(1024);
        nodes.push(Node {
            var: TERM_VAR,
            lo: Bdd::FALSE,
            hi: Bdd::FALSE,
        });
        nodes.push(Node {
            var: TERM_VAR,
            lo: Bdd::TRUE,
            hi: Bdd::TRUE,
        });
        Manager {
            nodes,
            unique: FxMap::default(),
            cache: FxMap::default(),
            num_vars,
            node_limit: 1 << 26,
        }
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Grows the variable count to at least `n`.
    pub fn ensure_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Total number of live nodes (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Sets the node-count limit at which operations panic (default 2²⁶).
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Drops the operation cache (keeps all nodes valid).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of entries in the operation cache.
    ///
    /// Together with [`Manager::num_nodes`] this is the per-manager
    /// telemetry the fault-parallel engine reports for each worker.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of entries in the unique (hash-cons) table.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Bounded-cache heuristic: drops the operation cache if it has grown
    /// past `max_entries`, returning whether it was cleared.  Long-lived
    /// managers (one per engine worker) call this between unrelated
    /// computations to bound memory without invalidating any nodes.
    pub fn clear_cache_if_above(&mut self, max_entries: usize) -> bool {
        if self.cache.len() > max_entries {
            self.cache.clear();
            true
        } else {
            false
        }
    }

    #[inline]
    fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }

    #[inline]
    fn var_of(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// The variable tested at the root of `f`, or `None` for terminals.
    pub fn root_var(&self, f: Bdd) -> Option<u32> {
        let v = self.var_of(f);
        (v != TERM_VAR).then_some(v)
    }

    /// The low (variable = 0) and high (variable = 1) children of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn children(&self, f: Bdd) -> (Bdd, Bdd) {
        assert!(!f.is_const(), "terminals have no children");
        let n = self.node(f);
        (n.lo, n.hi)
    }

    /// Finds or creates the node `(var, lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the node limit is exceeded or ordering is violated in
    /// debug builds.
    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.var_of(lo).min(self.var_of(hi)),
            "order violation"
        );
        let key = (var, lo.0, hi.0);
        if let Some(&i) = self.unique.get(&key) {
            return Bdd(i);
        }
        assert!(
            self.nodes.len() < self.node_limit,
            "BDD node limit ({}) exceeded",
            self.node_limit
        );
        let i = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert(key, i);
        Bdd(i)
    }

    /// The function of a single variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable.
    pub fn var(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "variable {v} not declared");
        self.mk(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated single-variable function.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "variable {v} not declared");
        self.mk(v, Bdd::TRUE, Bdd::FALSE)
    }

    /// A literal: `var(v)` if `positive` else `nvar(v)`.
    pub fn literal(&mut self, v: u32, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    #[inline]
    fn cofactors(&self, f: Bdd, v: u32) -> (Bdd, Bdd) {
        let n = self.node(f);
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g {
            return f;
        }
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() {
            return g;
        }
        if g.is_true() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::And, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let r0 = self.and(a0, b0);
        let r1 = self.and(a1, b1);
        let r = self.mk(v, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g {
            return f;
        }
        if f.is_true() || g.is_true() {
            return Bdd::TRUE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Or, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let r0 = self.or(a0, b0);
        let r1 = self.or(a1, b1);
        let r = self.mk(v, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g {
            return Bdd::FALSE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        if f.is_true() {
            return self.not(g);
        }
        if g.is_true() {
            return self.not(f);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Xor, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let r0 = self.xor(a0, b0);
        let r1 = self.xor(a1, b1);
        let r = self.mk(v, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if f.is_false() {
            return Bdd::TRUE;
        }
        if f.is_true() {
            return Bdd::FALSE;
        }
        let key = (Op::Not, f.0, 0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let n = self.node(f);
        let r0 = self.not(n.lo);
        let r1 = self.not(n.hi);
        let r = self.mk(n.var, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// If-then-else `f·g + f̄·h`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return self.not(f);
        }
        let key = (Op::Ite, f.0, g.0, h.0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let r0 = self.ite(f0, g0, h0);
        let r1 = self.ite(f1, g1, h1);
        let r = self.mk(v, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Existential quantification `∃ vars. f`.
    ///
    /// `vars` need not be sorted; duplicates are ignored.
    pub fn exists(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let mut vs: Vec<u32> = vars.to_vec();
        vs.sort_unstable();
        vs.dedup();
        let mut memo: FxMap<(u32, usize), u32> = FxMap::default();
        self.exists_rec(f, &vs, 0, &mut memo)
    }

    fn exists_rec(
        &mut self,
        f: Bdd,
        vars: &[u32],
        mut i: usize,
        memo: &mut FxMap<(u32, usize), u32>,
    ) -> Bdd {
        if f.is_const() {
            return f;
        }
        let v = self.var_of(f);
        while i < vars.len() && vars[i] < v {
            i += 1;
        }
        if i == vars.len() {
            return f;
        }
        if let Some(&r) = memo.get(&(f.0, i)) {
            return Bdd(r);
        }
        let n = self.node(f);
        let r = if n.var == vars[i] {
            let r0 = self.exists_rec(n.lo, vars, i + 1, memo);
            if r0.is_true() {
                Bdd::TRUE
            } else {
                let r1 = self.exists_rec(n.hi, vars, i + 1, memo);
                self.or(r0, r1)
            }
        } else {
            let r0 = self.exists_rec(n.lo, vars, i, memo);
            let r1 = self.exists_rec(n.hi, vars, i, memo);
            self.mk(n.var, r0, r1)
        };
        memo.insert((f.0, i), r.0);
        r
    }

    /// Universal quantification `∀ vars. f`.
    pub fn forall(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// The fused relational product `∃ vars. f ∧ g`, the workhorse of
    /// symbolic image computation.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: &[u32]) -> Bdd {
        let mut vs: Vec<u32> = vars.to_vec();
        vs.sort_unstable();
        vs.dedup();
        let mut memo: FxMap<(u32, u32, usize), u32> = FxMap::default();
        self.and_exists_rec(f, g, &vs, 0, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        f: Bdd,
        g: Bdd,
        vars: &[u32],
        mut i: usize,
        memo: &mut FxMap<(u32, u32, usize), u32>,
    ) -> Bdd {
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() && g.is_true() {
            return Bdd::TRUE;
        }
        let v = self.var_of(f).min(self.var_of(g));
        while i < vars.len() && vars[i] < v {
            i += 1;
        }
        if i == vars.len() {
            return self.and(f, g);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&(a.0, b.0, i)) {
            return Bdd(r);
        }
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let r = if v == vars[i] {
            let r0 = self.and_exists_rec(f0, g0, vars, i + 1, memo);
            if r0.is_true() {
                Bdd::TRUE
            } else {
                let r1 = self.and_exists_rec(f1, g1, vars, i + 1, memo);
                self.or(r0, r1)
            }
        } else {
            let r0 = self.and_exists_rec(f0, g0, vars, i, memo);
            let r1 = self.and_exists_rec(f1, g1, vars, i, memo);
            self.mk(v, r0, r1)
        };
        memo.insert((a.0, b.0, i), r.0);
        r
    }

    /// Rewrites every variable `v` in `f` to `map(v)`.
    ///
    /// The map must be *strictly monotone* on the support of `f` (it may
    /// not reorder variables); this is checked in debug builds.  Uniform
    /// frame shifts (e.g. `3i → 3i+1`) satisfy this.
    pub fn remap(&mut self, f: Bdd, map: &dyn Fn(u32) -> u32) -> Bdd {
        let mut memo: FxMap<u32, u32> = FxMap::default();
        self.remap_rec(f, map, &mut memo)
    }

    fn remap_rec(&mut self, f: Bdd, map: &dyn Fn(u32) -> u32, memo: &mut FxMap<u32, u32>) -> Bdd {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return Bdd(r);
        }
        let n = self.node(f);
        let nv = map(n.var);
        assert!(nv < self.num_vars, "remap target {nv} not declared");
        let r0 = self.remap_rec(n.lo, map, memo);
        let r1 = self.remap_rec(n.hi, map, memo);
        debug_assert!(
            {
                let cl = self.var_of(r0).min(self.var_of(r1));
                nv < cl
            },
            "remap is not monotone on the support"
        );
        let r = self.mk(nv, r0, r1);
        memo.insert(f.0, r.0);
        r
    }

    /// Cofactor of `f` with variable `v` fixed to `val`.
    pub fn restrict(&mut self, f: Bdd, v: u32, val: bool) -> Bdd {
        let mut memo: FxMap<u32, u32> = FxMap::default();
        self.restrict_rec(f, v, val, &mut memo)
    }

    fn restrict_rec(&mut self, f: Bdd, v: u32, val: bool, memo: &mut FxMap<u32, u32>) -> Bdd {
        if f.is_const() || self.var_of(f) > v {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return Bdd(r);
        }
        let n = self.node(f);
        let r = if n.var == v {
            if val {
                n.hi
            } else {
                n.lo
            }
        } else {
            let r0 = self.restrict_rec(n.lo, v, val, memo);
            let r1 = self.restrict_rec(n.hi, v, val, memo);
            self.mk(n.var, r0, r1)
        };
        memo.insert(f.0, r.0);
        r
    }

    /// Conjunction of literals: a cube predicate.
    pub fn cube(&mut self, literals: &[(u32, bool)]) -> Bdd {
        let mut sorted = literals.to_vec();
        sorted.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(v));
        let mut acc = Bdd::TRUE;
        for &(v, pos) in &sorted {
            let (lo, hi) = if pos {
                (Bdd::FALSE, acc)
            } else {
                (acc, Bdd::FALSE)
            };
            acc = self.mk(v, lo, hi);
        }
        acc
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: Bdd, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur.is_true()
    }

    /// Number of nodes reachable from `f` (including terminals).
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(x) = stack.pop() {
            if seen.insert(x.0) && !x.is_const() {
                let n = self.node(x);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        seen.len()
    }

    /// The set of variables appearing in `f`, ascending.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(x) = stack.pop() {
            if seen.insert(x.0) && !x.is_const() {
                let n = self.node(x);
                vars.insert(n.var);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        vars.into_iter().collect()
    }
}

// Each engine worker owns a private `Manager` and managers migrate into
// worker threads, so the type must stay `Send` (it holds no interior
// sharing).  Compile-time assertion: breaking this fails the build.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Manager>()
};

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> Manager {
        Manager::new(8)
    }

    #[test]
    fn cache_stats_and_bounded_clear() {
        let mut m = mgr();
        assert_eq!(m.cache_len(), 0);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let o = m.or(ab, a);
        assert!(m.cache_len() > 0, "operations populate the cache");
        assert!(m.unique_len() > 0);
        let before_nodes = m.num_nodes();

        assert!(!m.clear_cache_if_above(1 << 20), "below the bound: kept");
        assert!(m.cache_len() > 0);
        assert!(m.clear_cache_if_above(0), "above the bound: cleared");
        assert_eq!(m.cache_len(), 0);

        // Clearing never invalidates nodes; results stay canonical.
        assert_eq!(m.num_nodes(), before_nodes);
        assert_eq!(m.and(a, b), ab);
        assert_eq!(m.or(ab, a), o);
    }

    #[test]
    fn terminals() {
        let m = mgr();
        assert!(Bdd::TRUE.is_true() && Bdd::FALSE.is_false());
        assert!(m.eval(Bdd::TRUE, &|_| false));
        assert!(!m.eval(Bdd::FALSE, &|_| true));
    }

    #[test]
    fn var_and_not() {
        let mut m = mgr();
        let a = m.var(0);
        let na = m.not(a);
        assert_eq!(m.nvar(0), na);
        assert_eq!(m.not(na), a);
        assert!(m.eval(a, &|_| true));
        assert!(!m.eval(na, &|_| true));
    }

    #[test]
    fn and_or_identities() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.and(a, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(a, Bdd::FALSE), a);
        assert_eq!(m.or(a, Bdd::TRUE), Bdd::TRUE);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba, "hash-consing canonicalizes");
        let na = m.not(a);
        assert_eq!(m.and(a, na), Bdd::FALSE);
        assert_eq!(m.or(a, na), Bdd::TRUE);
    }

    #[test]
    fn xor_properties() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.xor(x, b), a);
        assert_eq!(m.xor(a, a), Bdd::FALSE);
        let nx = m.not(x);
        assert_eq!(m.iff(a, b), nx);
    }

    #[test]
    fn ite_equals_composition() {
        let mut m = mgr();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let r1 = m.ite(a, b, c);
        let ab = m.and(a, b);
        let na = m.not(a);
        let nac = m.and(na, c);
        let r2 = m.or(ab, nac);
        assert_eq!(r1, r2);
    }

    #[test]
    fn exists_removes_variable() {
        let mut m = mgr();
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        assert_eq!(m.exists(f, &[1]), a);
        assert_eq!(m.exists(f, &[0, 1]), Bdd::TRUE);
        assert_eq!(m.exists(Bdd::FALSE, &[0]), Bdd::FALSE);
        let g = m.xor(a, b);
        assert_eq!(m.exists(g, &[1]), Bdd::TRUE);
        assert_eq!(m.forall(g, &[1]), Bdd::FALSE);
    }

    #[test]
    fn and_exists_matches_unfused() {
        let mut m = mgr();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let nb = m.not(b);
        let f = m.or(a, nb);
        let g = m.and(b, c);
        let fused = m.and_exists(f, g, &[1]);
        let conj = m.and(f, g);
        let plain = m.exists(conj, &[1]);
        assert_eq!(fused, plain);
    }

    #[test]
    fn remap_shifts_frames() {
        let mut m = Manager::new(9);
        let (x0, x1) = (m.var(0), m.var(3));
        let f = m.and(x0, x1);
        let g = m.remap(f, &|v| v + 1);
        let y0 = m.var(1);
        let y1 = m.var(4);
        let expect = m.and(y0, y1);
        assert_eq!(g, expect);
        let back = m.remap(g, &|v| v - 1);
        assert_eq!(back, f);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = mgr();
        let (a, b) = (m.var(0), m.var(1));
        let f = m.ite(a, b, Bdd::FALSE);
        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), Bdd::FALSE);
        assert_eq!(m.restrict(f, 7, true), f, "absent variable is no-op");
    }

    #[test]
    fn cube_builds_conjunction() {
        let mut m = mgr();
        let c = m.cube(&[(2, true), (0, false)]);
        let na = m.nvar(0);
        let v2 = m.var(2);
        let expect = m.and(na, v2);
        assert_eq!(c, expect);
        assert_eq!(m.cube(&[]), Bdd::TRUE);
    }

    #[test]
    fn support_and_node_count() {
        let mut m = mgr();
        let (a, c) = (m.var(0), m.var(2));
        let f = m.xor(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert_eq!(m.node_count(f), 5); // two terminals + 3 decision nodes
    }

    #[test]
    fn implies_truth_table() {
        let mut m = mgr();
        let (a, b) = (m.var(0), m.var(1));
        let f = m.implies(a, b);
        for (av, bv, want) in [
            (false, false, true),
            (false, true, true),
            (true, false, false),
            (true, true, true),
        ] {
            assert_eq!(m.eval(f, &|v| if v == 0 { av } else { bv }), want);
        }
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_variable_panics() {
        let mut m = Manager::new(2);
        m.var(5);
    }
}
