//! The BDD manager: node storage, unique table and core operations.

use crate::hash::FxMap;
use std::fmt;

/// A handle to a BDD node owned by a [`Manager`].
///
/// Handles are plain indices; they are only meaningful together with the
/// manager that created them.  The constants [`Bdd::FALSE`] and
/// [`Bdd::TRUE`] are the terminals and are valid for every manager.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-false terminal.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true terminal.
    pub const TRUE: Bdd = Bdd(1);

    /// Whether this is one of the two terminals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Whether this is the true terminal.
    #[inline]
    pub fn is_true(self) -> bool {
        self.0 == 1
    }

    /// Whether this is the false terminal.
    #[inline]
    pub fn is_false(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "Bdd(FALSE)"),
            Bdd::TRUE => write!(f, "Bdd(TRUE)"),
            Bdd(i) => write!(f, "Bdd({i})"),
        }
    }
}

#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

/// Variable index used by terminal nodes (below every real variable).
const TERM_VAR: u32 = u32::MAX;

/// Poison variable index written into swept node slots so debug builds
/// catch use-after-GC of unrooted handles.
const FREE_VAR: u32 = u32::MAX - 1;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
    Not,
    Ite,
}

/// A move-only token witnessing that a BDD is protected from garbage
/// collection (see [`Manager::root`]).
///
/// A `Root` is deliberately not `Clone`/`Copy`: every `root` must be
/// paired with exactly one [`Manager::release`].  The underlying handle
/// stays plain data — read it with [`Root::bdd`] and pass it to
/// operations freely while the root is held.
#[must_use = "an unreleased Root pins its nodes for the manager's lifetime"]
#[derive(Debug)]
pub struct Root(Bdd);

impl Root {
    /// The rooted handle.
    #[inline]
    pub fn bdd(&self) -> Bdd {
        self.0
    }
}

/// Cumulative garbage-collection telemetry of a [`Manager`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GcStats {
    /// Completed [`Manager::gc`] sweeps.
    pub runs: usize,
    /// Total nodes reclaimed across all sweeps.
    pub reclaimed: usize,
    /// Nodes reclaimed by the most recent sweep.
    pub last_reclaimed: usize,
    /// Cache generation: bumped (and the op cache dropped) by every
    /// sweep, so no cached result can ever resurrect a swept node id.
    pub generation: u64,
}

/// A hash-consed ROBDD store with an operation cache and mark-and-sweep
/// node reclamation.
///
/// All operations take `&mut self` because they may create nodes.
///
/// # Memory policy
///
/// Nodes are immortal by default (no GC ever runs), matching the
/// original behaviour.  Callers opt in to reclamation in two ways:
///
/// * **Explicit**: [`Manager::gc`] sweeps every node not reachable from
///   a rooted handle; [`Manager::gc_if_above`] does so only when the
///   live unique-table size exceeds a threshold.
/// * **Automatic**: after [`Manager::set_gc_threshold`], the public
///   operations (`and`/`or`/`xor`/`not`/`ite`/`implies`/`iff`/
///   `exists`/`forall`/`and_exists`) trigger a sweep *at entry* whenever
///   the live node count is above the threshold.  The operands of the
///   triggering call are rooted for the duration of the sweep, so the
///   call itself is always safe.
///
/// The contract in both modes: a sweep invalidates every handle that is
/// not reachable from the root set (the slot may be reused by a later
/// `mk`).  Root the BDDs you hold across operations with
/// [`Manager::protect`]/[`Manager::root`]; structural readers
/// (`eval`, `node_count`, `support`, `remap`, `restrict`, `cube`,
/// `var`) never trigger a sweep.  The op cache is invalidated
/// generationally on every sweep — [`Manager::clear_cache_if_above`]
/// still applies between sweeps to bound cache growth independently.
pub struct Manager {
    nodes: Vec<Node>,
    unique: FxMap<(u32, u32, u32), u32>,
    cache: FxMap<(Op, u32, u32, u32), u32>,
    num_vars: u32,
    node_limit: usize,
    /// External reference counts: node id → number of outstanding roots.
    roots: FxMap<u32, u32>,
    /// Swept slots available for reuse, highest id first.
    free: Vec<u32>,
    /// Auto-GC trigger for the public operations; `None` = immortal.
    gc_threshold: Option<usize>,
    /// Hysteresis floor for the auto trigger: re-armed to twice the
    /// post-sweep live count so an over-threshold rooted working set
    /// does not cause a sweep per operation (see `maybe_auto_gc`).
    gc_rearm: usize,
    stats: GcStats,
    /// High-water mark of `unique.len()` over the manager's lifetime.
    peak_unique: usize,
    /// Total nodes ever created (the immortal-node baseline).
    created: usize,
}

impl fmt::Debug for Manager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Manager({} vars, {} nodes)",
            self.num_vars,
            self.nodes.len()
        )
    }
}

impl Manager {
    /// Creates a manager with `num_vars` variables (indices `0..num_vars`).
    pub fn new(num_vars: u32) -> Self {
        let mut nodes = Vec::with_capacity(1024);
        nodes.push(Node {
            var: TERM_VAR,
            lo: Bdd::FALSE,
            hi: Bdd::FALSE,
        });
        nodes.push(Node {
            var: TERM_VAR,
            lo: Bdd::TRUE,
            hi: Bdd::TRUE,
        });
        Manager {
            nodes,
            unique: FxMap::default(),
            cache: FxMap::default(),
            num_vars,
            node_limit: 1 << 26,
            roots: FxMap::default(),
            free: Vec::new(),
            gc_threshold: None,
            gc_rearm: 0,
            stats: GcStats::default(),
            peak_unique: 0,
            created: 0,
        }
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Grows the variable count to at least `n`.
    pub fn ensure_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Size of the node slab (live nodes, freed slots and the two
    /// terminals).  For the number of *live* decision nodes see
    /// [`Manager::unique_len`]; for live nodes including terminals see
    /// [`Manager::live_nodes`].
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes (decision nodes plus the two terminals).
    pub fn live_nodes(&self) -> usize {
        self.unique.len() + 2
    }

    /// Sets the node-count limit at which operations panic (default 2²⁶).
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Drops the operation cache (keeps all nodes valid).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of entries in the operation cache.
    ///
    /// Together with [`Manager::num_nodes`] this is the per-manager
    /// telemetry the fault-parallel engine reports for each worker.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of entries in the unique (hash-cons) table.
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Bounded-cache heuristic: drops the operation cache if it has grown
    /// past `max_entries`, returning whether it was cleared.  Long-lived
    /// managers (one per engine worker) call this between unrelated
    /// computations to bound memory without invalidating any nodes.
    pub fn clear_cache_if_above(&mut self, max_entries: usize) -> bool {
        if self.cache.len() > max_entries {
            self.cache.clear();
            true
        } else {
            false
        }
    }

    // --- Rooted handles and garbage collection. -------------------------

    /// Protects `f` (and everything reachable from it) from garbage
    /// collection.  Protection is reference-counted: each `protect` must
    /// be paired with one [`Manager::unprotect`].  Terminals are always
    /// live; protecting them is a no-op.
    pub fn protect(&mut self, f: Bdd) {
        if f.is_const() {
            return;
        }
        debug_assert_ne!(
            self.nodes[f.0 as usize].var, FREE_VAR,
            "protect of a swept BDD"
        );
        *self.roots.entry(f.0).or_insert(0) += 1;
    }

    /// Drops one protection of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not currently protected.
    pub fn unprotect(&mut self, f: Bdd) {
        if f.is_const() {
            return;
        }
        match self.roots.get_mut(&f.0) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.roots.remove(&f.0);
            }
            None => panic!("unprotect of a BDD that is not rooted"),
        }
    }

    /// [`Manager::protect`] returning a move-only [`Root`] token; release
    /// it with [`Manager::release`].  The token makes the pairing hard to
    /// get wrong in straight-line code.
    pub fn root(&mut self, f: Bdd) -> Root {
        self.protect(f);
        Root(f)
    }

    /// Releases a [`Root`], dropping its protection.
    pub fn release(&mut self, r: Root) {
        self.unprotect(r.0);
    }

    /// Number of distinct rooted nodes (not counting terminals).
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// Swaps a loop-carried root: protects `new`, releases `old`, and
    /// returns `new` — the idiom for `acc = f(acc, …)` accumulation
    /// loops under the rooting contract (`new` is protected first, so
    /// `reroot(x, x)` is safe).
    pub fn reroot(&mut self, old: Bdd, new: Bdd) -> Bdd {
        self.protect(new);
        self.unprotect(old);
        new
    }

    /// Sets (or clears) the auto-GC threshold: when `Some(n)`, the public
    /// operations sweep at entry whenever more than `n` decision nodes
    /// are live.  `None` (the default) restores immortal nodes.
    pub fn set_gc_threshold(&mut self, threshold: Option<usize>) {
        self.gc_threshold = threshold;
        self.gc_rearm = 0;
    }

    /// The current auto-GC threshold.
    pub fn gc_threshold(&self) -> Option<usize> {
        self.gc_threshold
    }

    /// Cumulative garbage-collection telemetry.
    pub fn gc_stats(&self) -> GcStats {
        self.stats
    }

    /// High-water mark of [`Manager::unique_len`] over the manager's
    /// lifetime — the figure the engine-scaling bench reports to compare
    /// memory policies.
    pub fn peak_unique_len(&self) -> usize {
        self.peak_unique
    }

    /// Total decision nodes ever created, counting re-creations after a
    /// sweep.  With GC disabled this equals [`Manager::unique_len`]; the
    /// gap between the two is what reclamation bought.
    pub fn created_nodes(&self) -> usize {
        self.created
    }

    /// Sweeps every decision node not reachable from the root set.
    /// Returns the number of nodes reclaimed.
    ///
    /// Reclaimed slots go on a free list and are reused by later node
    /// creations, so *unrooted* handles held across a sweep are
    /// invalidated (debug builds poison the slot and catch most uses).
    /// The op cache is dropped and the generation counter bumped, so no
    /// cached entry can refer to a swept node.
    pub fn gc(&mut self) -> usize {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<u32> = self.roots.keys().copied().collect();
        while let Some(i) = stack.pop() {
            if marked[i as usize] {
                continue;
            }
            marked[i as usize] = true;
            let n = self.nodes[i as usize];
            debug_assert_ne!(n.var, FREE_VAR, "rooted BDD points at a swept slot");
            if !marked[n.lo.0 as usize] {
                stack.push(n.lo.0);
            }
            if !marked[n.hi.0 as usize] {
                stack.push(n.hi.0);
            }
        }
        let mut reclaimed = 0usize;
        let nodes = &mut self.nodes;
        let free = &mut self.free;
        self.unique.retain(|_, &mut i| {
            if marked[i as usize] {
                true
            } else {
                nodes[i as usize] = Node {
                    var: FREE_VAR,
                    lo: Bdd::FALSE,
                    hi: Bdd::FALSE,
                };
                free.push(i);
                reclaimed += 1;
                false
            }
        });
        // Slot reuse order must not depend on hash-map iteration order;
        // highest id first keeps later allocations dense and repeatable.
        self.free.sort_unstable_by(|a, b| b.cmp(a));
        self.cache.clear();
        self.stats.runs += 1;
        self.stats.reclaimed += reclaimed;
        self.stats.last_reclaimed = reclaimed;
        self.stats.generation += 1;
        reclaimed
    }

    /// Runs [`Manager::gc`] only when more than `threshold` decision
    /// nodes are live; returns whether a sweep ran.  This is the
    /// node-table analogue of [`Manager::clear_cache_if_above`].
    pub fn gc_if_above(&mut self, threshold: usize) -> bool {
        if self.unique.len() > threshold {
            self.gc();
            true
        } else {
            false
        }
    }

    /// Auto-GC hook at the entry of every public operation: the
    /// operands are rooted across the sweep so the triggering call is
    /// self-safe, per the contract in the type-level docs.
    ///
    /// Hysteresis: when the *rooted* working set itself exceeds the
    /// threshold, sweeping at every operation would reclaim nothing and
    /// still drop the op cache each time.  After each auto sweep the
    /// trigger therefore re-arms at twice the post-sweep live count (or
    /// the threshold, whichever is larger), so consecutive sweeps only
    /// fire once a working set's worth of new garbage has accumulated.
    #[inline]
    fn maybe_auto_gc(&mut self, operands: &[Bdd]) {
        let Some(t) = self.gc_threshold else {
            return;
        };
        if self.unique.len() <= t.max(self.gc_rearm) {
            return;
        }
        for &f in operands {
            self.protect(f);
        }
        self.gc();
        self.gc_rearm = 2 * self.unique.len();
        for &f in operands {
            self.unprotect(f);
        }
    }

    #[inline]
    fn node(&self, f: Bdd) -> Node {
        let n = self.nodes[f.0 as usize];
        debug_assert_ne!(n.var, FREE_VAR, "use of a BDD swept by gc (root it)");
        n
    }

    #[inline]
    fn var_of(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// The variable tested at the root of `f`, or `None` for terminals.
    pub fn root_var(&self, f: Bdd) -> Option<u32> {
        let v = self.var_of(f);
        (v != TERM_VAR).then_some(v)
    }

    /// The low (variable = 0) and high (variable = 1) children of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn children(&self, f: Bdd) -> (Bdd, Bdd) {
        assert!(!f.is_const(), "terminals have no children");
        let n = self.node(f);
        (n.lo, n.hi)
    }

    /// Finds or creates the node `(var, lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the node limit is exceeded or ordering is violated in
    /// debug builds.
    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.var_of(lo).min(self.var_of(hi)),
            "order violation"
        );
        let key = (var, lo.0, hi.0);
        if let Some(&i) = self.unique.get(&key) {
            return Bdd(i);
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = Node { var, lo, hi };
                slot
            }
            None => {
                assert!(
                    self.nodes.len() < self.node_limit,
                    "BDD node limit ({}) exceeded",
                    self.node_limit
                );
                let i = self.nodes.len() as u32;
                self.nodes.push(Node { var, lo, hi });
                i
            }
        };
        self.unique.insert(key, i);
        self.created += 1;
        self.peak_unique = self.peak_unique.max(self.unique.len());
        Bdd(i)
    }

    /// The function of a single variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a declared variable.
    pub fn var(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "variable {v} not declared");
        self.mk(v, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated single-variable function.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        assert!(v < self.num_vars, "variable {v} not declared");
        self.mk(v, Bdd::TRUE, Bdd::FALSE)
    }

    /// A literal: `var(v)` if `positive` else `nvar(v)`.
    pub fn literal(&mut self, v: u32, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    #[inline]
    fn cofactors(&self, f: Bdd, v: u32) -> (Bdd, Bdd) {
        let n = self.node(f);
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.maybe_auto_gc(&[f, g]);
        self.and_rec(f, g)
    }

    fn and_rec(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g {
            return f;
        }
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() {
            return g;
        }
        if g.is_true() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::And, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let r0 = self.and_rec(a0, b0);
        let r1 = self.and_rec(a1, b1);
        let r = self.mk(v, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.maybe_auto_gc(&[f, g]);
        self.or_rec(f, g)
    }

    fn or_rec(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g {
            return f;
        }
        if f.is_true() || g.is_true() {
            return Bdd::TRUE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Or, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let r0 = self.or_rec(a0, b0);
        let r1 = self.or_rec(a1, b1);
        let r = self.mk(v, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.maybe_auto_gc(&[f, g]);
        self.xor_rec(f, g)
    }

    fn xor_rec(&mut self, f: Bdd, g: Bdd) -> Bdd {
        if f == g {
            return Bdd::FALSE;
        }
        if f.is_false() {
            return g;
        }
        if g.is_false() {
            return f;
        }
        if f.is_true() {
            return self.not_rec(g);
        }
        if g.is_true() {
            return self.not_rec(f);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let key = (Op::Xor, a.0, b.0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = self.cofactors(a, v);
        let (b0, b1) = self.cofactors(b, v);
        let r0 = self.xor_rec(a0, b0);
        let r1 = self.xor_rec(a1, b1);
        let r = self.mk(v, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.maybe_auto_gc(&[f]);
        self.not_rec(f)
    }

    fn not_rec(&mut self, f: Bdd) -> Bdd {
        if f.is_false() {
            return Bdd::TRUE;
        }
        if f.is_true() {
            return Bdd::FALSE;
        }
        let key = (Op::Not, f.0, 0, 0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let n = self.node(f);
        let r0 = self.not_rec(n.lo);
        let r1 = self.not_rec(n.hi);
        let r = self.mk(n.var, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.maybe_auto_gc(&[f, g]);
        let nf = self.not_rec(f);
        self.or_rec(nf, g)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.maybe_auto_gc(&[f, g]);
        let x = self.xor_rec(f, g);
        self.not_rec(x)
    }

    /// If-then-else `f·g + f̄·h`.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        self.maybe_auto_gc(&[f, g, h]);
        self.ite_rec(f, g, h)
    }

    fn ite_rec(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return self.not_rec(f);
        }
        let key = (Op::Ite, f.0, g.0, h.0);
        if let Some(&r) = self.cache.get(&key) {
            return Bdd(r);
        }
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let r0 = self.ite_rec(f0, g0, h0);
        let r1 = self.ite_rec(f1, g1, h1);
        let r = self.mk(v, r0, r1);
        self.cache.insert(key, r.0);
        r
    }

    /// Existential quantification `∃ vars. f`.
    ///
    /// `vars` need not be sorted; duplicates are ignored.
    pub fn exists(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        self.maybe_auto_gc(&[f]);
        self.exists_inner(f, vars)
    }

    /// The non-sweeping body shared by [`Manager::exists`] and
    /// [`Manager::forall`].
    fn exists_inner(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let mut vs: Vec<u32> = vars.to_vec();
        vs.sort_unstable();
        vs.dedup();
        let mut memo: FxMap<(u32, usize), u32> = FxMap::default();
        self.exists_rec(f, &vs, 0, &mut memo)
    }

    fn exists_rec(
        &mut self,
        f: Bdd,
        vars: &[u32],
        mut i: usize,
        memo: &mut FxMap<(u32, usize), u32>,
    ) -> Bdd {
        if f.is_const() {
            return f;
        }
        let v = self.var_of(f);
        while i < vars.len() && vars[i] < v {
            i += 1;
        }
        if i == vars.len() {
            return f;
        }
        if let Some(&r) = memo.get(&(f.0, i)) {
            return Bdd(r);
        }
        let n = self.node(f);
        let r = if n.var == vars[i] {
            let r0 = self.exists_rec(n.lo, vars, i + 1, memo);
            if r0.is_true() {
                Bdd::TRUE
            } else {
                let r1 = self.exists_rec(n.hi, vars, i + 1, memo);
                self.or_rec(r0, r1)
            }
        } else {
            let r0 = self.exists_rec(n.lo, vars, i, memo);
            let r1 = self.exists_rec(n.hi, vars, i, memo);
            self.mk(n.var, r0, r1)
        };
        memo.insert((f.0, i), r.0);
        r
    }

    /// Universal quantification `∀ vars. f`.
    pub fn forall(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        self.maybe_auto_gc(&[f]);
        let nf = self.not_rec(f);
        let e = self.exists_inner(nf, vars);
        self.not_rec(e)
    }

    /// The fused relational product `∃ vars. f ∧ g`, the workhorse of
    /// symbolic image computation.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: &[u32]) -> Bdd {
        self.maybe_auto_gc(&[f, g]);
        let mut vs: Vec<u32> = vars.to_vec();
        vs.sort_unstable();
        vs.dedup();
        let mut memo: FxMap<(u32, u32, usize), u32> = FxMap::default();
        self.and_exists_rec(f, g, &vs, 0, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        f: Bdd,
        g: Bdd,
        vars: &[u32],
        mut i: usize,
        memo: &mut FxMap<(u32, u32, usize), u32>,
    ) -> Bdd {
        if f.is_false() || g.is_false() {
            return Bdd::FALSE;
        }
        if f.is_true() && g.is_true() {
            return Bdd::TRUE;
        }
        let v = self.var_of(f).min(self.var_of(g));
        while i < vars.len() && vars[i] < v {
            i += 1;
        }
        if i == vars.len() {
            return self.and_rec(f, g);
        }
        let (a, b) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&(a.0, b.0, i)) {
            return Bdd(r);
        }
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let r = if v == vars[i] {
            let r0 = self.and_exists_rec(f0, g0, vars, i + 1, memo);
            if r0.is_true() {
                Bdd::TRUE
            } else {
                let r1 = self.and_exists_rec(f1, g1, vars, i + 1, memo);
                self.or_rec(r0, r1)
            }
        } else {
            let r0 = self.and_exists_rec(f0, g0, vars, i, memo);
            let r1 = self.and_exists_rec(f1, g1, vars, i, memo);
            self.mk(v, r0, r1)
        };
        memo.insert((a.0, b.0, i), r.0);
        r
    }

    /// Rewrites every variable `v` in `f` to `map(v)`.
    ///
    /// The map must be *strictly monotone* on the support of `f` (it may
    /// not reorder variables); this is checked in debug builds.  Uniform
    /// frame shifts (e.g. `3i → 3i+1`) satisfy this.
    pub fn remap(&mut self, f: Bdd, map: &dyn Fn(u32) -> u32) -> Bdd {
        let mut memo: FxMap<u32, u32> = FxMap::default();
        self.remap_rec(f, map, &mut memo)
    }

    fn remap_rec(&mut self, f: Bdd, map: &dyn Fn(u32) -> u32, memo: &mut FxMap<u32, u32>) -> Bdd {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return Bdd(r);
        }
        let n = self.node(f);
        let nv = map(n.var);
        assert!(nv < self.num_vars, "remap target {nv} not declared");
        let r0 = self.remap_rec(n.lo, map, memo);
        let r1 = self.remap_rec(n.hi, map, memo);
        debug_assert!(
            {
                let cl = self.var_of(r0).min(self.var_of(r1));
                nv < cl
            },
            "remap is not monotone on the support"
        );
        let r = self.mk(nv, r0, r1);
        memo.insert(f.0, r.0);
        r
    }

    /// Copies the function `f` owned by `src` into this manager,
    /// returning the equivalent handle here.
    ///
    /// The copy shares structure per-manager (hash-consing applies on
    /// both sides) and is memoised per source node, so the cost is one
    /// `mk` per distinct node of `f`.  `import` never triggers a sweep
    /// in either manager; the returned handle is unrooted, so protect it
    /// before running further operations under an auto-GC policy.
    ///
    /// This is what lets read-only consumers fan a relation out to
    /// private per-thread managers (a `&Manager` is `Sync`): build once,
    /// import everywhere.
    pub fn import(&mut self, src: &Manager, f: Bdd) -> Bdd {
        self.ensure_vars(src.num_vars());
        let mut memo: FxMap<u32, u32> = FxMap::default();
        self.import_rec(src, f, &mut memo)
    }

    fn import_rec(&mut self, src: &Manager, f: Bdd, memo: &mut FxMap<u32, u32>) -> Bdd {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return Bdd(r);
        }
        let n = src.node(f);
        let lo = self.import_rec(src, n.lo, memo);
        let hi = self.import_rec(src, n.hi, memo);
        let r = self.mk(n.var, lo, hi);
        memo.insert(f.0, r.0);
        r
    }

    /// Cofactor of `f` with variable `v` fixed to `val`.
    pub fn restrict(&mut self, f: Bdd, v: u32, val: bool) -> Bdd {
        let mut memo: FxMap<u32, u32> = FxMap::default();
        self.restrict_rec(f, v, val, &mut memo)
    }

    fn restrict_rec(&mut self, f: Bdd, v: u32, val: bool, memo: &mut FxMap<u32, u32>) -> Bdd {
        if f.is_const() || self.var_of(f) > v {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return Bdd(r);
        }
        let n = self.node(f);
        let r = if n.var == v {
            if val {
                n.hi
            } else {
                n.lo
            }
        } else {
            let r0 = self.restrict_rec(n.lo, v, val, memo);
            let r1 = self.restrict_rec(n.hi, v, val, memo);
            self.mk(n.var, r0, r1)
        };
        memo.insert(f.0, r.0);
        r
    }

    /// Conjunction of literals: a cube predicate.
    pub fn cube(&mut self, literals: &[(u32, bool)]) -> Bdd {
        let mut sorted = literals.to_vec();
        sorted.sort_unstable_by_key(|&(v, _)| std::cmp::Reverse(v));
        let mut acc = Bdd::TRUE;
        for &(v, pos) in &sorted {
            let (lo, hi) = if pos {
                (Bdd::FALSE, acc)
            } else {
                (acc, Bdd::FALSE)
            };
            acc = self.mk(v, lo, hi);
        }
        acc
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: Bdd, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur.is_true()
    }

    /// Number of nodes reachable from `f` (including terminals).
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(x) = stack.pop() {
            if seen.insert(x.0) && !x.is_const() {
                let n = self.node(x);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        seen.len()
    }

    /// The set of variables appearing in `f`, ascending.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(x) = stack.pop() {
            if seen.insert(x.0) && !x.is_const() {
                let n = self.node(x);
                vars.insert(n.var);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        vars.into_iter().collect()
    }
}

// Each engine worker owns a private `Manager` and managers migrate into
// worker threads, so the type must stay `Send` (it holds no interior
// sharing).  The sharded symbolic-CSSG diagnostics additionally share a
// built relation's manager read-only across shard threads (each one
// `import`s from it), so `&Manager` must stay `Sync` too.  Compile-time
// assertions: breaking either fails the build.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Manager>()
};

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> Manager {
        Manager::new(8)
    }

    #[test]
    fn cache_stats_and_bounded_clear() {
        let mut m = mgr();
        assert_eq!(m.cache_len(), 0);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let o = m.or(ab, a);
        assert!(m.cache_len() > 0, "operations populate the cache");
        assert!(m.unique_len() > 0);
        let before_nodes = m.num_nodes();

        assert!(!m.clear_cache_if_above(1 << 20), "below the bound: kept");
        assert!(m.cache_len() > 0);
        assert!(m.clear_cache_if_above(0), "above the bound: cleared");
        assert_eq!(m.cache_len(), 0);

        // Clearing never invalidates nodes; results stay canonical.
        assert_eq!(m.num_nodes(), before_nodes);
        assert_eq!(m.and(a, b), ab);
        assert_eq!(m.or(ab, a), o);
    }

    #[test]
    fn terminals() {
        let m = mgr();
        assert!(Bdd::TRUE.is_true() && Bdd::FALSE.is_false());
        assert!(m.eval(Bdd::TRUE, &|_| false));
        assert!(!m.eval(Bdd::FALSE, &|_| true));
    }

    #[test]
    fn var_and_not() {
        let mut m = mgr();
        let a = m.var(0);
        let na = m.not(a);
        assert_eq!(m.nvar(0), na);
        assert_eq!(m.not(na), a);
        assert!(m.eval(a, &|_| true));
        assert!(!m.eval(na, &|_| true));
    }

    #[test]
    fn and_or_identities() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.and(a, Bdd::FALSE), Bdd::FALSE);
        assert_eq!(m.or(a, Bdd::FALSE), a);
        assert_eq!(m.or(a, Bdd::TRUE), Bdd::TRUE);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba, "hash-consing canonicalizes");
        let na = m.not(a);
        assert_eq!(m.and(a, na), Bdd::FALSE);
        assert_eq!(m.or(a, na), Bdd::TRUE);
    }

    #[test]
    fn xor_properties() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.xor(x, b), a);
        assert_eq!(m.xor(a, a), Bdd::FALSE);
        let nx = m.not(x);
        assert_eq!(m.iff(a, b), nx);
    }

    #[test]
    fn ite_equals_composition() {
        let mut m = mgr();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let r1 = m.ite(a, b, c);
        let ab = m.and(a, b);
        let na = m.not(a);
        let nac = m.and(na, c);
        let r2 = m.or(ab, nac);
        assert_eq!(r1, r2);
    }

    #[test]
    fn exists_removes_variable() {
        let mut m = mgr();
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        assert_eq!(m.exists(f, &[1]), a);
        assert_eq!(m.exists(f, &[0, 1]), Bdd::TRUE);
        assert_eq!(m.exists(Bdd::FALSE, &[0]), Bdd::FALSE);
        let g = m.xor(a, b);
        assert_eq!(m.exists(g, &[1]), Bdd::TRUE);
        assert_eq!(m.forall(g, &[1]), Bdd::FALSE);
    }

    #[test]
    fn and_exists_matches_unfused() {
        let mut m = mgr();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let nb = m.not(b);
        let f = m.or(a, nb);
        let g = m.and(b, c);
        let fused = m.and_exists(f, g, &[1]);
        let conj = m.and(f, g);
        let plain = m.exists(conj, &[1]);
        assert_eq!(fused, plain);
    }

    #[test]
    fn remap_shifts_frames() {
        let mut m = Manager::new(9);
        let (x0, x1) = (m.var(0), m.var(3));
        let f = m.and(x0, x1);
        let g = m.remap(f, &|v| v + 1);
        let y0 = m.var(1);
        let y1 = m.var(4);
        let expect = m.and(y0, y1);
        assert_eq!(g, expect);
        let back = m.remap(g, &|v| v - 1);
        assert_eq!(back, f);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = mgr();
        let (a, b) = (m.var(0), m.var(1));
        let f = m.ite(a, b, Bdd::FALSE);
        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), Bdd::FALSE);
        assert_eq!(m.restrict(f, 7, true), f, "absent variable is no-op");
    }

    #[test]
    fn cube_builds_conjunction() {
        let mut m = mgr();
        let c = m.cube(&[(2, true), (0, false)]);
        let na = m.nvar(0);
        let v2 = m.var(2);
        let expect = m.and(na, v2);
        assert_eq!(c, expect);
        assert_eq!(m.cube(&[]), Bdd::TRUE);
    }

    #[test]
    fn support_and_node_count() {
        let mut m = mgr();
        let (a, c) = (m.var(0), m.var(2));
        let f = m.xor(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert_eq!(m.node_count(f), 5); // two terminals + 3 decision nodes
    }

    #[test]
    fn implies_truth_table() {
        let mut m = mgr();
        let (a, b) = (m.var(0), m.var(1));
        let f = m.implies(a, b);
        for (av, bv, want) in [
            (false, false, true),
            (false, true, true),
            (true, false, false),
            (true, true, true),
        ] {
            assert_eq!(m.eval(f, &|v| if v == 0 { av } else { bv }), want);
        }
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_variable_panics() {
        let mut m = Manager::new(2);
        m.var(5);
    }

    #[test]
    fn gc_sweeps_unrooted_keeps_rooted() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let keep = m.and(a, b);
        let scrap = m.xor(b, c);
        let live_before = m.unique_len();
        assert!(m.node_count(scrap) > 2);
        m.protect(keep);
        let reclaimed = m.gc();
        assert!(reclaimed > 0, "xor structure was unrooted");
        assert!(m.unique_len() < live_before);
        // The rooted function is untouched: structure and semantics hold.
        for x in 0..8u32 {
            let want = x & 0b11 == 0b11;
            assert_eq!(m.eval(keep, &|v| x >> v & 1 == 1), want);
        }
        // Canonicity: rebuilding the rooted function finds the same node.
        let a2 = m.var(0);
        let b2 = m.var(1);
        assert_eq!(m.and(a2, b2), keep);
        m.unprotect(keep);
    }

    #[test]
    fn gc_is_idempotent_without_new_ops() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.ite(a, b, Bdd::FALSE);
        m.protect(f);
        m.gc();
        let after_first = m.unique_len();
        let reclaimed = m.gc();
        assert_eq!(reclaimed, 0, "nothing left to sweep");
        assert_eq!(m.unique_len(), after_first);
        m.unprotect(f);
    }

    #[test]
    fn swept_slots_are_reused() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let _dead = m.xor(a, b);
        let slab = m.num_nodes();
        m.gc();
        // New nodes land in the freed slots: the slab does not grow.
        let c = m.var(2);
        let d = m.var(3);
        let _f = m.and(c, d);
        assert!(m.num_nodes() <= slab, "free-listed slots are reused");
    }

    #[test]
    fn root_token_roundtrip() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b);
        let r = m.root(f);
        assert_eq!(r.bdd(), f);
        assert_eq!(m.num_roots(), 1);
        m.gc();
        assert!(m.eval(r.bdd(), &|_| true));
        m.release(r);
        assert_eq!(m.num_roots(), 0);
    }

    #[test]
    fn protect_is_refcounted() {
        let mut m = mgr();
        let a = m.var(0);
        m.protect(a);
        m.protect(a);
        assert_eq!(m.num_roots(), 1);
        m.unprotect(a);
        m.gc();
        // Still protected by the second count.
        assert!(m.eval(a, &|_| true));
        m.unprotect(a);
        assert_eq!(m.num_roots(), 0);
    }

    #[test]
    #[should_panic(expected = "not rooted")]
    fn unbalanced_unprotect_panics() {
        let mut m = mgr();
        let a = m.var(0);
        m.unprotect(a);
    }

    #[test]
    fn auto_gc_bounds_live_nodes() {
        let mut m = Manager::new(16);
        m.set_gc_threshold(Some(8));
        let mut acc = Bdd::TRUE;
        m.protect(acc);
        for v in 0..16 {
            let x = m.var(v);
            let next = m.and(acc, x); // auto-GC roots its operands
            m.protect(next);
            m.unprotect(acc);
            acc = next;
        }
        assert!(m.gc_stats().runs > 0, "tiny threshold forces sweeps");
        // The 16-variable cube survives every sweep.
        assert!(m.eval(acc, &|_| true));
        assert!(!m.eval(acc, &|v| v != 3));
        m.unprotect(acc);
    }

    #[test]
    fn gc_if_above_thresholds() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let _f = m.xor(a, b);
        assert!(!m.gc_if_above(1 << 20), "below the bound: kept");
        assert!(m.gc_if_above(0), "above the bound: swept");
        assert_eq!(m.unique_len(), 0);
    }

    #[test]
    fn telemetry_counters_track_churn() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        m.protect(f);
        let created_before = m.created_nodes();
        assert!(created_before >= 3);
        assert_eq!(m.peak_unique_len(), m.unique_len());
        m.gc();
        // Only f survives; the single-variable nodes must be re-acquired
        // (their old handles are stale after the sweep).
        let a2 = m.var(0);
        let b2 = m.var(1);
        let g = m.xor(a2, b2);
        assert!(m.created_nodes() > created_before);
        assert!(m.eval(g, &|v| v == 0));
        let stats = m.gc_stats();
        assert_eq!(stats.runs, 1);
        assert!(stats.reclaimed > 0);
        assert_eq!(stats.generation, 1);
        m.unprotect(f);
    }

    #[test]
    fn import_copies_functions_across_managers() {
        let mut src = Manager::new(6);
        let (a, b, c) = (src.var(0), src.var(1), src.var(2));
        let ab = src.and(a, b);
        let f = src.xor(ab, c);

        let mut dst = Manager::new(0); // import grows the variable count
        let g = dst.import(&src, f);
        assert_eq!(dst.num_vars(), 6);
        for x in 0..8u32 {
            let asg = |v: u32| x >> v & 1 == 1;
            assert_eq!(src.eval(f, &asg), dst.eval(g, &asg), "assignment {x:#b}");
        }
        // Canonicity on the destination side: rebuilding the same
        // function natively lands on the imported node.
        let (a2, b2, c2) = (dst.var(0), dst.var(1), dst.var(2));
        let ab2 = dst.and(a2, b2);
        assert_eq!(dst.xor(ab2, c2), g);
        // Terminals import to themselves.
        assert_eq!(dst.import(&src, Bdd::TRUE), Bdd::TRUE);
        assert_eq!(dst.import(&src, Bdd::FALSE), Bdd::FALSE);
        // Same node count: the copy shares structure exactly.
        assert_eq!(src.node_count(f), dst.node_count(g));
    }

    #[test]
    fn import_into_gc_managed_manager_survives_sweeps() {
        let mut src = Manager::new(8);
        let mut f = Bdd::TRUE;
        for v in 0..8 {
            let x = src.var(v);
            f = if v % 2 == 0 {
                src.and(f, x)
            } else {
                src.xor(f, x)
            };
        }
        let mut dst = Manager::new(8);
        dst.set_gc_threshold(Some(4));
        let g = dst.import(&src, f);
        // import itself never sweeps; root the result and churn.
        dst.protect(g);
        let y = dst.var(3);
        let ny = dst.not(y);
        let _churn = dst.and(ny, y);
        for x in 0..256u32 {
            let asg = |v: u32| x >> v & 1 == 1;
            assert_eq!(src.eval(f, &asg), dst.eval(g, &asg));
        }
        dst.unprotect(g);
    }

    #[test]
    fn generational_cache_never_resurrects_swept_ids() {
        // A cached (a ∧ b) entry must not survive the sweep that kills
        // its result node; recomputing after GC must rebuild, not read a
        // stale id pointing into a reused slot.
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        m.protect(a);
        m.protect(b);
        m.gc(); // sweeps ab, keeps the single-variable nodes
        assert_eq!(m.cache_len(), 0, "sweep drops the op cache");
        // Fill the freed slot with something else, then recompute.
        let c = m.var(2);
        let bc = m.or(b, c);
        let ab2 = m.and(a, b);
        assert_ne!(ab2, bc, "recomputation does not alias the reused slot");
        for x in 0..8u32 {
            assert_eq!(m.eval(ab2, &|v| x >> v & 1 == 1), x & 3 == 3);
        }
        let _ = ab; // the old handle is dead; never dereferenced
        m.unprotect(a);
        m.unprotect(b);
    }
}
