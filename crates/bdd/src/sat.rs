//! Model enumeration, counting and cube extraction.

use crate::manager::{Bdd, Manager};

impl Manager {
    /// Number of satisfying assignments of `f` over variables
    /// `0..num_vars`, as an `f64` (exact for < 2⁵³).
    pub fn sat_count(&self, f: Bdd) -> f64 {
        fn rec(m: &Manager, f: Bdd, memo: &mut std::collections::HashMap<u32, f64>) -> f64 {
            // Returns models over variables strictly below var(f)..num_vars,
            // normalized to "per remaining level at var(f)".
            if f.is_false() {
                return 0.0;
            }
            if f.is_true() {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f.0) {
                return c;
            }
            let var = m.root_var(f).expect("non-terminal");
            let (lo, hi) = m.children(f);
            let gap = |child: Bdd| {
                let cv = m.root_var(child).unwrap_or(m.num_vars());
                (cv - var - 1) as i32
            };
            let c = rec(m, lo, memo) * 2f64.powi(gap(lo)) + rec(m, hi, memo) * 2f64.powi(gap(hi));
            memo.insert(f.0, c);
            c
        }
        if f.is_false() {
            return 0.0;
        }
        let top = self.root_var(f).unwrap_or(self.num_vars());
        let mut memo = std::collections::HashMap::new();
        rec(self, f, &mut memo) * 2f64.powi(top as i32)
    }

    /// One satisfying partial assignment (a cube), or `None` if `f` is
    /// unsatisfiable.  Variables absent from the cube are don't-cares.
    pub fn pick_cube(&self, f: Bdd) -> Option<Vec<(u32, bool)>> {
        if f.is_false() {
            return None;
        }
        let mut cube = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let var = self.root_var(cur).expect("non-terminal");
            let (lo, hi) = self.children(cur);
            if !lo.is_false() {
                cube.push((var, false));
                cur = lo;
            } else {
                cube.push((var, true));
                cur = hi;
            }
        }
        Some(cube)
    }

    /// Calls `visit` with every *total* satisfying assignment of `f` over
    /// the given variable list (don't-cares are expanded).
    ///
    /// The assignment slice is indexed like `vars`; it is reused between
    /// calls.  Returns early if `visit` returns `false`.
    ///
    /// # Panics
    ///
    /// Panics if `f`'s support is not contained in `vars`.
    pub fn for_each_model(
        &self,
        f: Bdd,
        vars: &[u32],
        visit: &mut dyn FnMut(&[bool]) -> bool,
    ) -> bool {
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        for v in self.support(f) {
            assert!(
                sorted.binary_search(&v).is_ok(),
                "support variable {v} missing from enumeration list"
            );
        }
        let pos: std::collections::HashMap<u32, usize> =
            vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut assignment = vec![false; vars.len()];
        self.enum_rec(f, &sorted, 0, &pos, &mut assignment, visit)
    }

    fn enum_rec(
        &self,
        f: Bdd,
        sorted: &[u32],
        i: usize,
        pos: &std::collections::HashMap<u32, usize>,
        assignment: &mut [bool],
        visit: &mut dyn FnMut(&[bool]) -> bool,
    ) -> bool {
        if f.is_false() {
            return true;
        }
        if i == sorted.len() {
            return visit(assignment);
        }
        let v = sorted[i];
        let (lo, hi) = match self.root_var(f) {
            Some(fv) if fv == v => self.children(f),
            _ => (f, f),
        };
        let idx = pos[&v];
        assignment[idx] = false;
        if !self.enum_rec(lo, sorted, i + 1, pos, assignment, visit) {
            return false;
        }
        assignment[idx] = true;
        self.enum_rec(hi, sorted, i + 1, pos, assignment, visit)
    }

    /// Collects all total models over `vars` as bit-packed `u64`s
    /// (bit `i` holds the value of `vars[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() > 64` or support is not contained in `vars`.
    pub fn models_packed(&self, f: Bdd, vars: &[u32]) -> Vec<u64> {
        assert!(vars.len() <= 64, "too many variables to pack");
        let mut out = Vec::new();
        self.for_each_model(f, vars, &mut |a| {
            let mut w = 0u64;
            for (i, &b) in a.iter().enumerate() {
                if b {
                    w |= 1 << i;
                }
            }
            out.push(w);
            true
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_count_basic() {
        let mut m = Manager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        assert_eq!(m.sat_count(Bdd::TRUE), 8.0);
        assert_eq!(m.sat_count(Bdd::FALSE), 0.0);
        assert_eq!(m.sat_count(a), 4.0);
        let f = m.and(a, b);
        assert_eq!(m.sat_count(f), 2.0);
        let g = m.xor(a, b);
        assert_eq!(m.sat_count(g), 4.0);
    }

    #[test]
    fn pick_cube_satisfies() {
        let mut m = Manager::new(4);
        let (a, b) = (m.var(0), m.var(3));
        let nb = m.not(b);
        let f = m.and(a, nb);
        let cube = m.pick_cube(f).unwrap();
        assert!(cube.contains(&(0, true)) && cube.contains(&(3, false)));
        assert!(m.pick_cube(Bdd::FALSE).is_none());
    }

    #[test]
    fn enumeration_expands_dont_cares() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let models = m.models_packed(a, &[0, 1, 2]);
        assert_eq!(models.len(), 4);
        for w in models {
            assert_eq!(w & 1, 1);
        }
    }

    #[test]
    fn enumeration_respects_var_slice_order() {
        let mut m = Manager::new(3);
        let (a, c) = (m.var(0), m.var(2));
        let nc = m.not(c);
        let f = m.and(a, nc); // a=1, c=0
        let models = m.models_packed(f, &[2, 0]); // bit0 = var2, bit1 = var0
        assert_eq!(models, vec![0b10]);
    }

    #[test]
    fn enumeration_early_exit() {
        let m = Manager::new(3);
        let mut count = 0;
        m.for_each_model(Bdd::TRUE, &[0, 1, 2], &mut |_| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    #[should_panic(expected = "missing from enumeration list")]
    fn enumeration_requires_support() {
        let mut m = Manager::new(3);
        let f = m.var(2);
        m.models_packed(f, &[0, 1]);
    }

    #[test]
    fn sat_count_matches_enumeration() {
        let mut m = Manager::new(5);
        let (a, b, c) = (m.var(0), m.var(2), m.var(4));
        let ab = m.or(a, b);
        let f = m.xor(ab, c);
        let n = m.models_packed(f, &[0, 1, 2, 3, 4]).len();
        assert_eq!(m.sat_count(f), n as f64);
    }
}
