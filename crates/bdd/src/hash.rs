//! A fast, non-cryptographic hasher for the unique table and op caches.
//!
//! BDD packages are dominated by hash-table lookups of small fixed-size
//! keys; `SipHash` (std's default) costs several times more than a
//! multiply-fold hash.  This is the classic `FxHash` folding scheme.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher specialized for small integer keys.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxMap<K, V> = std::collections::HashMap<K, V, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_enough() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..64u32 {
            for b in 0..64u32 {
                let mut h = FxHasher::default();
                h.write_u32(a);
                h.write_u32(b);
                seen.insert(h.finish());
            }
        }
        // No catastrophic collapse: at least 99% unique.
        assert!(seen.len() > 64 * 64 * 99 / 100);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxMap<(u32, u32), u32> = FxMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), None);
    }
}
