//! A from-scratch ROBDD (reduced ordered binary decision diagram) package.
//!
//! This is the symbolic substrate the DAC'97 flow uses for state-graph
//! traversal (the paper cites Coudert/Berthet/Madre-style functional-vector
//! verification and Burch et al. symbolic model checking).  It provides the
//! operations that symbolic reachability and CSSG construction need:
//!
//! * hash-consed node storage with an operation cache,
//! * `and`/`or`/`xor`/`not`/`ite`,
//! * existential/universal quantification and the fused relational
//!   product [`Manager::and_exists`],
//! * monotone variable remapping ([`Manager::remap`]) for moving
//!   predicates between the interleaved current/next/auxiliary variable
//!   frames,
//! * model enumeration, counting and cube extraction,
//! * mark-and-sweep garbage collection with rooted handles
//!   ([`Manager::protect`]/[`Manager::root`], [`Manager::gc`],
//!   [`Manager::gc_if_above`], [`Manager::set_gc_threshold`]) so
//!   long-lived managers are bounded by their working set rather than
//!   by everything they ever computed.
//!
//! Variable order is fixed: variable index *is* level (no dynamic
//! reordering; callers choose a good static interleaving).
//!
//! # Example
//!
//! ```
//! use satpg_bdd::Manager;
//!
//! let mut m = Manager::new(4);
//! let (a, b) = (m.var(0), m.var(1));
//! let f = m.and(a, b);
//! let g = m.exists(f, &[1]);
//! assert_eq!(g, a); // ∃b. a∧b = a
//! ```

mod hash;
mod manager;
mod sat;

pub use manager::{Bdd, GcStats, Manager, Root};
