//! Property tests for garbage collection: random op sequences over a
//! [`Manager`] with interleaved sweeps (explicit and auto-triggered)
//! must never change the semantics of any rooted function.
//!
//! Invariants checked per generated case:
//!
//! * every rooted BDD evaluates identically on all 64 assignments of
//!   the 6-variable space before and after each sweep;
//! * `unique_len` never grows across a sweep with no new operations,
//!   and an immediately repeated sweep reclaims nothing;
//! * canonicity survives reclamation: re-building a rooted function
//!   yields the identical handle;
//! * with nothing rooted, a sweep empties the unique table.

use proptest::prelude::*;
use satpg_bdd::{Bdd, Manager};

const NVARS: u32 = 6;

/// A random Boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

impl Expr {
    fn eval(&self, a: u64) -> bool {
        match self {
            Expr::Var(v) => (a >> v) & 1 == 1,
            Expr::Not(x) => !x.eval(a),
            Expr::And(x, y) => x.eval(a) && y.eval(a),
            Expr::Or(x, y) => x.eval(a) || y.eval(a),
            Expr::Xor(x, y) => x.eval(a) != y.eval(a),
            Expr::Ite(c, t, e) => {
                if c.eval(a) {
                    t.eval(a)
                } else {
                    e.eval(a)
                }
            }
            Expr::Const(b) => *b,
        }
    }

    /// Builds the expression under the rooted-handle discipline: every
    /// subresult held across a sibling build is protected, so the build
    /// is correct even when a sweep fires inside any operation.
    fn build(&self, m: &mut Manager) -> Bdd {
        match self {
            Expr::Var(v) => m.var(*v),
            Expr::Not(x) => {
                let f = x.build(m);
                m.not(f)
            }
            Expr::And(x, y) => {
                let f = x.build(m);
                m.protect(f);
                let g = y.build(m);
                let r = m.and(f, g);
                m.unprotect(f);
                r
            }
            Expr::Or(x, y) => {
                let f = x.build(m);
                m.protect(f);
                let g = y.build(m);
                let r = m.or(f, g);
                m.unprotect(f);
                r
            }
            Expr::Xor(x, y) => {
                let f = x.build(m);
                m.protect(f);
                let g = y.build(m);
                let r = m.xor(f, g);
                m.unprotect(f);
                r
            }
            Expr::Ite(c, t, e) => {
                let f = c.build(m);
                m.protect(f);
                let g = t.build(m);
                m.protect(g);
                let h = e.build(m);
                let r = m.ite(f, g, h);
                m.unprotect(g);
                m.unprotect(f);
                r
            }
            Expr::Const(b) => {
                if *b {
                    Bdd::TRUE
                } else {
                    Bdd::FALSE
                }
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Expr::Not(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Or(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Xor(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Ite(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

/// Asserts each rooted (expression, handle) pair still evaluates like
/// its expression on the full 64-assignment space.
fn assert_semantics(m: &Manager, built: &[(Expr, Bdd)]) -> Result<(), TestCaseError> {
    for (e, f) in built {
        for a in 0..(1u64 << NVARS) {
            prop_assert_eq!(
                m.eval(*f, &|v| (a >> v) & 1 == 1),
                e.eval(a),
                "rooted function changed by GC"
            );
        }
    }
    Ok(())
}

proptest! {
    /// Explicit sweeps interleaved between builds never disturb rooted
    /// functions, and the sweep fixpoint laws hold.
    #[test]
    fn rooted_functions_survive_interleaved_gc(
        exprs in proptest::collection::vec(arb_expr(), 1..6)
    ) {
        let mut m = Manager::new(NVARS);
        let mut built: Vec<(Expr, Bdd)> = Vec::new();
        for e in &exprs {
            let f = e.build(&mut m);
            m.protect(f);
            built.push((e.clone(), f));
            m.gc();
            assert_semantics(&m, &built)?;
        }
        // A sweep with no new operations never grows the table, and a
        // second sweep reclaims nothing further.
        m.gc();
        let settled = m.unique_len();
        let reclaimed = m.gc();
        prop_assert_eq!(reclaimed, 0);
        prop_assert_eq!(m.unique_len(), settled);
        // Canonicity: re-building a rooted function is a table hit.
        for (e, f) in &built {
            let g = e.build(&mut m);
            prop_assert_eq!(g, *f, "canonicity lost across sweeps");
        }
        for (_, f) in &built {
            m.unprotect(*f);
        }
    }

    /// The same invariants under automatic GC at an adversarial
    /// threshold (including 0: a sweep before nearly every operation).
    #[test]
    fn auto_gc_thresholds_are_transparent(
        exprs in proptest::collection::vec(arb_expr(), 1..5),
        threshold in 0usize..24,
    ) {
        let mut m = Manager::new(NVARS);
        m.set_gc_threshold(Some(threshold));
        let mut built: Vec<(Expr, Bdd)> = Vec::new();
        for e in &exprs {
            let f = e.build(&mut m);
            m.protect(f);
            built.push((e.clone(), f));
        }
        assert_semantics(&m, &built)?;
        // The rooted working set is a lower bound for live nodes; the
        // threshold bounds what is allowed to pile on top between
        // triggering operations.
        let rooted: usize = {
            let mut live = std::collections::HashSet::new();
            for (_, f) in &built {
                let mut stack = vec![*f];
                while let Some(x) = stack.pop() {
                    if live.insert(x) && !x.is_const() {
                        let (lo, hi) = m.children(x);
                        stack.push(lo);
                        stack.push(hi);
                    }
                }
            }
            live.len()
        };
        m.gc();
        prop_assert!(m.unique_len() <= rooted.max(threshold) + 2);
        for (_, f) in &built {
            m.unprotect(*f);
        }
    }

    /// With nothing rooted, a sweep reclaims the whole table.
    #[test]
    fn unrooted_world_collapses(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = e.build(&mut m);
        let live = m.unique_len();
        m.gc();
        prop_assert_eq!(m.unique_len(), 0);
        prop_assert_eq!(m.gc_stats().reclaimed, live);
        let _ = f; // dead handle, never dereferenced
    }
}
