//! GC stress: build and drop well over 100k nodes under a low
//! `gc_if_above` threshold and verify the peak unique-table size stays
//! an order of magnitude below the immortal-node baseline while every
//! rooted function remains semantically unchanged.
//!
//! This is the CI job's release-mode memory test, but it is cheap
//! enough to run in the default (debug) suite as well.

use satpg_bdd::{Bdd, Manager};

/// Deterministic 64-bit LCG (Knuth's MMIX constants) — the test must
/// not depend on an RNG crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

const NVARS: u32 = 32;
const THRESHOLD: usize = 4096;
const CHURN_TARGET: usize = 120_000;

/// Builds one pseudo-random SOP (OR of conjunctions of literals) under
/// the rooted-handle discipline, returning its unrooted handle.
fn random_sop(m: &mut Manager, rng: &mut Lcg) -> Bdd {
    let mut acc = Bdd::FALSE;
    m.protect(acc);
    for _ in 0..6 {
        let mut c = Bdd::TRUE;
        m.protect(c);
        for _ in 0..8 {
            // Sample from the high bits: an LCG's low bits are periodic.
            let v = ((rng.next() >> 33) % NVARS as u64) as u32;
            let pos = rng.next() >> 63 == 1;
            let lit = m.literal(v, pos);
            let nc = m.and(c, lit);
            c = m.reroot(c, nc);
        }
        let na = m.or(acc, c);
        acc = m.reroot(acc, na);
        m.unprotect(c);
    }
    m.unprotect(acc);
    acc
}

#[test]
fn peak_stays_bounded_under_100k_node_churn() {
    let mut m = Manager::new(NVARS);
    m.set_gc_threshold(Some(THRESHOLD));

    // Three long-lived rooted functions of different shapes.
    let parity = {
        let mut acc = Bdd::FALSE;
        for v in (0..16).step_by(2) {
            let x = m.var(v);
            acc = m.xor(acc, x); // acc is an operand: safe under auto-GC
        }
        acc
    };
    m.protect(parity);
    let wide_cube = {
        let lits: Vec<(u32, bool)> = (0..NVARS).map(|v| (v, v % 3 != 0)).collect();
        m.cube(&lits)
    };
    m.protect(wide_cube);
    let mixed = {
        let a = m.var(7);
        m.protect(a);
        let b = m.var(19);
        m.protect(b);
        let c = m.var(28);
        let bc = m.or(b, c);
        let r = m.ite(a, bc, parity);
        m.unprotect(b);
        m.unprotect(a);
        r
    };
    m.protect(mixed);
    let rooted = [parity, wide_cube, mixed];

    // Reference semantics on 64 pseudo-random assignments.
    let mut rng = Lcg(0x5eed_cafe);
    let assignments: Vec<u64> = (0..64).map(|_| rng.next()).collect();
    let snapshot: Vec<Vec<bool>> = rooted
        .iter()
        .map(|&f| {
            assignments
                .iter()
                .map(|&a| m.eval(f, &|v| (a >> v) & 1 == 1))
                .collect()
        })
        .collect();

    // Churn: build and immediately drop random products until well past
    // the 100k-created mark.
    let mut rounds = 0usize;
    while m.created_nodes() < CHURN_TARGET {
        let _dead = random_sop(&mut m, &mut rng);
        rounds += 1;
        assert!(rounds < 1_000_000, "churn loop failed to allocate");
    }

    let created = m.created_nodes();
    let peak = m.peak_unique_len();
    let stats = m.gc_stats();
    assert!(created >= 100_000, "churned {created} nodes");
    assert!(stats.runs > 0, "threshold {THRESHOLD} must trigger sweeps");
    assert!(stats.reclaimed > 0);
    // The acceptance bound: with immortal nodes the unique table would
    // have held every created node, so the GC'd peak must be at least
    // 10x smaller than that baseline.
    assert!(
        peak * 10 <= created,
        "peak {peak} not >=10x below the immortal baseline {created}"
    );
    // The slab (capacity) is equally bounded: freed slots are reused.
    assert!(m.num_nodes() <= peak + 2);

    // Every rooted function is semantically untouched.
    for (fi, &f) in rooted.iter().enumerate() {
        for (ai, &a) in assignments.iter().enumerate() {
            assert_eq!(
                m.eval(f, &|v| (a >> v) & 1 == 1),
                snapshot[fi][ai],
                "rooted function {fi} changed under churn"
            );
        }
    }
    // And still canonical: rebuilding parity lands on the same handle.
    let rebuilt = {
        let mut acc = Bdd::FALSE;
        for v in (0..16).step_by(2) {
            let x = m.var(v);
            acc = m.xor(acc, x);
        }
        acc
    };
    assert_eq!(rebuilt, parity);

    m.unprotect(parity);
    m.unprotect(wide_cube);
    m.unprotect(mixed);
    // Dropping the last roots lets a final sweep empty the table.
    m.gc();
    assert_eq!(m.unique_len(), 0);
}
