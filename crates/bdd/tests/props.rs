//! Property tests: BDD operations agree with brute-force truth tables.

use proptest::prelude::*;
use satpg_bdd::{Bdd, Manager};

const NVARS: u32 = 6;

/// A random Boolean expression over `NVARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

impl Expr {
    fn eval(&self, a: u64) -> bool {
        match self {
            Expr::Var(v) => (a >> v) & 1 == 1,
            Expr::Not(x) => !x.eval(a),
            Expr::And(x, y) => x.eval(a) && y.eval(a),
            Expr::Or(x, y) => x.eval(a) || y.eval(a),
            Expr::Xor(x, y) => x.eval(a) != y.eval(a),
            Expr::Ite(c, t, e) => {
                if c.eval(a) {
                    t.eval(a)
                } else {
                    e.eval(a)
                }
            }
            Expr::Const(b) => *b,
        }
    }

    fn build(&self, m: &mut Manager) -> Bdd {
        match self {
            Expr::Var(v) => m.var(*v),
            Expr::Not(x) => {
                let f = x.build(m);
                m.not(f)
            }
            Expr::And(x, y) => {
                let (f, g) = (x.build(m), y.build(m));
                m.and(f, g)
            }
            Expr::Or(x, y) => {
                let (f, g) = (x.build(m), y.build(m));
                m.or(f, g)
            }
            Expr::Xor(x, y) => {
                let (f, g) = (x.build(m), y.build(m));
                m.xor(f, g)
            }
            Expr::Ite(c, t, e) => {
                let (f, g, h) = (c.build(m), t.build(m), e.build(m));
                m.ite(f, g, h)
            }
            Expr::Const(b) => {
                if *b {
                    Bdd::TRUE
                } else {
                    Bdd::FALSE
                }
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Expr::Not(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Or(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Xor(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Ite(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

proptest! {
    /// Every built BDD evaluates exactly like the expression.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = e.build(&mut m);
        for a in 0..(1u64 << NVARS) {
            prop_assert_eq!(m.eval(f, &|v| (a >> v) & 1 == 1), e.eval(a));
        }
    }

    /// Canonicity: equivalent expressions share one node.
    #[test]
    fn canonical_handles(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = e.build(&mut m);
        // De Morgan round trip produces the identical handle.
        let nf = m.not(f);
        let nnf = m.not(nf);
        prop_assert_eq!(f, nnf);
    }

    /// ∃x.f computed by the engine equals or-of-cofactors.
    #[test]
    fn exists_is_or_of_cofactors(e in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = e.build(&mut m);
        let ex = m.exists(f, &[v]);
        let lo = m.restrict(f, v, false);
        let hi = m.restrict(f, v, true);
        let or = m.or(lo, hi);
        prop_assert_eq!(ex, or);
    }

    /// Fused and_exists equals the composition of and + exists.
    #[test]
    fn and_exists_unfused(e1 in arb_expr(), e2 in arb_expr(), v in 0..NVARS, w in 0..NVARS) {
        let mut m = Manager::new(NVARS);
        let f = e1.build(&mut m);
        let g = e2.build(&mut m);
        let fused = m.and_exists(f, g, &[v, w]);
        let conj = m.and(f, g);
        let plain = m.exists(conj, &[v, w]);
        prop_assert_eq!(fused, plain);
    }

    /// sat_count equals brute-force model count.
    #[test]
    fn sat_count_exact(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = e.build(&mut m);
        let brute = (0..(1u64 << NVARS)).filter(|&a| e.eval(a)).count();
        prop_assert_eq!(m.sat_count(f), brute as f64);
    }

    /// Every enumerated model satisfies the expression, and the count is
    /// exact.
    #[test]
    fn enumeration_sound_and_complete(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = e.build(&mut m);
        let vars: Vec<u32> = (0..NVARS).collect();
        let models = m.models_packed(f, &vars);
        for &a in &models {
            prop_assert!(e.eval(a));
        }
        let brute = (0..(1u64 << NVARS)).filter(|&a| e.eval(a)).count();
        prop_assert_eq!(models.len(), brute);
    }

    /// pick_cube returns a satisfying partial assignment.
    #[test]
    fn pick_cube_sound(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = e.build(&mut m);
        match m.pick_cube(f) {
            None => prop_assert_eq!(f, Bdd::FALSE),
            Some(cube) => {
                // Complete the cube with zeros for free variables.
                let assign = |v: u32| cube.iter().find(|&&(cv, _)| cv == v).map(|&(_, b)| b).unwrap_or(false);
                prop_assert!(m.eval(f, &assign));
            }
        }
    }

    /// Remapping by a uniform shift preserves the function modulo renaming.
    #[test]
    fn remap_shift_roundtrip(e in arb_expr()) {
        let mut m = Manager::new(2 * NVARS);
        let f = e.build(&mut m);
        let g = m.remap(f, &|v| v + NVARS);
        let back = m.remap(g, &|v| v - NVARS);
        prop_assert_eq!(back, f);
        for a in 0..(1u64 << NVARS) {
            let shifted = m.eval(g, &|v| (a >> (v - NVARS)) & 1 == 1);
            prop_assert_eq!(shifted, e.eval(a));
        }
    }
}
