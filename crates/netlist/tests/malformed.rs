//! Malformed-input battery for the `.ckt` parser: untrusted text must
//! produce line-numbered `Err`s, never panic (the service daemon feeds
//! it raw client bytes).

use satpg_netlist::{library, parse_ckt, to_ckt, NetlistError};

#[test]
fn library_circuits_survive_line_truncation() {
    for ckt in library::all() {
        let src = to_ckt(&ckt);
        let lines: Vec<&str> = src.lines().collect();
        for cut in 0..lines.len() {
            let truncated = lines[..cut].join("\n");
            match parse_ckt(&truncated) {
                Ok(_) => {}
                Err(NetlistError::Parse { line, .. }) => {
                    assert!(line >= 1, "{}@{cut}", ckt.name());
                }
                Err(_) => {} // semantic construction errors are fine
            }
        }
    }
}

#[test]
fn byte_truncation_never_panics() {
    let src = to_ckt(&library::muller_pipeline2());
    for cut in 0..src.len() {
        if src.is_char_boundary(cut) {
            let _ = parse_ckt(&src[..cut]);
        }
    }
}

#[test]
fn sop_literal_abuse_errors_instead_of_panicking() {
    // Regression: tab-separated SOP literals used to tokenize
    // differently in the pin table and the cube walk, panicking on the
    // lookup; a bare `!` produced an empty literal name with the same
    // effect.
    for src in [
        "circuit t\ninputs A:a B:b\noutputs y\ngate y = sop(a\tb)\n",
        "circuit t\ninputs A:a\noutputs y\ngate y = sop(!)\n",
        "circuit t\ninputs A:a\noutputs y\ngate y = sop(a | !)\n",
        "circuit t\ninputs A:a\noutputs y\ngate y = sop(!!a)\n",
    ] {
        match parse_ckt(src) {
            // The tab form is actually legal once tokenization agrees.
            Ok(c) => assert_eq!(c.name(), "t"),
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty());
            }
        }
    }
    // And the tab form specifically must parse like the space form.
    let tabbed = parse_ckt("circuit t\ninputs A:a B:b\noutputs y\ngate y = sop(a\tb)\n").unwrap();
    let spaced = parse_ckt("circuit t\ninputs A:a B:b\noutputs y\ngate y = sop(a b)\n").unwrap();
    assert_eq!(to_ckt(&tabbed), to_ckt(&spaced));
}

#[test]
fn hostile_fragments_error_with_locations() {
    let cases = [
        ("circuit\n", 1),
        ("circuit x\nfrob y\n", 2),
        ("circuit x\ngate y not(a)\n", 2),
        ("circuit x\ngate y = not(a\n", 2),
        ("circuit x\ngate y = frob(a)\n", 2),
        ("circuit x\ngate y = sop()\n", 2),
        ("circuit x\ngate y = sop(a | )\n", 2),
        ("circuit x\ninit a\n", 2),
        ("circuit x\ninit a=2\n", 2),
    ];
    for (src, want_line) in cases {
        match parse_ckt(src) {
            Err(NetlistError::Parse { line, .. }) => {
                assert_eq!(line, want_line, "{src:?}")
            }
            other => panic!("{src:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn semantic_abuse_errors_without_panics() {
    // Unknown signals, duplicate outputs, env-pin reads, arity abuse:
    // all construction-level `Err`s.
    for src in [
        "circuit x\ninputs A:a\noutputs y\ngate y = not(ghost)\n",
        "circuit x\ninputs A:a\noutputs y\ngate y = not(a)\ngate y = buf(a)\n",
        "circuit x\ninputs A:a\noutputs y\ngate y = not(A)\n",
        "circuit x\ninputs A:a\noutputs y\ngate y = not(a, a)\n",
        "circuit x\ninputs A:a\noutputs ghost\ngate y = not(a)\n",
        "circuit x\ninputs A:a A:b\noutputs y\ngate y = not(a)\n",
        "circuit x\ninputs A:a\noutputs y\ngate y = c(a)\ninit y=1\n",
    ] {
        assert!(parse_ckt(src).is_err(), "{src:?} should fail");
    }
}
