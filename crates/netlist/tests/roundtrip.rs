//! Round-trip: serialize every built-in circuit to the `.ckt` format,
//! reparse, and check behavioural equivalence.

use satpg_netlist::{library, parse_ckt, to_ckt, Bits, GateId};

/// Two circuits are behaviourally equivalent if, for matching signal
/// names, every gate evaluates identically on shared states.
fn assert_equivalent(a: &satpg_netlist::Circuit, b: &satpg_netlist::Circuit) {
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.num_gates(), b.num_gates());
    assert_eq!(a.num_state_bits(), b.num_state_bits());
    assert_eq!(
        a.outputs()
            .iter()
            .map(|&o| a.signal_name(o))
            .collect::<Vec<_>>(),
        b.outputs()
            .iter()
            .map(|&o| b.signal_name(o))
            .collect::<Vec<_>>()
    );
    // Deterministic pseudo-random states over the shared signal names.
    let n = a.num_state_bits();
    let mut x = 0x9E3779B97F4A7C15u64;
    for _ in 0..64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let sa = Bits::from_fn(n, |i| (x >> (i % 64)) & 1 == 1);
        // Build b's state by name.
        let mut sb = Bits::zeros(n);
        for i in 0..n {
            let name = a.signal_name(satpg_netlist::SignalId(i as u32));
            let j = b.signal_by_name(name).expect("same signal names");
            sb.set(j.index(), sa.get(i));
        }
        for gi in 0..a.num_gates() {
            let ga = GateId(gi as u32);
            let name = a.signal_name(a.gate_output(ga));
            let gb = b
                .driver(b.signal_by_name(name).unwrap())
                .expect("same drivers");
            assert_eq!(
                a.eval_gate(ga, &sa),
                b.eval_gate(gb, &sb),
                "gate {name} differs on {sa}"
            );
        }
    }
    // Initial states agree by name.
    for i in 0..n {
        let name = a.signal_name(satpg_netlist::SignalId(i as u32));
        let j = b.signal_by_name(name).unwrap();
        assert_eq!(
            a.initial_state().get(i),
            b.initial_state().get(j.index()),
            "initial value of {name}"
        );
    }
}

#[test]
fn library_circuits_roundtrip() {
    for ckt in library::all() {
        let text = to_ckt(&ckt);
        let back = parse_ckt(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", ckt.name()));
        assert_equivalent(&ckt, &back);
    }
}

#[test]
fn serialized_form_is_readable() {
    let text = to_ckt(&library::figure1a());
    assert!(text.contains("circuit figure1a"));
    assert!(text.contains("inputs A:a B:b"));
    assert!(text.contains("gate c = and(a, b)"));
    assert!(text.contains("init B=1 b=1"));
}
