//! Input patterns of arbitrary width.
//!
//! [`Pattern`] is the input-vector counterpart of [`crate::Bits`]: bit
//! `i` holds the value applied to primary input `i`.  Unlike `Bits` it
//! stores the common ≤64-input case inline (no heap allocation), so the
//! pattern enumeration loops at the heart of CSSG construction cost the
//! same as the old bare-`u64` words, while anything wider spills to
//! boxed words instead of overflowing a shift.
//!
//! Enumeration is iterator based ([`Pattern::all`]) and counting is
//! checked ([`pattern_count`]): no caller ever computes `1u64 << n`,
//! which panicked in debug builds and silently wrapped to a single
//! pattern in release builds at exactly `n == 64`.

use std::cmp::Ordering;
use std::fmt;

/// Checked pattern-space size: `Some(2^n)` when the count fits a `u64`,
/// `None` from 64 inputs up.
///
/// This is the one sanctioned replacement for the `1u64 << n` idiom: a
/// `None` means "more patterns than a `u64` can count", never a panic or
/// a wrap.
#[inline]
pub fn pattern_count(n: usize) -> Option<u64> {
    (n < 64).then(|| 1u64 << n)
}

/// Mask selecting the bits of the top word that are inside `len`.
#[inline]
fn top_mask(len: usize) -> u64 {
    let r = len % 64;
    if r == 0 {
        u64::MAX
    } else {
        (1u64 << r) - 1
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// `len <= 64`: the whole pattern in one word.
    Inline(u64),
    /// `len > 64`: `len.div_ceil(64)` words, low word first, bits past
    /// `len` always zero.
    Spill(Box<[u64]>),
}

/// An input pattern: bit `i` is the value applied to primary input `i`.
///
/// The representation is canonical — `len <= 64` is always [`Repr::Inline`]
/// — so the derived `Eq`/`Hash` are sound, and the manual [`Ord`] sorts
/// patterns of equal width in plain numeric order (matching the old `u64`
/// ascending enumeration, which keeps CSSG edge lists and therefore
/// report bytes stable).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    len: u32,
    repr: Repr,
}

impl Pattern {
    /// The all-zero pattern of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Pattern::from_u64(len, 0)
    }

    /// A pattern of `len` bits whose low 64 bits come from `v`; bits of
    /// `v` at positions `>= len` are masked off (the `set_low_u64`
    /// semantics the old `u64` call sites relied on).
    pub fn from_u64(len: usize, v: u64) -> Self {
        if len <= 64 {
            let v = if len == 64 {
                v
            } else {
                v & ((1u64 << len) - 1)
            };
            Pattern {
                len: len as u32,
                repr: Repr::Inline(v),
            }
        } else {
            let mut words = vec![0u64; len.div_ceil(64)];
            words[0] = v;
            Pattern {
                len: len as u32,
                repr: Repr::Spill(words.into_boxed_slice()),
            }
        }
    }

    /// A pattern of `len` bits from a predicate on bit positions.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut p = Pattern::zeros(len);
        for i in 0..len {
            if f(i) {
                p.set(i, true);
            }
        }
        p
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the pattern has zero width.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len(), "pattern bit {i} out of range {}", self.len);
        match &self.repr {
            Repr::Inline(w) => (w >> i) & 1 == 1,
            Repr::Spill(ws) => (ws[i / 64] >> (i % 64)) & 1 == 1,
        }
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len(), "pattern bit {i} out of range {}", self.len);
        let m = 1u64 << (i % 64);
        let w = match &mut self.repr {
            Repr::Inline(w) => w,
            Repr::Spill(ws) => &mut ws[i / 64],
        };
        if v {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        match &self.repr {
            Repr::Inline(w) => w.count_ones() as usize,
            Repr::Spill(ws) => ws.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// The pattern's value as a `u64`, when it fits (always for the
    /// inline ≤64-bit representation; for wider patterns only when all
    /// high words are zero).
    pub fn as_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Inline(w) => Some(*w),
            Repr::Spill(ws) => ws[1..].iter().all(|&w| w == 0).then(|| ws[0]),
        }
    }

    /// Backing word `w` (low bit of word 0 is bit 0); zero past the end.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        match &self.repr {
            Repr::Inline(v) => {
                if w == 0 {
                    *v
                } else {
                    0
                }
            }
            Repr::Spill(ws) => ws.get(w).copied().unwrap_or(0),
        }
    }

    /// Adds one modulo `2^len` (ripple carry across words) and reports
    /// whether the result did *not* wrap to zero — i.e. `true` while the
    /// enumeration has more patterns.
    pub fn increment(&mut self) -> bool {
        let len = self.len();
        if len == 0 {
            return false;
        }
        match &mut self.repr {
            Repr::Inline(w) => {
                let mask = if len == 64 {
                    u64::MAX
                } else {
                    (1u64 << len) - 1
                };
                *w = w.wrapping_add(1) & mask;
                *w != 0
            }
            Repr::Spill(ws) => {
                for w in ws.iter_mut() {
                    let (nv, carry) = w.overflowing_add(1);
                    *w = nv;
                    if !carry {
                        break;
                    }
                }
                let last = ws.len() - 1;
                ws[last] &= top_mask(len);
                ws.iter().any(|&w| w != 0)
            }
        }
    }

    /// Iterates every `len`-bit pattern in ascending numeric order,
    /// starting from zero.  This replaces the `0..(1u64 << n)` loops: it
    /// is correct for *any* width (the iterator simply never terminates
    /// early — callers enumerating very wide spaces are expected to
    /// impose their own budget).
    pub fn all(len: usize) -> Patterns {
        Patterns {
            next: Some(Pattern::zeros(len)),
        }
    }
}

impl Ord for Pattern {
    fn cmp(&self, other: &Self) -> Ordering {
        self.len.cmp(&other.len).then_with(|| {
            match (&self.repr, &other.repr) {
                (Repr::Inline(a), Repr::Inline(b)) => a.cmp(b),
                (Repr::Spill(a), Repr::Spill(b)) => {
                    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
                        match x.cmp(y) {
                            Ordering::Equal => {}
                            o => return o,
                        }
                    }
                    Ordering::Equal
                }
                // Unreachable under the canonical-representation
                // invariant (equal lengths share a variant), but keep
                // the order total anyway.
                (Repr::Inline(_), Repr::Spill(_)) => Ordering::Less,
                (Repr::Spill(_), Repr::Inline(_)) => Ordering::Greater,
            }
        })
    }
}

impl PartialOrd for Pattern {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<u64> for Pattern {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<Pattern> for u64 {
    fn eq(&self, other: &Pattern) -> bool {
        other.as_u64() == Some(*self)
    }
}

impl fmt::Display for Pattern {
    /// Bit 0 first, like [`crate::Bits`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.as_u64() {
            Some(v) => write!(f, "Pattern({}:{v})", self.len),
            None => write!(f, "Pattern({}:{self})", self.len),
        }
    }
}

/// Ascending enumeration of every pattern of a fixed width; see
/// [`Pattern::all`].
pub struct Patterns {
    next: Option<Pattern>,
}

impl Iterator for Patterns {
    type Item = Pattern;

    fn next(&mut self) -> Option<Pattern> {
        let cur = self.next.take()?;
        let mut nxt = cur.clone();
        if nxt.increment() {
            self.next = Some(nxt);
        }
        Some(cur)
    }
}

/// Anything convertible to a [`Pattern`] of a given width: `u64` for the
/// classic narrow call sites, `Pattern`/`&Pattern` pass through.  APIs
/// taking `impl IntoPattern` stay source compatible with the old bare
/// `u64` arguments while accepting arbitrary-width patterns.
pub trait IntoPattern {
    /// Converts to a pattern of exactly `len` bits; extra high bits of a
    /// `u64` are masked off (the old `set_low_u64` semantics).
    fn into_pattern(self, len: usize) -> Pattern;
}

impl IntoPattern for u64 {
    fn into_pattern(self, len: usize) -> Pattern {
        Pattern::from_u64(len, self)
    }
}

impl IntoPattern for Pattern {
    fn into_pattern(self, len: usize) -> Pattern {
        debug_assert_eq!(self.len(), len, "pattern width mismatch");
        self
    }
}

impl IntoPattern for &Pattern {
    fn into_pattern(self, len: usize) -> Pattern {
        debug_assert_eq!(self.len(), len, "pattern width mismatch");
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_count_is_checked() {
        assert_eq!(pattern_count(0), Some(1));
        assert_eq!(pattern_count(2), Some(4));
        assert_eq!(pattern_count(63), Some(1u64 << 63));
        assert_eq!(pattern_count(64), None);
        assert_eq!(pattern_count(65), None);
    }

    #[test]
    fn inline_roundtrip() {
        let p = Pattern::from_u64(6, 0b101101);
        assert_eq!(p.len(), 6);
        assert_eq!(p.as_u64(), Some(0b101101));
        assert!(p.get(0) && !p.get(1) && p.get(5));
        assert_eq!(p.count_ones(), 4);
        assert_eq!(p, 0b101101u64);
    }

    #[test]
    fn from_u64_masks_high_bits() {
        let p = Pattern::from_u64(2, 0b111);
        assert_eq!(p.as_u64(), Some(0b11));
    }

    #[test]
    fn spill_roundtrip() {
        let mut p = Pattern::zeros(130);
        p.set(0, true);
        p.set(64, true);
        p.set(129, true);
        assert_eq!(p.count_ones(), 3);
        assert!(p.get(64) && p.get(129) && !p.get(128));
        assert_eq!(p.as_u64(), None);
        assert_eq!(p.word(0), 1);
        assert_eq!(p.word(1), 1);
        assert_eq!(p.word(2), 2);
        assert_eq!(p.word(3), 0);
    }

    #[test]
    fn spill_with_zero_high_words_still_reads_as_u64() {
        let p = Pattern::from_u64(70, 42);
        assert_eq!(p.as_u64(), Some(42));
        assert_eq!(p, 42u64);
    }

    #[test]
    fn increment_matches_u64_arithmetic() {
        for len in [1usize, 2, 5, 8] {
            let mut p = Pattern::zeros(len);
            let count = pattern_count(len).unwrap();
            for v in 0..count {
                assert_eq!(p.as_u64(), Some(v), "len {len}");
                let more = p.increment();
                assert_eq!(more, v + 1 < count, "len {len} at {v}");
            }
            assert_eq!(p.as_u64(), Some(0), "wraps to zero");
        }
    }

    #[test]
    fn increment_carries_across_words() {
        let mut p = Pattern::from_u64(70, u64::MAX);
        assert!(p.increment());
        assert_eq!(p.word(0), 0);
        assert_eq!(p.word(1), 1);
    }

    #[test]
    fn increment_wraps_at_full_width() {
        // 65 bits, all ones: +1 wraps to zero and reports exhaustion.
        let mut p = Pattern::from_fn(65, |_| true);
        assert!(!p.increment());
        assert_eq!(p.count_ones(), 0);
        // Same at exactly 64 bits.
        let mut q = Pattern::from_u64(64, u64::MAX);
        assert!(!q.increment());
        assert_eq!(q.as_u64(), Some(0));
    }

    #[test]
    fn all_enumerates_in_ascending_order() {
        let got: Vec<u64> = Pattern::all(3).map(|p| p.as_u64().unwrap()).collect();
        assert_eq!(got, (0..8).collect::<Vec<u64>>());
        // Width zero has exactly one (empty) pattern.
        assert_eq!(Pattern::all(0).count(), 1);
    }

    #[test]
    fn all_works_past_the_wall() {
        // The old `0..(1u64 << 64)` would have panicked (debug) or been
        // empty-after-wrap (release); the iterator just enumerates.
        let first: Vec<Pattern> = Pattern::all(64).take(3).collect();
        assert_eq!(first[0], 0u64);
        assert_eq!(first[2], 2u64);
        let wide: Vec<Pattern> = Pattern::all(65).take(3).collect();
        assert_eq!(wide[1], 1u64);
        assert_eq!(wide[1].len(), 65);
    }

    #[test]
    fn ord_matches_numeric_order() {
        let mut v: Vec<Pattern> = Pattern::all(4).collect();
        let sorted = v.clone();
        v.reverse();
        v.sort();
        assert_eq!(v, sorted);
        // And across words.
        let a = Pattern::from_u64(70, u64::MAX);
        let mut b = a.clone();
        b.increment();
        assert!(a < b, "2^64 - 1 < 2^64");
    }

    #[test]
    fn into_pattern_masks_like_set_low_u64() {
        let p = 0xFFu64.into_pattern(3);
        assert_eq!(p.as_u64(), Some(0b111));
        let q = (&p).into_pattern(3);
        assert_eq!(p, q);
    }

    #[test]
    fn display_is_bit0_first() {
        assert_eq!(Pattern::from_u64(4, 0b0101).to_string(), "1010");
    }
}
