//! Parameterized gate-level benchmark families.
//!
//! Complementing the fixed [`crate::library`] circuits, these generators
//! produce arbitrarily sized netlists directly at the gate level (no
//! specification pass, so no synthesis size bounds apply):
//!
//! * [`muller_pipeline`] — the classic speed-independent control kernel
//!   of [`crate::library::muller_pipeline2`] generalized to depth `d`;
//! * [`arbiter_tree`] — a C-element reduction tree over `w` request
//!   lines (a synchronizer/join tree of width `w`).

use crate::circuit::{Circuit, CircuitBuilder, PendingSignal};
use crate::gate::GateKind;

/// A `depth`-stage Muller pipeline: request in `R`, acknowledge in
/// `Ack`, C-elements `c1..cd` cross-coupled with inverters.  Stage `i`
/// fires when its predecessor has data (`c(i-1)`, or `R` for stage 1)
/// and its successor is empty (`!c(i+1)`, or `!Ack` for the last stage).
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn muller_pipeline(depth: usize) -> Circuit {
    assert!(depth > 0, "pipeline needs at least one stage");
    let mut b = CircuitBuilder::new(format!("muller_pipe{depth}"));
    let r = b.input("R", "r");
    let ack = b.input("Ack", "ack");
    for i in 1..=depth {
        // Inverter watching the next stage (the environment for the last).
        let watched = if i == depth {
            ack.clone()
        } else {
            b.signal(format!("c{}", i + 1))
        };
        let n = b.gate(format!("n{i}"), GateKind::Not, vec![watched]);
        let prev = if i == 1 {
            r.clone()
        } else {
            b.signal(format!("c{}", i - 1))
        };
        let c = b.gate(format!("c{i}"), GateKind::C, vec![prev, n]);
        b.output(c);
        b.init(format!("n{i}"), true);
    }
    b.finish().expect("generated pipeline is well-formed")
}

/// A width-`w` arbiter/synchronizer tree: `w` request inputs reduced by
/// a binary tree of C-elements; the root output `ack` rises only when
/// every request is high and falls only when every request is low.
///
/// Widths past 64 are fine — patterns and states are multi-word — but
/// enumeration-based analyses (CSSG construction) need an explicit
/// pattern budget beyond 63 inputs.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn arbiter_tree(width: usize) -> Circuit {
    assert!(width >= 2, "arbiter width at least 2");
    let mut b = CircuitBuilder::new(format!("arbiter{width}"));
    let mut frontier: Vec<PendingSignal> = (0..width)
        .map(|i| b.input(format!("R{i}"), format!("r{i}")))
        .collect();
    let mut level = 0usize;
    while frontier.len() > 1 {
        level += 1;
        let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
        let mut it = frontier.into_iter();
        let mut idx = 0usize;
        while let Some(a) = it.next() {
            match it.next() {
                Some(c) => {
                    let name = format!("j{level}_{idx}");
                    next.push(b.gate(name, GateKind::C, vec![a, c]));
                    idx += 1;
                }
                None => next.push(a), // odd node promotes unchanged
            }
        }
        frontier = next;
    }
    let root = frontier.pop().expect("non-empty reduction");
    let ack = b.gate("ack", GateKind::Buf, vec![root]);
    b.output(ack);
    b.finish().expect("generated arbiter is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::GateId;

    fn settle(c: &Circuit, mut s: crate::Bits, pattern: u64) -> crate::Bits {
        s = c.with_inputs(&s, pattern);
        for _ in 0..4 * c.num_gates() + 4 {
            match c.excited_gates(&s).first() {
                Some(&g) => s = c.step_gate(g, &s),
                None => break,
            }
        }
        s
    }

    #[test]
    fn pipelines_scale_and_reset_stable() {
        for d in 1..=8 {
            let c = muller_pipeline(d);
            assert_eq!(c.num_inputs(), 2);
            assert_eq!(c.num_gates(), 2 + 2 * d);
            assert!(c.is_stable(c.initial_state()), "depth {d}");
        }
    }

    #[test]
    fn depth2_matches_the_library_kernel() {
        let gen = muller_pipeline(2);
        let lib = crate::library::muller_pipeline2();
        assert_eq!(gen.num_gates(), lib.num_gates());
        assert_eq!(gen.outputs().len(), lib.outputs().len());
        // Same behaviour on a request: c1 rises, c2 follows.
        let s = settle(&gen, gen.initial_state().clone(), 0b01);
        assert!(gen.is_stable(&s));
        assert_eq!(gen.output_values(&s), 0b11);
    }

    #[test]
    fn request_ripples_down_any_depth() {
        for d in [1, 3, 5] {
            let c = muller_pipeline(d);
            let s = settle(&c, c.initial_state().clone(), 0b01);
            assert!(c.is_stable(&s), "depth {d}");
            assert_eq!(
                c.output_values(&s),
                (1 << d) - 1,
                "depth {d}: all stages latch the token"
            );
        }
    }

    #[test]
    fn arbiter_tree_is_an_n_way_c_element() {
        for w in [2, 3, 5, 8] {
            let c = arbiter_tree(w);
            assert!(c.is_stable(c.initial_state()), "width {w}");
            let all = (1u64 << w) - 1;
            let up = settle(&c, c.initial_state().clone(), all);
            assert!(c.is_stable(&up));
            assert_eq!(c.output_values(&up), 1, "width {w}: all requests grant");
            // Dropping one request holds the grant (C-element memory).
            let hold = settle(&c, up.clone(), all & !1);
            assert_eq!(c.output_values(&hold), 1, "width {w}: grant held");
            // Dropping all releases it.
            let down = settle(&c, hold, 0);
            assert_eq!(c.output_values(&down), 0, "width {w}: grant released");
        }
    }

    #[test]
    fn arbiter_tree_crosses_the_64_input_wall() {
        use crate::Pattern;
        for w in [63, 64, 65] {
            let c = arbiter_tree(w);
            assert_eq!(c.num_inputs(), w);
            assert!(c.is_stable(c.initial_state()), "width {w}");
            let all = Pattern::from_fn(w, |_| true);
            let mut s = c.with_inputs(c.initial_state(), &all);
            for _ in 0..4 * c.num_gates() + 4 {
                match c.excited_gates(&s).first() {
                    Some(&g) => s = c.step_gate(g, &s),
                    None => break,
                }
            }
            assert!(c.is_stable(&s), "width {w}");
            assert_eq!(c.output_values(&s), 1, "width {w}: all requests grant");
            assert_eq!(c.input_pattern(&s), all, "width {w}: pattern readback");
        }
    }

    #[test]
    fn generated_names_resolve() {
        let c = arbiter_tree(4);
        assert!(c.signal_by_name("ack").is_some());
        assert!(c.signal_by_name("j1_0").is_some());
        let c = muller_pipeline(3);
        for name in ["c1", "c2", "c3", "n1"] {
            assert!(c.signal_by_name(name).is_some(), "{name}");
        }
        let _ = GateId(0);
    }
}
