//! Error type for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate references a signal that does not exist.
    UnknownSignal(String),
    /// A signal name was defined twice.
    DuplicateSignal(String),
    /// A gate has the wrong number of inputs for its kind.
    BadArity {
        /// Offending gate's output signal name.
        gate: String,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        got: usize,
    },
    /// A logic gate reads an environment pin directly; only input buffers
    /// may do so under the paper's circuit model.
    EnvPinRead {
        /// Offending gate's output signal name.
        gate: String,
    },
    /// A primary output is not driven by a gate.
    UndrivenOutput(String),
    /// The declared initial state is not stable.
    UnstableInitialState {
        /// Name of an excited gate.
        gate: String,
    },
    /// The initial state vector has the wrong length.
    BadInitialLength {
        /// Expected number of state bits.
        expected: usize,
        /// Provided number of bits.
        got: usize,
    },
    /// An SOP literal references a pin outside the gate's input list.
    BadSopPin {
        /// Offending gate's output signal name.
        gate: String,
        /// The out-of-range pin index.
        pin: usize,
    },
    /// Syntax error while parsing a `.ckt` file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        msg: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownSignal(s) => write!(f, "unknown signal `{s}`"),
            NetlistError::DuplicateSignal(s) => write!(f, "duplicate signal `{s}`"),
            NetlistError::BadArity {
                gate,
                expected,
                got,
            } => {
                write!(f, "gate `{gate}` expects {expected} inputs, got {got}")
            }
            NetlistError::EnvPinRead { gate } => write!(
                f,
                "gate `{gate}` reads an environment pin directly; only input buffers may"
            ),
            NetlistError::UndrivenOutput(s) => {
                write!(f, "primary output `{s}` is not a gate output")
            }
            NetlistError::UnstableInitialState { gate } => {
                write!(f, "initial state is not stable: gate `{gate}` is excited")
            }
            NetlistError::BadInitialLength { expected, got } => {
                write!(f, "initial state has {got} bits, circuit has {expected}")
            }
            NetlistError::BadSopPin { gate, pin } => {
                write!(
                    f,
                    "gate `{gate}` SOP references pin {pin} outside its input list"
                )
            }
            NetlistError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl Error for NetlistError {}
