//! A compact, hashable bit vector used for circuit states.

use std::fmt;

/// A fixed-length bit vector backed by `u64` words.
///
/// `Bits` is the state representation used throughout the workspace: bit
/// `i` of a circuit state holds the value of signal `i` (environment pins
/// first, then gate outputs).  It is `Ord`/`Hash` so states can be used as
/// keys in exploration frontiers.
///
/// # Example
///
/// ```
/// use satpg_netlist::Bits;
///
/// let mut b = Bits::zeros(70);
/// b.set(69, true);
/// assert!(b.get(69));
/// assert_eq!(b.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bits {
    len: usize,
    words: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Bits {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a vector of `len` bits from a predicate on bit positions.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut b = Bits::zeros(len);
        for i in 0..len {
            if f(i) {
                b.set(i, true);
            }
        }
        b
    }

    /// Parses a `0`/`1` string, most significant position first rejected:
    /// position 0 of the string is bit 0.
    ///
    /// # Errors
    ///
    /// Returns `None` if any character is not `0` or `1`.
    pub fn from_str01(s: &str) -> Option<Self> {
        let mut b = Bits::zeros(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => b.set(i, true),
                _ => return None,
            }
        }
        Some(b)
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        if v {
            *w |= m;
        } else {
            *w &= !m;
        }
    }

    /// Flips bit `i` and returns the new value.
    #[inline]
    pub fn toggle(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns the first `n <= 64` bits packed into a `u64`, bit `i` of the
    /// result being bit `i` of the vector.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or `n > len`.
    pub fn low_u64(&self, n: usize) -> u64 {
        assert!(n <= 64 && n <= self.len);
        if n == 0 {
            return 0;
        }
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        self.words.first().copied().unwrap_or(0) & mask
    }

    /// Overwrites the first `n <= 64` bits with the low bits of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or `n > len`.
    pub fn set_low_u64(&mut self, n: usize, v: u64) {
        assert!(n <= 64 && n <= self.len);
        if n == 0 {
            return;
        }
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        self.words[0] = (self.words[0] & !mask) | (v & mask);
    }

    /// Iterates over all bit values in position order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Backing words (low bit of word 0 is bit 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Hamming distance to another vector of equal length.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn distance(&self, other: &Bits) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits({self})")
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let vals: Vec<bool> = iter.into_iter().collect();
        Bits::from_fn(vals.len(), |i| vals[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bits::zeros(130);
        for i in (0..130).step_by(3) {
            b.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn toggle_flips() {
        let mut b = Bits::zeros(5);
        assert!(b.toggle(2));
        assert!(!b.toggle(2));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn display_and_parse() {
        let b = Bits::from_str01("01101").unwrap();
        assert_eq!(b.to_string(), "01101");
        assert!(Bits::from_str01("01x").is_none());
    }

    #[test]
    fn low_u64_packs_bit_order() {
        let b = Bits::from_str01("1010").unwrap();
        assert_eq!(b.low_u64(4), 0b0101);
    }

    #[test]
    fn set_low_u64_roundtrip() {
        let mut b = Bits::zeros(70);
        b.set(69, true);
        b.set_low_u64(6, 0b101101);
        assert_eq!(b.low_u64(6), 0b101101);
        assert!(b.get(69));
    }

    #[test]
    fn distance_counts_differences() {
        let a = Bits::from_str01("0110").unwrap();
        let b = Bits::from_str01("1110").unwrap();
        assert_eq!(a.distance(&b), 1);
        assert_eq!(a.distance(&a), 0);
    }

    #[test]
    fn ord_is_consistent() {
        let a = Bits::from_str01("001").unwrap();
        let b = Bits::from_str01("100").unwrap();
        assert!(a != b);
        assert_eq!(a.cmp(&b), a.cmp(&b));
    }

    #[test]
    fn from_iterator_collects() {
        let b: Bits = [true, false, true].into_iter().collect();
        assert_eq!(b.to_string(), "101");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bits::zeros(3).get(3);
    }
}
