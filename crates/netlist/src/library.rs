//! Built-in circuits: the paper's Figure 1 examples and a few classics.
//!
//! The figure artwork is not machine-readable in the paper scan, so
//! [`figure1a`] and [`figure1b`] are reconstructions that reproduce the
//! *described* behaviour exactly: the same signal names, the same initial
//! stable states, and the same phenomena (non-confluence of the settling
//! state for 1(a), oscillation for 1(b)).

use crate::circuit::{Circuit, CircuitBuilder};
use crate::gate::GateKind;

/// Figure 1(a): a circuit showing **non-confluence of the settling state**.
///
/// Inputs `A, B` (buffers `a, b`).  From the stable state with
/// `A=0, B=1` (so `a=0, b=1`, all gates low), applying the pattern
/// `AB = 10` starts a race: `c = a·b` pulses high only if it switches
/// before `b` falls, and `y = c + d` with `d = y·e`, `e = b̄` latches the
/// pulse.  Depending on gate delays the circuit settles with `y = 1` or
/// `y = 0` — two different stable states.
pub fn figure1a() -> Circuit {
    let mut bld = CircuitBuilder::new("figure1a");
    let a = bld.input("A", "a");
    let b = bld.input("B", "b");
    let c = bld.gate("c", GateKind::And, vec![a, b.clone()]);
    let e = bld.gate("e", GateKind::Not, vec![b]);
    let y_fb = bld.signal("y");
    let d = bld.gate("d", GateKind::And, vec![y_fb, e]);
    let y = bld.gate("y", GateKind::Or, vec![c, d]);
    bld.output(y);
    bld.init("B", true);
    bld.init("b", true);
    bld.finish().expect("figure1a is well-formed")
}

/// Figure 1(b): a circuit showing **oscillation**.
///
/// Inputs `A, B` (buffers `a, b`).  From the stable state `ABabcd =
/// 000011`, raising `A` makes the loop `c = nand(a, d)`, `d = buf(c)`
/// unstable: the transition sequence `c↓ d↓ c↑ d↑ …` repeats forever.
pub fn figure1b() -> Circuit {
    let mut bld = CircuitBuilder::new("figure1b");
    let a = bld.input("A", "a");
    let _b = bld.input("B", "b");
    let d_fb = bld.signal("d");
    let c = bld.gate("c", GateKind::Nand, vec![a, d_fb]);
    let d = bld.gate("d", GateKind::Buf, vec![c.clone()]);
    bld.output(c);
    bld.output(d);
    bld.init("c", true);
    bld.init("d", true);
    bld.finish().expect("figure1b is well-formed")
}

/// A single Muller C-element with inputs `A, B` and output `y`.
pub fn c_element() -> Circuit {
    let mut bld = CircuitBuilder::new("celement");
    let a = bld.input("A", "a");
    let b = bld.input("B", "b");
    let y = bld.gate("y", GateKind::C, vec![a, b]);
    bld.output(y);
    bld.finish().expect("c_element is well-formed")
}

/// A NOR-based set/reset latch: `q = nor(r, qb)`, `qb = nor(s, q)`.
///
/// Reset state: `S=R=0`, `q=0`, `qb=1`.
pub fn sr_latch() -> Circuit {
    let mut bld = CircuitBuilder::new("sr_latch");
    let s = bld.input("S", "s");
    let r = bld.input("R", "r");
    let qb_fb = bld.signal("qb");
    let q = bld.gate("q", GateKind::Nor, vec![r, qb_fb]);
    let qb = bld.gate("qb", GateKind::Nor, vec![s, q.clone()]);
    bld.output(q);
    bld.output(qb);
    bld.init("qb", true);
    bld.finish().expect("sr_latch is well-formed")
}

/// A two-stage Muller pipeline: request in `R`, acknowledge out through two
/// C-elements cross-coupled with inverters — a classic speed-independent
/// control kernel.
pub fn muller_pipeline2() -> Circuit {
    let mut bld = CircuitBuilder::new("muller_pipe2");
    let r = bld.input("R", "r");
    let a_env = bld.input("Ack", "ack");
    let c2_fb = bld.signal("c2");
    let n1 = bld.gate("n1", GateKind::Not, vec![c2_fb]);
    let c1 = bld.gate("c1", GateKind::C, vec![r, n1]);
    let n2 = bld.gate("n2", GateKind::Not, vec![a_env]);
    let c2 = bld.gate("c2", GateKind::C, vec![c1.clone(), n2]);
    bld.output(c1);
    bld.output(c2);
    bld.init("n1", true);
    bld.init("n2", true);
    bld.finish().expect("muller_pipeline2 is well-formed")
}

/// All built-in circuits, for exhaustive testing.
pub fn all() -> Vec<Circuit> {
    vec![
        figure1a(),
        figure1b(),
        c_element(),
        sr_latch(),
        muller_pipeline2(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::GateId;

    #[test]
    fn all_initial_states_stable() {
        for c in all() {
            assert!(
                c.is_stable(c.initial_state()),
                "{} unstable reset",
                c.name()
            );
        }
    }

    #[test]
    fn figure1a_matches_paper_reset() {
        let c = figure1a();
        let s = c.initial_state();
        // Stable state with A=0, B=1, a=0, b=1, gates low (cf. 01 01 0000).
        assert!(!s.get(0) && s.get(1));
        let a = c.signal_by_name("a").unwrap();
        let b = c.signal_by_name("b").unwrap();
        assert!(!s.get(a.index()) && s.get(b.index()));
    }

    #[test]
    fn figure1a_race_has_two_outcomes() {
        let c = figure1a();
        let s = c.with_inputs(c.initial_state(), 0b01); // A=1, B=0
                                                        // Outcome 1: c wins the race (a↑, c↑, y↑ before b↓).
        let by_name = |n: &str| c.driver(c.signal_by_name(n).unwrap()).unwrap();
        let fast = [by_name("a"), by_name("c"), by_name("y")]
            .iter()
            .fold(s.clone(), |st, &g| c.step_gate(g, &st));
        // Outcome 2: b falls first, killing the pulse.
        let slow = [by_name("a"), by_name("b")]
            .iter()
            .fold(s, |st, &g| c.step_gate(g, &st));
        // Finish both to stability.
        let finish = |mut st: crate::Bits| {
            for _ in 0..32 {
                match c.excited_gates(&st).first() {
                    Some(&g) => st = c.step_gate(g, &st),
                    None => break,
                }
            }
            st
        };
        let f1 = finish(fast);
        let f2 = finish(slow);
        assert!(c.is_stable(&f1) && c.is_stable(&f2));
        assert_ne!(c.output_values(&f1), c.output_values(&f2), "non-confluence");
    }

    #[test]
    fn figure1b_oscillates() {
        let c = figure1b();
        let s = c.with_inputs(c.initial_state(), 0b01); // A=1
                                                        // Switch the input buffer, then the c/d loop never stabilizes.
        let mut st = c.step_gate(GateId(0), &s);
        for _ in 0..64 {
            let ex = c.excited_gates(&st);
            assert!(!ex.is_empty(), "circuit stabilized; expected oscillation");
            st = c.step_gate(ex[0], &st);
        }
    }

    #[test]
    fn sr_latch_sets_and_resets() {
        let c = sr_latch();
        let run = |mut st: crate::Bits| {
            for _ in 0..32 {
                match c.excited_gates(&st).first() {
                    Some(&g) => st = c.step_gate(g, &st),
                    None => break,
                }
            }
            st
        };
        let set = run(c.with_inputs(c.initial_state(), 0b01));
        assert!(c.is_stable(&set));
        assert_eq!(c.output_values(&set) & 1, 1, "q set");
        let idle = run(c.with_inputs(&set, 0b00));
        assert_eq!(c.output_values(&idle) & 1, 1, "q holds");
        let reset = run(c.with_inputs(&idle, 0b10));
        assert_eq!(c.output_values(&reset) & 1, 0, "q reset");
    }
}
